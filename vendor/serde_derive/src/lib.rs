//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored serde stand-in.
//!
//! With no access to crates.io there is no `syn`/`quote`; the item is
//! parsed directly from the raw `proc_macro::TokenStream`. Supported
//! shapes are exactly what this workspace derives on: non-generic
//! structs (named, tuple, unit) and enums (unit / tuple / struct
//! variants, externally tagged like serde's default). Anything fancier
//! — generics, lifetimes, `#[serde(...)]` attributes — is rejected
//! with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip any number of outer attributes (`#[...]`), doc comments
    /// included. Rejects `#[serde(...)]`, which the stand-in cannot honor.
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        panic!("serde stand-in derive does not support #[serde(...)] attributes");
                    }
                    self.next();
                }
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde stand-in derive: expected {what}, found {other:?}"),
        }
    }

    /// Skip tokens until a comma at angle-bracket depth 0, consuming
    /// the comma. Used to step over field types and discriminants.
    fn skip_past_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde stand-in derive does not support generic type `{name}`");
        }
    }
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(&mut c, &name)),
        "enum" => Shape::Enum(parse_variants(&mut c, &name)),
        other => panic!("serde stand-in derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn parse_struct_fields(c: &mut Cursor, name: &str) -> Fields {
    match c.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            c.next();
            Fields::Named(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let count = count_tuple_fields(g.stream());
            c.next();
            Fields::Tuple(count)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde stand-in derive: unexpected struct body for `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let field = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in derive: expected `:` after `{field}`, found {other:?}"),
        }
        fields.push(field);
        c.skip_past_comma();
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if pending {
                        count += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(c: &mut Cursor, name: &str) -> Vec<(String, Fields)> {
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde stand-in derive: expected enum body for `{name}`, found {other:?}"),
    };
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let variant = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                c.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        variants.push((variant, fields));
        // Step over an optional `= discriminant` and the separating comma.
        c.skip_past_comma();
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ "
    );
    match &item.shape {
        Shape::Struct(Fields::Unit) => out.push_str("::serde::Value::Null"),
        Shape::Struct(Fields::Tuple(1)) => {
            out.push_str("::serde::Serialize::serialize(&self.0)");
        }
        Shape::Struct(Fields::Tuple(n)) => {
            out.push_str("::serde::Value::Array(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::serialize(&self.{i}),");
            }
            out.push_str("])");
        }
        Shape::Struct(Fields::Named(fields)) => {
            out.push_str("let mut __m = ::serde::Map::new();");
            for f in fields {
                let _ = write!(
                    out,
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f}));"
                );
            }
            out.push_str("::serde::Value::Object(__m)");
        }
        Shape::Enum(variants) => {
            out.push_str("match self {");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = write!(out, "{name}::{v}({}) => {{", binds.join(","));
                        out.push_str("let mut __m = ::serde::Map::new();");
                        if *n == 1 {
                            let _ = write!(
                                out,
                                "__m.insert(::std::string::String::from(\"{v}\"), \
                                 ::serde::Serialize::serialize(__f0));"
                            );
                        } else {
                            out.push_str("let __items = ::std::vec![");
                            for b in &binds {
                                let _ = write!(out, "::serde::Serialize::serialize({b}),");
                            }
                            out.push_str("];");
                            let _ = write!(
                                out,
                                "__m.insert(::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(__items));"
                            );
                        }
                        out.push_str("::serde::Value::Object(__m) },");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(out, "{name}::{v} {{ {} }} => {{", fields.join(","));
                        out.push_str("let mut __inner = ::serde::Map::new();");
                        for f in fields {
                            let _ = write!(
                                out,
                                "__inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize({f}));"
                            );
                        }
                        out.push_str("let mut __m = ::serde::Map::new();");
                        let _ = write!(
                            out,
                            "__m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(__inner));"
                        );
                        out.push_str("::serde::Value::Object(__m) },");
                    }
                }
            }
            out.push('}');
        }
    }
    out.push_str(" } }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match &item.shape {
        Shape::Struct(Fields::Unit) => {
            let _ = write!(out, "::std::result::Result::Ok({name})");
        }
        Shape::Struct(Fields::Tuple(1)) => {
            let _ = write!(
                out,
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
            );
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let _ = write!(
                out,
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong arity for {name}\")); }}"
            );
            let _ = write!(out, "::std::result::Result::Ok({name}(");
            for i in 0..*n {
                let _ = write!(out, "::serde::Deserialize::deserialize(&__a[{i}])?,");
            }
            out.push_str("))");
        }
        Shape::Struct(Fields::Named(fields)) => {
            let _ = write!(
                out,
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;"
            );
            let _ = write!(out, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let _ = write!(
                    out,
                    "{f}: ::serde::Deserialize::deserialize(\
                     __m.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
                );
            }
            out.push_str("})");
        }
        Shape::Enum(variants) => {
            out.push_str("if let ::std::option::Option::Some(__s) = __v.as_str() { match __s {");
            for (v, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    let _ = write!(
                        out,
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"
                    );
                }
            }
            out.push_str("_ => {} } }");
            out.push_str("if let ::std::option::Option::Some(__m) = __v.as_object() {");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        let _ = write!(
                            out,
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{v}\") {{ \
                             return ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize(__inner)?)); }}"
                        );
                    }
                    Fields::Tuple(n) => {
                        let _ = write!(
                            out,
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{v}\") {{ \
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong arity for {name}::{v}\")); }}\
                             return ::std::result::Result::Ok({name}::{v}("
                        );
                        for i in 0..*n {
                            let _ = write!(out, "::serde::Deserialize::deserialize(&__a[{i}])?,");
                        }
                        out.push_str(")); }");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            out,
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{v}\") {{ \
                             let __vm = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\
                             return ::std::result::Result::Ok({name}::{v} {{"
                        );
                        for f in fields {
                            let _ = write!(
                                out,
                                "{f}: ::serde::Deserialize::deserialize(\
                                 __vm.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
                            );
                        }
                        out.push_str("}); }");
                    }
                }
            }
            out.push('}');
            let _ = write!(
                out,
                "::std::result::Result::Err(::serde::Error::custom(\
                 \"unrecognized value for enum {name}\"))"
            );
        }
    }
    out.push_str(" } }");
    out
}
