//! Offline stand-in for `rand_distr`: the `Distribution` trait plus the
//! `Normal` and `LogNormal` distributions the workload models use.
//! Normal deviates come from the Box–Muller transform, which is exact
//! and deterministic given the underlying `rand` stream.

use rand::Rng;

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// Standard deviation / sigma was negative or non-finite.
    BadVariance,
    /// Mean / location parameter was non-finite.
    BadMean,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::BadVariance => write!(f, "invalid variance parameter"),
            ParamError::BadMean => write!(f, "invalid mean parameter"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Types that can be sampled given an entropy source.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    pub fn new(mean: f64, sd: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() {
            return Err(ParamError::BadMean);
        }
        if !sd.is_finite() || sd < 0.0 {
            return Err(ParamError::BadVariance);
        }
        Ok(Normal { mean, sd })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * box_muller(rng)
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// mean (`mu`) and standard deviation (`sigma`), matching upstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() {
            return Err(ParamError::BadMean);
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError::BadVariance);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * box_muller(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Normal::new(5.0, 2.0).unwrap();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median_matches_mu() {
        let mut rng = StdRng::seed_from_u64(5);
        let median = 120.0f64;
        let d = LogNormal::new(median.ln(), 0.4).unwrap();
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let observed = samples[10_000];
        assert!(
            (observed / median - 1.0).abs() < 0.05,
            "median {observed} vs {median}"
        );
    }
}
