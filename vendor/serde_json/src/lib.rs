//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] tree to JSON text and parses JSON text back. Output is
//! deterministic (object keys are sorted by the underlying `BTreeMap`);
//! the parser accepts standard JSON including nested containers,
//! escapes, and `\uXXXX` sequences.

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Error from encoding or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serialize any value into the `Value` data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

/// Rebuild a typed value from a `Value` tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::deserialize(v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::I(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::F(v) if v.is_finite() => {
            if v == v.trunc() && v.abs() < 1e15 {
                // serde_json renders integral floats with a trailing .0
                let _ = std::fmt::Write::write_fmt(out, format_args!("{v:.1}"));
            } else {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
            }
        }
        // JSON has no NaN/Inf; serde_json emits null for them.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let mut inner = Map::new();
        inner.insert("pi".into(), Value::Number(Number::F(3.25)));
        inner.insert("n".into(), Value::Number(Number::U(7)));
        inner.insert("neg".into(), Value::Number(Number::I(-3)));
        inner.insert("s".into(), Value::String("a \"b\"\n\\c".into()));
        inner.insert(
            "arr".into(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Object(inner);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_shape() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Array(vec![Value::Number(Number::U(1))]));
        let text = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""aé☃ 😀 b\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé☃ 😀 b\t");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v = vec![(String::from("a"), 1.5f64), (String::from("b"), -2.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_keeps_type_on_reparse() {
        let text = to_string(&Value::Number(Number::F(2.0))).unwrap();
        assert_eq!(text, "2.0");
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v.as_f64(), Some(2.0));
    }
}
