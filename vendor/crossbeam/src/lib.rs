//! Offline stand-in for `crossbeam`: a multi-producer multi-consumer
//! channel with the subset of the `crossbeam::channel` API this
//! workspace uses (`bounded`/`unbounded`, `try_send`, `recv_timeout`,
//! queue introspection via `len`/`is_empty`).
//!
//! Implemented as a `Mutex<VecDeque>` with two condvars. std's mpsc is
//! not a substitute here because the streaming layer needs `Receiver`
//! cloning and live queue-depth inspection for backpressure decisions.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (multi-consumer, crossbeam-style).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Channel that holds at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Channel with no backpressure limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                drop(s);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().unwrap();
            s.receivers -= 1;
            if s.receivers == 0 {
                drop(s);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ queued: {} }}", self.len())
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ queued: {} }}", self.len())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; waits while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.shared.state.lock().unwrap();
            loop {
                if s.receivers == 0 {
                    return Err(SendError(value));
                }
                match s.cap {
                    Some(cap) if s.queue.len() >= cap => {
                        s = self.shared.not_full.wait(s).unwrap();
                    }
                    _ => break,
                }
            }
            s.queue.push_back(value);
            drop(s);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Bounded-wait send: waits up to `timeout` for queue space, the
        /// primitive a backpressuring publisher needs to slow a source
        /// without risking a permanent wedge on a dead consumer.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut s = self.shared.state.lock().unwrap();
            loop {
                if s.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                match s.cap {
                    Some(cap) if s.queue.len() >= cap => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        let (guard, _res) = self
                            .shared
                            .not_full
                            .wait_timeout(s, deadline - now)
                            .unwrap();
                        s = guard;
                    }
                    _ => break,
                }
            }
            s.queue.push_back(value);
            drop(s);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails immediately when full or hung up.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.shared.state.lock().unwrap();
            if s.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = s.cap {
                if s.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            s.queue.push_back(value);
            drop(s);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.shared.not_empty.wait(s).unwrap();
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(s, deadline - now)
                    .unwrap();
                s = guard;
                if res.timed_out() && s.queue.is_empty() {
                    if s.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self.shared.state.lock().unwrap();
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnect_is_observable_from_both_sides() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));

        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn blocking_send_wakes_on_drain() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn send_timeout_waits_then_gives_up_or_delivers() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // full queue, no consumer progress: times out and returns the value
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(10)),
            Err(SendTimeoutError::Timeout(2))
        );
        // consumer drains concurrently: the waiting send goes through
        let t = std::thread::spawn(move || tx.send_timeout(3, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap().unwrap();

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(
            tx.send_timeout(4, Duration::from_millis(1)),
            Err(SendTimeoutError::Disconnected(4))
        );
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx1.try_recv(), Ok(1));
        assert_eq!(rx2.try_recv(), Ok(2));
    }
}
