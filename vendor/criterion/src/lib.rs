//! Offline stand-in for `criterion`: enough of the API for the
//! workspace's benches to build and run under `cargo bench`. Instead of
//! criterion's statistical machinery it times a fixed number of
//! iterations per benchmark and prints mean wall-clock time — adequate
//! for the relative comparisons the bench suite makes.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label; only the `from_parameter` constructor is used here.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<D: std::fmt::Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<40} (no iterations)");
        } else {
            let mean = self.total / self.iters as u32;
            println!("bench {name:<40} {mean:>12.2?}/iter ({} iters)", self.iters);
        }
    }
}

/// Group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level driver, constructed by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box((0..n).sum::<u64>()))
        });
        group.finish();
        c.bench_function("single", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(demo, payload);

    #[test]
    fn harness_runs_groups() {
        demo();
    }
}
