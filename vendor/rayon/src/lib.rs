//! Offline stand-in for `rayon`: `par_iter().map(..).collect()` over
//! slices and `par_chunks_mut(..)` over mutable slices, executed on
//! scoped std threads.
//!
//! Work is distributed through a chunked work queue: workers claim the
//! next chunk index from a shared atomic counter, so heterogeneous
//! per-item costs (e.g. slices of very different sparsity) no longer
//! leave straggler threads idle the way a one-contiguous-chunk-per-core
//! split did. Output order is preserved by tagging each produced chunk
//! with its input offset and merging in offset order.
//!
//! The worker count is `RAYON_NUM_THREADS` (env) or [`set_num_threads`],
//! falling back to `available_parallelism`, matching the knobs real
//! rayon exposes that the bench harness relies on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Global worker-count override; 0 means "auto".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for subsequent parallel calls (0 restores
/// the default). Real rayon configures this through a thread-pool
/// builder; a process-global setter is enough for the bench sweeps.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Current worker count: explicit override, then `RAYON_NUM_THREADS`,
/// then the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let explicit = NUM_THREADS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `.par_iter()` on slices (and anything that derefs to a slice).
pub trait IntoParallelRefIterator<'a> {
    type Iter;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Marker trait so call sites can bound on `ParallelIterator` idiomatically.
pub trait ParallelIterator {}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<T> ParallelIterator for ParIter<'_, T> {}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, F> ParallelIterator for ParMap<'_, T, F> {}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromParallelIterator<U>,
    {
        C::from_ordered_results(par_map(self.items, &self.f))
    }
}

/// Pick the work-queue granularity: several chunks per worker so costs
/// balance, but at least one item per chunk.
fn queue_chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers * 4)).max(1)
}

fn par_map<'a, I, U, F>(items: &'a [I], f: &F) -> Vec<U>
where
    I: Sync,
    U: Send,
    F: Fn(&'a I) -> U + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = queue_chunk_size(len, workers);
    let n_chunks = len.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut parts: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(len);
                        parts.push((start, items[start..end].iter().map(f).collect()));
                    }
                    parts
                })
            })
            .collect();
        let mut parts: Vec<(usize, Vec<U>)> = Vec::new();
        for h in handles {
            match h.join() {
                Ok(p) => parts.extend(p),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        // chunks come back in claim order; offsets restore input order
        parts.sort_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(len);
        for (_, mut p) in parts {
            out.append(&mut p);
        }
        out
    })
}

/// `.par_chunks_mut(size)` on mutable slices: disjoint chunks handed to
/// workers through the same atomic work queue.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T> ParallelIterator for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T> ParallelIterator for ParChunksMutEnumerate<'_, T> {}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        self.for_each_init(|| (), |(), pair| f(pair));
    }

    /// Like rayon's `for_each_init`: `init` runs once per worker thread
    /// and the state it builds is reused for every chunk that worker
    /// claims — this is what keeps one reconstruction scratch per thread
    /// instead of one per slice.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        S: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &'a mut [T])) + Sync,
    {
        let n = self.chunks.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 {
            let mut state = init();
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f(&mut state, (i, chunk));
            }
            return;
        }
        // Hand each &mut chunk out exactly once: the atomic index picks
        // the slot, the mutex moves the reference out of shared storage.
        let slots: Vec<Mutex<Option<&'a mut [T]>>> = self
            .chunks
            .into_iter()
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let slots = &slots;
                    let next = &next;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut state = init();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            let chunk = slots[i]
                                .lock()
                                .expect("work-queue slot poisoned")
                                .take()
                                .expect("chunk claimed twice");
                            f(&mut state, (i, chunk));
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
}

/// Sink types for `.collect()`; results arrive already in input order.
pub trait FromParallelIterator<U>: Sized {
    fn from_ordered_results(results: Vec<U>) -> Self;
}

impl<U> FromParallelIterator<U> for Vec<U> {
    fn from_ordered_results(results: Vec<U>) -> Self {
        results
    }
}

impl<U, E> FromParallelIterator<Result<U, E>> for Result<Vec<U>, E> {
    fn from_ordered_results(results: Vec<Result<U, E>>) -> Self {
        results.into_iter().collect()
    }
}

impl<U> FromParallelIterator<Option<U>> for Option<Vec<U>> {
    fn from_ordered_results(results: Vec<Option<U>>) -> Self {
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let squared: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(squared.len(), input.len());
        for (i, v) in squared.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let input: Vec<i32> = (0..100).collect();
        let ok: Result<Vec<i32>, String> = input.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i32>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 57 {
                    Err(format!("boom {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom 57");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7];
        let out: Vec<i32> = one.par_iter().map(|&x| x * 6).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn chunks_mut_for_each_writes_every_chunk() {
        let mut data = vec![0u32; 1000];
        data.par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i as u32));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 7) as u32);
        }
    }

    #[test]
    fn for_each_init_reuses_state_per_worker() {
        // the init counter must not exceed the worker count
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let mut data = [0u8; 64];
        data.par_chunks_mut(1).enumerate().for_each_init(
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, (_, chunk)| chunk[0] = 1,
        );
        assert!(data.iter().all(|&v| v == 1));
        assert!(inits.load(Ordering::Relaxed) <= crate::current_num_threads());
    }
}
