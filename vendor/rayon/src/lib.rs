//! Offline stand-in for `rayon`: `par_iter().map(..).collect()` over
//! slices, executed on scoped std threads. Work is split into one
//! contiguous chunk per available core, which preserves output order
//! and gives near-linear speedup for the embarrassingly parallel
//! slice-reconstruction loops this workspace runs.

use std::thread;

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slices (and anything that derefs to a slice).
pub trait IntoParallelRefIterator<'a> {
    type Iter;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Marker trait so call sites can bound on `ParallelIterator` idiomatically.
pub trait ParallelIterator {}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<T> ParallelIterator for ParIter<'_, T> {}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, F> ParallelIterator for ParMap<'_, T, F> {}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromParallelIterator<U>,
    {
        C::from_ordered_results(par_map(self.items, &self.f))
    }
}

fn par_map<'a, I, U, F>(items: &'a [I], f: &F) -> Vec<U>
where
    I: Sync,
    U: Send,
    F: Fn(&'a I) -> U + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Sink types for `.collect()`; results arrive already in input order.
pub trait FromParallelIterator<U>: Sized {
    fn from_ordered_results(results: Vec<U>) -> Self;
}

impl<U> FromParallelIterator<U> for Vec<U> {
    fn from_ordered_results(results: Vec<U>) -> Self {
        results
    }
}

impl<U, E> FromParallelIterator<Result<U, E>> for Result<Vec<U>, E> {
    fn from_ordered_results(results: Vec<Result<U, E>>) -> Self {
        results.into_iter().collect()
    }
}

impl<U> FromParallelIterator<Option<U>> for Option<Vec<U>> {
    fn from_ordered_results(results: Vec<Option<U>>) -> Self {
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let squared: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(squared.len(), input.len());
        for (i, v) in squared.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let input: Vec<i32> = (0..100).collect();
        let ok: Result<Vec<i32>, String> = input.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i32>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 57 {
                    Err(format!("boom {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom 57");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7];
        let out: Vec<i32> = one.par_iter().map(|&x| x * 6).collect();
        assert_eq!(out, vec![42]);
    }
}
