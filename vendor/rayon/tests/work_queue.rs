//! Property tests for the chunked work-queue executor: for any item
//! count × worker count, parallel map must preserve input order and
//! visit every item exactly once, and `par_chunks_mut` must hand every
//! chunk to exactly one worker — including the 0- and 1-item edges.

use proptest::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `set_num_threads` is process-global; serialize the tests that sweep it.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_workers<R>(workers: usize, body: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    rayon::set_num_threads(workers);
    let out = body();
    rayon::set_num_threads(0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_preserves_order_and_visits_once(len in 0usize..257, workers in 1usize..9) {
        let items: Vec<usize> = (0..len).collect();
        let visits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let out: Vec<usize> = with_workers(workers, || {
            items
                .par_iter()
                .map(|&x| {
                    visits[x].fetch_add(1, Ordering::Relaxed);
                    x * 3 + 1
                })
                .collect()
        });
        prop_assert_eq!(out.len(), len);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i * 3 + 1, "order broken at {}", i);
        }
        for (i, c) in visits.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "item {} visit count", i);
        }
    }

    #[test]
    fn par_map_collects_results_like_sequential(len in 0usize..200, workers in 1usize..9) {
        let items: Vec<u64> = (0..len as u64).map(|x| x.wrapping_mul(2654435761)).collect();
        let par: Result<Vec<u64>, String> =
            with_workers(workers, || items.par_iter().map(|&x| Ok(x ^ 0xABCD)).collect());
        let seq: Vec<u64> = items.iter().map(|&x| x ^ 0xABCD).collect();
        prop_assert_eq!(par.unwrap(), seq);
    }

    #[test]
    fn chunks_mut_runs_every_chunk_exactly_once(
        len in 0usize..400,
        chunk in 1usize..50,
        workers in 1usize..9,
    ) {
        let mut data = vec![usize::MAX; len];
        let n_chunks = len.div_ceil(chunk);
        let claims: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
        with_workers(workers, || {
            data.par_chunks_mut(chunk).enumerate().for_each(|(i, c)| {
                claims[i].fetch_add(1, Ordering::Relaxed);
                c.iter_mut().for_each(|v| *v = i);
            });
        });
        for (i, c) in claims.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {} claim count", i);
        }
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(*v, i / chunk, "element {} labeled with wrong chunk", i);
        }
    }

    #[test]
    fn for_each_init_state_stays_per_worker(
        len in 0usize..300,
        chunk in 1usize..40,
        workers in 1usize..9,
    ) {
        let inits = AtomicUsize::new(0);
        let mut data = vec![0u8; len];
        with_workers(workers, || {
            data.par_chunks_mut(chunk).enumerate().for_each_init(
                || inits.fetch_add(1, Ordering::Relaxed),
                |_state, (_i, c)| c.iter_mut().for_each(|v| *v += 1),
            );
        });
        prop_assert!(data.iter().all(|&v| v == 1), "some element touched != once");
        // one state per worker, never one per chunk
        prop_assert!(
            inits.load(Ordering::Relaxed) <= workers.max(1),
            "init ran {} times for {} workers",
            inits.load(Ordering::Relaxed),
            workers
        );
    }
}

#[test]
fn zero_items_zero_chunks() {
    let empty: Vec<u32> = Vec::new();
    let out: Vec<u32> = with_workers(4, || empty.par_iter().map(|&x| x).collect());
    assert!(out.is_empty());
    let mut none: Vec<u32> = Vec::new();
    with_workers(4, || {
        none.par_chunks_mut(8).enumerate().for_each(|(_, _)| {
            panic!("no chunks should run");
        });
    });
}

#[test]
fn single_item_runs_once() {
    let one = [41u32];
    let out: Vec<u32> = with_workers(8, || one.par_iter().map(|&x| x + 1).collect());
    assert_eq!(out, vec![42]);
    let mut data = [0u8; 1];
    with_workers(8, || {
        data.par_chunks_mut(1)
            .enumerate()
            .for_each(|(i, c)| c[0] = i as u8 + 9);
    });
    assert_eq!(data[0], 9);
}
