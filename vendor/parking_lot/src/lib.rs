//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free `lock()`/`read()`/`write()` API, implemented over the
//! std primitives. A poisoned std lock means a panic already happened
//! on another thread; propagating that panic (as upstream parking_lot
//! effectively does by never poisoning) is the behavior callers expect.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is still usable
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
