//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner subset the workspace's property tests
//! use: the `proptest!` macro with `#![proptest_config(..)]`, range and
//! collection strategies, `any::<T>()`, tuple strategies, a small
//! character-class regex subset for `String` generation, and the
//! `prop_assert*` macros. Cases are generated from a seed derived from
//! the test name, so failures reproduce exactly across runs. Shrinking
//! is not implemented — a failing case reports its index and message.

use std::ops::Range;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-test entropy source (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Drives a single `proptest!`-generated test function.
pub struct TestRunner {
    seed: u64,
}

impl TestRunner {
    pub fn new(_config: &ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { seed }
    }

    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng {
            state: self
                .seed
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a default "anything" strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for `vec`: an exact `usize` or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = (self.size.lo as u64..self.size.hi as u64).generate(rng) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Strategy for normal (non-zero, non-subnormal, finite) f32s,
        /// both signs, like `proptest::num::f32::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF32;

        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                let bits = rng.next_u64();
                let sign = ((bits >> 63) as u32) << 31;
                // biased exponent in 1..=254: excludes zero/subnormal
                // (0) and inf/nan (255)
                let exp = (1 + (bits >> 32) as u32 % 254) << 23;
                let mantissa = (bits as u32) & 0x007F_FFFF;
                f32::from_bits(sign | exp | mantissa)
            }
        }
    }
}

/// Character-class regex subset: sequences of literal chars and
/// `[a-z...]` classes, each optionally repeated `{m}` or `{m,n}`.
/// Enough for strategies like `"[a-z]{1,12}"`; anything else panics so
/// the gap is visible instead of silently generating wrong data.
mod regex_gen {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    pub struct Pattern {
        pieces: Vec<Piece>,
    }

    pub fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                    i += 1;
                    Atom::Literal(c)
                }
                c if !"{}()|*+?.^$".contains(c) => {
                    i += 1;
                    Atom::Literal(c)
                }
                c => panic!(
                    "proptest stand-in supports only literal/class patterns; \
                     `{c}` in `{pattern}` is not implemented"
                ),
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repeat bounds in `{pattern}`");
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    impl Pattern {
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let span = (piece.max - piece.min + 1) as u64;
                let n = piece.min + (rng.next_u64() % span) as usize;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let total: u64 =
                                ranges.iter().map(|&(a, b)| (b as u64 - a as u64) + 1).sum();
                            let mut pick = rng.next_u64() % total;
                            for &(a, b) in ranges {
                                let width = (b as u64 - a as u64) + 1;
                                if pick < width {
                                    out.push(char::from_u32(a as u32 + pick as u32).unwrap());
                                    break;
                                }
                                pick -= width;
                            }
                        }
                    }
                }
            }
            out
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::parse(self).generate(rng)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// The test-defining macro. Each property becomes a `#[test]` running
/// `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __runner = $crate::TestRunner::new(&__config, stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = __runner.rng_for(__case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("property {} failed on case {}: {}",
                               stringify!($name), __case, __e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in -3i32..3, f in 0.5f64..2.0) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(exact in prop::collection::vec(0u8..255, 7),
                                    ranged in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn regex_class_subset(name in "[a-c]{2,4}", tagged in "x[0-9]{3}") {
            prop_assert!((2..=4).contains(&name.len()));
            prop_assert!(name.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_eq!(tagged.len(), 4);
            prop_assert!(tagged.starts_with('x'));
        }

        #[test]
        fn normal_f32s_are_normal(f in prop::num::f32::NORMAL) {
            prop_assert!(f.is_normal(), "{} not normal", f);
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 10u64..20)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let cfg = ProptestConfig::with_cases(4);
        let r1 = crate::TestRunner::new(&cfg, "some_test");
        let r2 = crate::TestRunner::new(&cfg, "some_test");
        let mut a = r1.rng_for(0);
        let mut b = r2.rng_for(0);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
