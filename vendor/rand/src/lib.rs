//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the API subset it
//! actually uses: `StdRng` (seedable from a `u64`), `Rng::gen` for
//! `u64`/`f64`, and `Rng::gen_range` over half-open ranges. The
//! generator is xoshiro256** seeded via splitmix64 — high-quality,
//! fast, and fully reproducible, which is what the discrete-event
//! simulation needs. It is **not** the upstream rand implementation and
//! makes no cross-version stream-compatibility promises.

use std::ops::Range;

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from the "standard" distribution (`rng.gen()`).
pub trait StandardSample {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait UniformSample: Sized {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // 128-bit multiply-shift keeps bias negligible for the
                // span sizes the simulation uses.
                let r = rng.next_u64() as u128;
                range.start + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let v = range.start + rng.next_f64() * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl UniformSample for f32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::uniform(rng, range.start as f64..range.end as f64) as f32
    }
}

/// The user-facing sampling interface (`rng.gen()`, `rng.gen_range(..)`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
