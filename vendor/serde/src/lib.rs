//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! a small self-describing data model instead of the real serde:
//! `Serialize` renders a type into a JSON-like [`Value`] tree and
//! `Deserialize` reads one back. The companion `serde_derive` crate
//! generates both impls for the plain structs and enums this workspace
//! uses (no generics, no lifetimes, no `#[serde(...)]` attributes —
//! the derive rejects what it cannot faithfully handle). `serde_json`
//! then renders `Value` to text and parses it back.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation. A `BTreeMap` keeps serialized output
/// deterministic, which the golden-output tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F(_) => None,
        }
    }
}

/// The self-describing value tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key lookup, `None` on non-objects (serde_json style).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Error produced when a `Value` does not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| Error::custom("expected path string"))
    }
}

impl Serialize for std::path::Path {
    fn serialize(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        // Route through a BTreeMap so output order is deterministic.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = String::from("hello");
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let arr = [4usize, 5, 6];
        assert_eq!(<[usize; 3]>::deserialize(&arr.serialize()).unwrap(), arr);
        let opt: Option<String> = None;
        assert!(Option::<String>::deserialize(&opt.serialize())
            .unwrap()
            .is_none());
        let pair = (String::from("k"), 0.25f64);
        assert_eq!(
            <(String, f64)>::deserialize(&pair.serialize()).unwrap(),
            pair
        );
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::deserialize(&Value::String("nope".into())).is_err());
        assert!(u8::deserialize(&300u64.serialize()).is_err());
        assert!(<[u8; 2]>::deserialize(&vec![1u8].serialize()).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
    }

    #[test]
    fn missing_optional_reads_as_none() {
        // Derived struct deserialization maps absent keys to Null.
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }
}
