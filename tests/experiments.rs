//! Experiment regression tests: every quantitative claim in the paper's
//! evaluation section (the EXPERIMENTS.md index) asserted as a test, so
//! `cargo test` re-validates the reproduction.

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::incident::incident_comparison;
use als_flows::lifecycle::{cadence_sweep, run_lifecycle};
use als_flows::sim::{FLOW_ALCF, FLOW_NERSC, FLOW_NEW_FILE};
use als_flows::streaming_model::{speedup_vs_historical, streaming_timing};
use als_flows::users::user_archetypes;
use als_tomo::throughput::ScanDims;

/// T2 — Table 2's three rows, shape-matched.
#[test]
fn t2_table2_reproduction() {
    let report = run_campaign(&CampaignConfig::default());

    let nf = report.measured(FLOW_NEW_FILE).unwrap();
    let nersc = report.measured(FLOW_NERSC).unwrap();
    let alcf = report.measured(FLOW_ALCF).unwrap();

    // paper: 120±171, med 56, [30, 676]
    assert!(
        (28.0..112.0).contains(&nf.median),
        "new_file med {}",
        nf.median
    );
    assert!(nf.mean > nf.median, "new_file right-skew");
    assert!(nf.sd > nf.mean * 0.5, "new_file heavy tail, sd {}", nf.sd);

    // paper: 1525±464, med 1665, [354, 2351]
    assert!(
        (1250.0..2080.0).contains(&nersc.median),
        "nersc med {}",
        nersc.median
    );
    assert!(
        nersc.mean < nersc.median,
        "nersc left-skew from cropped scans"
    );
    assert!((230.0..930.0).contains(&nersc.sd), "nersc sd {}", nersc.sd);
    assert!(nersc.min < 700.0, "nersc min {}", nersc.min);
    assert!(nersc.max > 1800.0, "nersc max {}", nersc.max);

    // paper: 1151±246, med 1114, [710, 1965]
    assert!(
        (835.0..1400.0).contains(&alcf.median),
        "alcf med {}",
        alcf.median
    );
    assert!(alcf.sd < nersc.sd, "alcf is more consistent than nersc");
    assert!(alcf.min > 400.0, "alcf min {}", alcf.min);

    // headline orderings
    assert!(nersc.median > alcf.median && alcf.median > nf.median);
    // "median file-based reconstruction times in 20-30 minutes"
    assert!(
        (15.0..35.0).contains(&(nersc.median / 60.0)),
        "nersc median {} min",
        nersc.median / 60.0
    );
}

/// S1 — streaming branch: 7–8 s recon, <1 s preview send, <10 s total.
#[test]
fn s1_streaming_timings() {
    let t = streaming_timing(&ScanDims::paper_reference());
    assert!((7.0..10.0).contains(&t.recon.as_secs_f64()));
    assert!(t.preview_send.as_secs_f64() < 1.0);
    assert!(t.total.as_secs_f64() < 10.0);
    // the data sizes stated in §5.2
    assert!((18.0..23.0).contains(&t.raw_gib));
    assert!((45.0..56.0).contains(&t.volume_gib));
}

/// S2 — ">100× improvement in time-to-insight".
#[test]
fn s2_speedup_over_100x() {
    let s = speedup_vs_historical();
    assert!(s.speedup > 100.0, "{:.0}x", s.speedup);
    // and it's not absurd either (bounded by physics of the model)
    assert!(s.speedup < 5000.0);
}

/// S3 — data lifecycle: 12–20 scans/hour, bounded storage with pruning.
#[test]
fn s3_lifecycle_claims() {
    for r in cadence_sweep(1, 31) {
        assert!((12.0..=20.0).contains(&r.scans_per_hour));
        assert!(r.daily_raw_tb > 0.5, "at least the paper's lower band");
    }
    let pruned = run_lifecycle(240.0, 2, true, 33);
    let unpruned = run_lifecycle(240.0, 2, false, 33);
    assert!(pruned.beamline_final_occupancy < unpruned.beamline_final_occupancy);
}

/// S4 — the §5.3 incident: fail-early rescues the queue.
#[test]
fn s4_incident_remediation() {
    let (legacy, fixed) = incident_comparison(8, 44);
    assert_eq!(legacy.scans_on_time, 0, "legacy hangs block everything");
    assert!(fixed.scans_on_time >= fixed.scans_total - 1);
    let (f, l) = (
        fixed.mean_scan_transfer_s.expect("all scans terminal"),
        legacy.mean_scan_transfer_s.expect("all scans terminal"),
    );
    assert!(f < l / 5.0);
}

/// T1 — the user archetypes table exists and matches the paper's three rows.
#[test]
fn t1_user_archetypes() {
    let rows = user_archetypes();
    assert_eq!(rows.len(), 3);
    assert!(rows[0].population.contains("thousands"));
    assert!(rows[1].population.contains("1-2 per beamline"));
}

/// F3 — the campaign exercises all five operational layers and moves
/// paper-scale volumes.
#[test]
fn f3_operational_layers_throughput() {
    let report = run_campaign(&CampaignConfig::default());
    // ~100 scans, mostly 20–30 GB: the movement layer sees many TiB
    assert!(report.total_transfer_gib > 2048.0);
    // 100 scans at 3–5 min cadence plus the trailing recon/queue tail
    assert!((5.0..14.0).contains(&report.campaign_hours));
    // transfers ride a 10 Gbps NIC: mean per-task throughput below that,
    // but above 1 Gbps (no pathological stalls)
    assert!(report.mean_transfer_gbps <= 10.0 + 1e-9);
    assert!(report.mean_transfer_gbps > 1.0);
}
