//! Crash-recovery integration tests: the orchestrator process dies
//! mid-campaign, a new incarnation replays the write-ahead journal,
//! reconciles with live facility state, and finishes the beamtime —
//! without re-initiating work the facilities already have in flight.

use als_flows::faults::FaultPlan;
use als_flows::recovery::{one_crash_plan, outcome_of, run_recovery_sim};
use als_flows::scan::ScanWorkload;
use als_flows::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC, FLOW_NEW_FILE};
use als_orchestrator::engine::FlowState;
use als_simcore::{SimDuration, SimInstant};

fn secs(s: u64) -> SimInstant {
    SimInstant::ZERO + SimDuration::from_secs(s)
}

/// The headline scenario: one crash mid-campaign. The durable restart
/// replays the journal, re-attaches in-flight operations, and the
/// campaign completes with zero duplicated side-effecting steps.
#[test]
fn crash_restart_reconcile_completes_without_duplicates() {
    let sim = run_recovery_sim(10, 41, true, &one_crash_plan());
    let out = outcome_of(&sim, 10);

    assert_eq!(out.crashes, 1, "the plan's crash must fire");
    assert_eq!(out.recoveries, 1, "restart must replay the journal");
    assert_eq!(
        out.branches_completed, out.branches_total,
        "every recon branch must deliver: {out:?}"
    );
    assert_eq!(
        out.duplicate_side_effects, 0,
        "recovery must not re-initiate facility work"
    );
    assert!(
        out.reattached_ops > 0,
        "a 40-minutes-in crash should catch transfers/jobs in flight"
    );

    // the replayed engine's history is coherent: every terminal flow run
    // completed, and the journal-recovered runs include pre-crash ones
    let engine = sim.engine();
    let q = engine.query();
    for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
        for run in q.runs_of(flow) {
            assert!(
                run.state == FlowState::Completed,
                "{flow} run {:?} ended {:?}",
                run.id,
                run.state
            );
        }
    }
    assert_eq!(q.runs_of(FLOW_NEW_FILE).len(), 10);
}

/// The same crash without the journal: the amnesiac incarnation rescans
/// the filesystem and re-initiates work that is still in flight at the
/// facilities — measurable duplicated side effects (or lost branches).
#[test]
fn baseline_restart_pays_for_forgetting() {
    let durable = outcome_of(&run_recovery_sim(10, 41, true, &one_crash_plan()), 10);
    let baseline = outcome_of(&run_recovery_sim(10, 41, false, &one_crash_plan()), 10);
    assert_eq!(baseline.crashes, 1);
    assert_eq!(baseline.recoveries, 0, "no journal, no replay");
    assert!(
        baseline.completion_rate < durable.completion_rate || baseline.duplicate_side_effects > 0,
        "baseline should lose work or duplicate it: {baseline:?}"
    );
}

/// Crashing while the coordinator is *already* down (back-to-back plan
/// entries) and restarting into a quiet system must both be harmless.
#[test]
fn crash_during_idle_tail_is_harmless() {
    // crash long after the 4-scan campaign has drained
    let plan = FaultPlan::none().with_orchestrator_crash(secs(40_000), SimDuration::from_secs(300));
    for durable in [true, false] {
        let sim = run_recovery_sim(4, 17, durable, &plan);
        let out = outcome_of(&sim, 4);
        assert_eq!(out.crashes, 1, "durable={durable}");
        assert_eq!(out.branches_completed, 8, "durable={durable}");
        assert_eq!(out.duplicate_side_effects, 0, "durable={durable}");
    }
}

/// Scans saved while the coordinator is dead are backlogged by the file
/// writer and ingested at restart — acquisition never blocks on the
/// orchestrator.
#[test]
fn scans_saved_during_downtime_are_ingested_at_restart() {
    // kill the coordinator before the first scan lands and keep it down
    // across several arrivals
    let plan = FaultPlan::none().with_orchestrator_crash(secs(60), SimDuration::from_secs(1800));
    let mut sim = FacilitySim::new(SimConfig {
        seed: 23,
        faults: plan,
        durable_recovery: true,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, 5);
    sim.run(None);
    let out = outcome_of(&sim, 5);
    assert_eq!(out.branches_completed, 10, "backlog must drain: {out:?}");
    assert_eq!(out.duplicate_side_effects, 0);
}

/// Determinism: the same seed and plan reproduce the same recovery run
/// bit-for-bit (completion, duplicates, re-attached ops, latencies).
#[test]
fn recovery_runs_are_deterministic() {
    let a = run_recovery_sim(6, 9, true, &one_crash_plan());
    let b = run_recovery_sim(6, 9, true, &one_crash_plan());
    assert_eq!(outcome_of(&a, 6), outcome_of(&b, 6));
    assert_eq!(a.branch_latencies, b.branch_latencies);
}
