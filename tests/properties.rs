//! Property-based tests (proptest) on the core invariants across crates.

use als_scidata::{crc32, Dataset, DatasetData, SdfFile};
use als_simcore::{ByteSize, DataRate, EventQueue, SimDuration, SimInstant, Summary};
use als_tomo::fft::{fft, ifft, Complex};
use als_tomo::{forward_project, Geometry, Image};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT → IFFT is the identity (to numerical precision) for any signal.
    #[test]
    fn fft_roundtrip(re in prop::collection::vec(-1e3f64..1e3, 64), im in prop::collection::vec(-1e3f64..1e3, 64)) {
        let orig: Vec<Complex> = re.iter().zip(im.iter()).map(|(&r, &i)| Complex::new(r, i)).collect();
        let mut buf = orig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(orig.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    /// Parseval: energy is conserved by the DFT (up to 1/N normalization).
    #[test]
    fn fft_parseval(re in prop::collection::vec(-100f64..100.0, 128)) {
        let mut buf: Vec<Complex> = re.iter().map(|&r| Complex::from_re(r)).collect();
        let time_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum::<f64>() / 128.0;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
    }

    /// Every projection of any image carries the same total mass
    /// (within the interpolation tolerance), provided the image content
    /// stays inside the inscribed disk.
    #[test]
    fn radon_mass_conservation(seed in 0u64..1000) {
        let n = 32;
        let mut img = Image::square(n);
        // pseudo-random blobs inside the disk
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        for _ in 0..5 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cx = 8 + (state >> 33) as usize % 14;
            let cy = 8 + (state >> 45) as usize % 14;
            let v = 1.0 + (state % 7) as f32;
            // 2x2 blobs: single-pixel impulses are the worst case for
            // bilinear sampling and are not physical detector data
            for dy in 0..2 {
                for dx in 0..2 {
                    img.set(cx + dx, cy + dy, v);
                }
            }
        }
        let total: f64 = img.data.iter().map(|&v| v as f64).sum();
        let geom = Geometry::parallel_180(12, n);
        let sino = forward_project(&img, &geom);
        for a in 0..12 {
            let mass: f64 = sino.row(a).iter().map(|&v| v as f64).sum();
            prop_assert!((mass - total).abs() <= 0.08 * total.max(1.0),
                "angle {} mass {} vs {}", a, mass, total);
        }
    }

    /// Summary statistics are internally consistent for any sample.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_slice(&values).unwrap();
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.sd >= 0.0);
        // mean matches a direct computation
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
    }

    /// transfer_time and bytes_in are inverse operations.
    #[test]
    fn rate_inversion(gbps in 0.1f64..400.0, mib in 1u64..100_000) {
        let rate = DataRate::from_gbit_per_sec(gbps);
        let size = ByteSize::from_mib(mib);
        let t = rate.transfer_time(size).unwrap();
        let back = rate.bytes_in(t);
        let err = back.as_bytes().abs_diff(size.as_bytes()) as f64;
        // microsecond rounding bounds the error to rate * 1us
        prop_assert!(err <= rate.as_bytes_per_sec() * 2e-6 + 1.0);
    }

    /// The SDF container round-trips arbitrary payloads bit-exactly.
    #[test]
    fn sdf_roundtrip(f32s in prop::collection::vec(prop::num::f32::NORMAL, 0..256),
                     u16s in prop::collection::vec(any::<u16>(), 0..256),
                     name in "[a-z]{1,12}") {
        let mut file = SdfFile::new();
        file.write_dataset(&format!("/data/{name}_f"), Dataset::new(vec![f32s.len()], DatasetData::F32(f32s)).unwrap()).unwrap();
        file.write_dataset(&format!("/data/{name}_u"), Dataset::new(vec![u16s.len()], DatasetData::U16(u16s)).unwrap()).unwrap();
        let bytes = file.to_bytes();
        let back = SdfFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, file);
    }

    /// Flipping any single byte of an encoded container is detected
    /// whenever the flip lands in a dataset payload.
    #[test]
    fn sdf_detects_payload_corruption(idx_seed in 0usize..64) {
        let mut file = SdfFile::new();
        let payload: Vec<f32> = (0..64).map(|i| i as f32).collect();
        file.write_dataset("/d", Dataset::new(vec![64], DatasetData::F32(payload)).unwrap()).unwrap();
        let mut bytes = file.to_bytes();
        let n = bytes.len();
        // payload occupies the trailing 256 bytes; flip inside it
        let idx = n - 1 - (idx_seed % 250);
        bytes[idx] ^= 0xFF;
        prop_assert!(SdfFile::from_bytes(&bytes).is_err());
    }

    /// CRC-32 changes under any single-bit flip.
    #[test]
    fn crc_bit_flip(data in prop::collection::vec(any::<u8>(), 1..512), bit in 0usize..4096) {
        let base = crc32(&data);
        let mut tampered = data.clone();
        let i = (bit / 8) % data.len();
        tampered[i] ^= 1 << (bit % 8);
        prop_assert_ne!(crc32(&tampered), base);
    }

    /// The event queue delivers any schedule in nondecreasing time order.
    #[test]
    fn event_queue_ordering(delays in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule_at(SimInstant::from_micros(d), i);
        }
        let mut last = SimInstant::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }

    /// A batch of jobs on the scheduler: nodes never oversubscribed and
    /// every job reaches a terminal state.
    #[test]
    fn scheduler_conservation(specs in prop::collection::vec((1usize..4, 10u64..500), 1..40)) {
        use als_hpc::scheduler::{JobRequest, Qos, Scheduler};
        let mut s = Scheduler::new(4);
        let mut now = SimInstant::ZERO;
        let mut ids = Vec::new();
        for (i, &(nodes, secs)) in specs.iter().enumerate() {
            let (id, _) = s.submit(JobRequest {
                name: format!("j{i}"),
                qos: if i % 2 == 0 { Qos::Realtime } else { Qos::Regular },
                nodes,
                runtime: SimDuration::from_secs(secs),
                walltime_limit: SimDuration::from_secs(10_000),
            }, now);
            ids.push(id);
            now += SimDuration::from_secs(1);
            s.advance_to(now);
            prop_assert!(s.free_nodes() <= 4);
        }
        while let Some(t) = s.next_event_time() {
            s.advance_to(t);
            prop_assert!(s.free_nodes() <= 4);
        }
        prop_assert_eq!(s.free_nodes(), 4);
        for id in ids {
            let st = s.state(id).unwrap();
            prop_assert_eq!(st, als_hpc::scheduler::JobState::Completed);
        }
    }

    /// Equal flows on one link finish in total work-conserving time.
    #[test]
    fn netsim_work_conservation(n_flows in 1usize..8, gib in 1u64..20) {
        use als_netsim::{NetworkSim, Route};
        let mut net = NetworkSim::new();
        let l = net.add_link("l", DataRate::from_gbit_per_sec(10.0), SimDuration::ZERO);
        let t0 = SimInstant::ZERO;
        for _ in 0..n_flows {
            net.start_flow(Route::new(vec![l]), ByteSize::from_gib(gib), t0);
        }
        let mut now = t0;
        let mut last = t0;
        while let Some((id, t)) = net.next_completion(now) {
            net.complete(id, t);
            last = t;
            now = t;
        }
        let total_bytes = (n_flows as u64 * gib) as f64 * (1u64 << 30) as f64;
        let expected = total_bytes / 1.25e9;
        prop_assert!((last.as_secs_f64() - expected).abs() <= 0.01 * expected + 0.01,
            "{} flows x {} GiB: {} vs {}", n_flows, gib, last.as_secs_f64(), expected);
    }

    /// TIFF encode/decode round-trips arbitrary float images bit-exactly.
    #[test]
    fn tiff_roundtrip(w in 1usize..40, h in 1usize..40, seed in any::<u32>()) {
        use als_scidata::tiff::{decode_f32, encode_f32};
        let mut img = als_tomo::Image::zeros(w, h);
        let mut state = seed as u64 | 1;
        for v in img.data.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = f32::from_bits(((state >> 32) as u32) & 0x7F7F_FFFF); // finite floats
        }
        let back = decode_f32(&encode_f32(&img)).unwrap();
        prop_assert_eq!(back, img);
    }

    /// Intensity windowing always lands in [0, 1] and is monotone.
    #[test]
    fn window_is_monotone_and_bounded(lo in -1e3f32..1e3, width in 0.1f32..1e3,
                                      samples in prop::collection::vec(-2e3f32..2e3, 1..64)) {
        use als_viz::Window;
        let w = Window { lo, hi: lo + width };
        let mut mapped: Vec<(f32, f32)> = samples.iter().map(|&v| (v, w.apply(v))).collect();
        for (_, m) in &mapped {
            prop_assert!((0.0..=1.0).contains(m));
        }
        mapped.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in mapped.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1 + 1e-6);
        }
    }

    /// Storage-tier accounting: any sequence of puts/deletes/prunes keeps
    /// used() equal to the sum of surviving file sizes and within capacity.
    #[test]
    fn storage_accounting_invariant(ops in prop::collection::vec((0u8..3, 1u64..50), 1..60)) {
        use als_hpc::storage::{StorageTier, TierKind};
        let mut tier = StorageTier::new(TierKind::BeamlineData, ByteSize::from_gib(500))
            .with_retention(Some(SimDuration::from_hours(10)));
        let mut now = SimInstant::ZERO;
        let mut shadow: std::collections::BTreeMap<String, u64> = Default::default();
        for (i, &(op, gib)) in ops.iter().enumerate() {
            now += SimDuration::from_hours(1);
            match op {
                0 => {
                    let name = format!("f{i}");
                    if tier.put(&name, ByteSize::from_gib(gib), now).is_ok() {
                        shadow.insert(name, gib);
                    }
                }
                1 => {
                    if let Some(name) = shadow.keys().next().cloned() {
                        tier.delete(&name).unwrap();
                        shadow.remove(&name);
                    }
                }
                _ => {
                    tier.prune(now);
                    // shadow prune: anything older than 10h; we advanced
                    // 1h per op, so mirror by re-listing from the tier
                    shadow.retain(|name, _| tier.contains(name));
                }
            }
            let expect: u64 = shadow.values().sum();
            prop_assert_eq!(tier.used(), ByteSize::from_gib(expect));
            prop_assert!(tier.used() <= tier.capacity());
            prop_assert_eq!(tier.file_count(), shadow.len());
        }
    }

    /// The scheduler neither loses nor duplicates jobs under arbitrary
    /// interleavings of submits, cancels, node failures, time advances,
    /// and partition drains: every submitted id stays unique and tracked,
    /// and once the partition is restored and the queue drained, every
    /// job is terminal with all nodes back in the pool.
    #[test]
    fn scheduler_never_loses_or_duplicates_jobs(ops in prop::collection::vec((0u8..5, any::<u16>()), 1..80)) {
        use als_hpc::scheduler::{JobRequest, JobState, Qos, Scheduler};
        let total = 4;
        let mut s = Scheduler::new(total);
        let mut now = SimInstant::ZERO;
        let mut ids = Vec::new();
        for (i, &(op, x)) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    // submit (weighted 2/5 so most sequences build a queue)
                    let (id, _) = s.submit(JobRequest {
                        name: format!("p{i}"),
                        qos: if x % 2 == 0 { Qos::Realtime } else { Qos::Regular },
                        nodes: 1 + (x as usize % total),
                        runtime: SimDuration::from_secs(10 + u64::from(x % 500)),
                        walltime_limit: SimDuration::from_secs(10_000),
                    }, now);
                    ids.push(id);
                }
                2 => {
                    // cancel an arbitrary earlier job (any state; no-ops ok)
                    if !ids.is_empty() {
                        s.cancel(ids[x as usize % ids.len()], now);
                    }
                }
                3 => {
                    // a node failure kills an arbitrary job if it is running
                    if !ids.is_empty() {
                        s.fail(ids[x as usize % ids.len()], now);
                    }
                }
                _ => {
                    // drain part of the partition, or restore it
                    s.set_offline(x as usize % (total + 1), now);
                }
            }
            now += SimDuration::from_secs(u64::from(x % 60));
            s.advance_to(now);
            prop_assert!(s.free_nodes() <= total);
        }
        // ids are never reused across submits
        let unique: std::collections::BTreeSet<_> = ids.iter().copied().collect();
        prop_assert_eq!(unique.len(), ids.len(), "duplicate job ids handed out");
        // restore the partition and drain whatever is still queued/running
        s.set_offline(0, now);
        while let Some(t) = s.next_event_time() {
            now = t.max(now);
            s.advance_to(now);
            prop_assert!(s.free_nodes() <= total);
        }
        // no job lost: each one is tracked and terminal
        for &id in &ids {
            let st = s.state(id);
            prop_assert!(st.is_some(), "job {:?} vanished", id);
            let st = st.unwrap();
            prop_assert!(
                matches!(st, JobState::Completed | JobState::Cancelled | JobState::Failed),
                "job {:?} stuck in {:?}", id, st
            );
        }
        prop_assert_eq!(s.pending_count(), 0);
        prop_assert_eq!(s.running_count(), 0);
        prop_assert_eq!(s.free_nodes(), total, "nodes leaked");
    }

    /// Idempotency: once completed, a key never runs again, no matter the
    /// claim/release/expiry sequence beforehand. A live lease blocks other
    /// holders; an expired lease is stolen.
    #[test]
    fn idempotency_never_reruns(ops in prop::collection::vec(0u8..4, 1..50)) {
        use als_orchestrator::idempotency::{Claim, IdempotencyStore};
        let lease = SimDuration::from_secs(600);
        let mut store = IdempotencyStore::new();
        let mut now = SimInstant::ZERO;
        let mut completed = false;
        let mut held = false;
        for op in ops {
            match op {
                0 => {
                    let c = store.claim("k", "holder", now, lease);
                    if completed {
                        prop_assert_eq!(c, Claim::Cached);
                    } else {
                        // same holder, and any prior lease we took has
                        // either been released or can be re-entered once
                        // expired — but a live lease is Busy even to us
                        if held {
                            prop_assert_eq!(c, Claim::Busy);
                        } else {
                            prop_assert_eq!(c, Claim::Run);
                            held = true;
                        }
                    }
                }
                1 => {
                    if held {
                        store.complete("k");
                        held = false;
                        completed = true;
                    }
                }
                2 => {
                    if held {
                        store.release("k");
                        held = false;
                    }
                }
                _ => {
                    // time passes beyond the lease deadline: a held,
                    // uncompleted key becomes stealable
                    now = now + lease + SimDuration::from_secs(1);
                    held = false;
                }
            }
        }
    }
}
