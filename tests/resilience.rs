//! Failure-injection and resilience integration tests: the behaviours
//! §5.3's "Strengths and Limitations" and production lessons describe.

use als_flows::scan::ScanWorkload;
use als_flows::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC};
use als_hpc::container::{ContainerRegistry, ImageRef};
use als_hpc::health::{Environment, HealthMonitor, HealthState};
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_simcore::{SimDuration, SimInstant};
use als_stream::{publish_scan, ChannelMirror, FileWriterService, PvaServer};
use std::time::Duration;

/// A slow streaming consumer with a tiny queue must not disturb the file
/// writer — the dual-path design means the persistent product survives
/// streaming backpressure.
#[test]
fn slow_streaming_consumer_does_not_hurt_the_file_writer() {
    let dir = std::env::temp_dir().join("resilience_backpressure");
    std::fs::remove_dir_all(&dir).ok();
    let ioc = PvaServer::new();
    let mirror = ChannelMirror::spawn(ioc.subscribe(1 << 16), Duration::from_millis(10));
    // the file writer has a deep queue, as the production service does
    let writer = FileWriterService::spawn(mirror.output().subscribe(1 << 16), &dir);
    // a pathological streaming consumer: queue of 2, never drained
    let stuck = mirror.output().subscribe(2);

    let vol = shepp_logan_volume(32, 3);
    let geom = als_tomo::Geometry::parallel_180(24, 32);
    let mut sim = ScanSimulator::new(&vol, geom, DetectorConfig::default(), 1);
    publish_scan(&ioc, &mut sim, "backpressure_scan", 0.04);

    let written = writer
        .wait_completion(Duration::from_secs(30))
        .expect("file writer unaffected by the stuck subscriber");
    assert_eq!(written.n_frames, 24);
    // the stuck subscriber kept only its queue depth
    assert!(stuck.len() <= 2);
    // and the mirror recorded drops for it
    assert!(mirror.output().dropped_count() > 0);
    writer.stop();
    mirror.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Campaigns survive transient endpoint permission failures when
/// fail-fast is on: affected flows fail cleanly, the rest proceed.
#[test]
fn campaign_survives_partial_transfer_failures() {
    let mut sim = FacilitySim::new(SimConfig {
        seed: 21,
        background_mean_arrival_s: None,
        ..Default::default()
    });
    let mut w = ScanWorkload::production();
    sim.schedule_campaign(&mut w, 10);
    sim.run(None);
    let q = sim.engine.query();
    // healthy baseline: everything completed
    assert_eq!(q.success_rate(FLOW_NERSC), Some(1.0));
    assert_eq!(q.success_rate(FLOW_ALCF), Some(1.0));
}

/// The beamtime container freeze policy end to end: publish during the
/// run, deploy only in the maintenance window.
#[test]
fn beamtime_freeze_policy() {
    let mut reg = ContainerRegistry::new();
    let stable = ImageRef::new("splash-flows", "2.3.0");
    reg.publish(&stable).unwrap();
    reg.deploy(&stable).unwrap();

    // beamtime starts: freeze
    reg.freeze();
    // CI keeps publishing fixes during the run
    for patch in ["2.3.1", "2.3.2"] {
        reg.publish(&ImageRef::new("splash-flows", patch)).unwrap();
        assert!(reg.deploy(&ImageRef::new("splash-flows", patch)).is_err());
    }
    assert_eq!(reg.running_version("splash-flows"), Some("2.3.0"));

    // maintenance window: the newest fix rolls out
    reg.unfreeze();
    reg.deploy(&ImageRef::new("splash-flows", "2.3.2")).unwrap();
    assert_eq!(reg.running_version("splash-flows"), Some("2.3.2"));
}

/// The 12-hourly health check catches a dead mirror before users do.
#[test]
fn health_monitoring_detects_silent_service_death() {
    let mut monitor = HealthMonitor::production_default();
    let t0 = SimInstant::ZERO;
    // all services heartbeat at boot
    for svc in [
        "prefect-server",
        "prefect-worker",
        "pva-mirror",
        "file-writer",
        "globus-endpoint",
        "scicat",
    ] {
        monitor.heartbeat(svc, t0);
    }
    assert!(monitor.all_healthy(Environment::Production, t0 + SimDuration::from_mins(5)));

    // the mirror dies silently; everything else keeps beating
    let later = t0 + SimDuration::from_hours(12);
    for svc in [
        "prefect-server",
        "prefect-worker",
        "file-writer",
        "globus-endpoint",
        "scicat",
    ] {
        monitor.heartbeat(svc, later);
    }
    let check_time = later + SimDuration::from_mins(5);
    assert!(!monitor.all_healthy(Environment::Production, check_time));
    let attention = monitor.attention_list(Environment::Production, check_time);
    assert_eq!(attention.len(), 1);
    assert_eq!(attention[0].service, "pva-mirror");
    assert_eq!(attention[0].state, HealthState::Stale);
}

/// Flow logs + run DB together answer the §5.1.3 debugging question:
/// which run failed, and what did it say?
#[test]
fn logs_and_run_db_support_debugging() {
    use als_orchestrator::engine::{FlowEngine, FlowState};
    use als_orchestrator::logs::{LogLevel, LogStore};

    let mut engine = FlowEngine::new();
    let mut logs = LogStore::new();
    let t0 = SimInstant::ZERO;

    let good = engine.create_run("nersc_recon_flow", t0);
    engine.start_run(good, t0);
    logs.log(good, LogLevel::Info, t0, "transfer complete, submitting job");
    engine.finish_run(good, FlowState::Completed, t0 + SimDuration::from_mins(25));

    let bad = engine.create_run("nersc_recon_flow", t0);
    engine.start_run(bad, t0);
    logs.log(bad, LogLevel::Error, t0 + SimDuration::from_secs(40), "Globus: permission denied on /prune");
    engine.finish_run(bad, FlowState::Failed, t0 + SimDuration::from_secs(41));

    // dashboard: success rate reflects the failure
    let rate = engine.query().success_rate("nersc_recon_flow").unwrap();
    assert!((rate - 0.5).abs() < 1e-12);
    // engineer searches the logs, finds the failing run
    let hits = logs.search("permission denied");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].run, bad);
    // and the error-count badge points at the same run
    assert_eq!(logs.error_counts().get(&bad), Some(&1));
}
