//! Failure-injection and resilience integration tests: the behaviours
//! §5.3's "Strengths and Limitations" and production lessons describe.

use als_flows::scan::ScanWorkload;
use als_flows::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC};
use als_hpc::container::{ContainerRegistry, ImageRef};
use als_hpc::health::{Environment, HealthMonitor, HealthState};
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_simcore::{SimDuration, SimInstant};
use als_stream::{publish_scan, ChannelMirror, FileWriterService, PvaServer};
use std::time::Duration;

/// A slow streaming consumer with a tiny queue must not disturb the file
/// writer — the dual-path design means the persistent product survives
/// streaming backpressure.
#[test]
fn slow_streaming_consumer_does_not_hurt_the_file_writer() {
    let dir = std::env::temp_dir().join("resilience_backpressure");
    std::fs::remove_dir_all(&dir).ok();
    let ioc = PvaServer::new();
    let mirror = ChannelMirror::spawn(ioc.subscribe(1 << 16), Duration::from_millis(10));
    // the file writer has a deep queue, as the production service does
    let writer = FileWriterService::spawn(mirror.output().subscribe(1 << 16), &dir);
    // a pathological streaming consumer: queue of 2, never drained
    let stuck = mirror.output().subscribe(2);

    let vol = shepp_logan_volume(32, 3);
    let geom = als_tomo::Geometry::parallel_180(24, 32);
    let mut sim = ScanSimulator::new(&vol, geom, DetectorConfig::default(), 1);
    publish_scan(&ioc, &mut sim, "backpressure_scan", 0.04);

    let written = writer
        .wait_completion(Duration::from_secs(30))
        .expect("file writer unaffected by the stuck subscriber");
    assert_eq!(written.n_frames, 24);
    // the stuck subscriber kept only its queue depth
    assert!(stuck.len() <= 2);
    // and the mirror recorded drops for it
    assert!(mirror.output().dropped_count() > 0);
    writer.stop();
    mirror.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Campaigns survive transient endpoint permission failures when
/// fail-fast is on: affected flows fail cleanly, the rest proceed.
#[test]
fn campaign_survives_partial_transfer_failures() {
    let mut sim = FacilitySim::new(SimConfig {
        seed: 21,
        background_mean_arrival_s: None,
        ..Default::default()
    });
    let mut w = ScanWorkload::production();
    sim.schedule_campaign(&mut w, 10);
    sim.run(None);
    let engine = sim.engine();
    let q = engine.query();
    // healthy baseline: everything completed
    assert_eq!(q.success_rate(FLOW_NERSC), Some(1.0));
    assert_eq!(q.success_rate(FLOW_ALCF), Some(1.0));
}

/// The beamtime container freeze policy end to end: publish during the
/// run, deploy only in the maintenance window.
#[test]
fn beamtime_freeze_policy() {
    let mut reg = ContainerRegistry::new();
    let stable = ImageRef::new("splash-flows", "2.3.0");
    reg.publish(&stable).unwrap();
    reg.deploy(&stable).unwrap();

    // beamtime starts: freeze
    reg.freeze();
    // CI keeps publishing fixes during the run
    for patch in ["2.3.1", "2.3.2"] {
        reg.publish(&ImageRef::new("splash-flows", patch)).unwrap();
        assert!(reg.deploy(&ImageRef::new("splash-flows", patch)).is_err());
    }
    assert_eq!(reg.running_version("splash-flows"), Some("2.3.0"));

    // maintenance window: the newest fix rolls out
    reg.unfreeze();
    reg.deploy(&ImageRef::new("splash-flows", "2.3.2")).unwrap();
    assert_eq!(reg.running_version("splash-flows"), Some("2.3.2"));
}

/// The 12-hourly health check catches a dead mirror before users do.
#[test]
fn health_monitoring_detects_silent_service_death() {
    let mut monitor = HealthMonitor::production_default();
    let t0 = SimInstant::ZERO;
    // all services heartbeat at boot
    for svc in [
        "prefect-server",
        "prefect-worker",
        "pva-mirror",
        "file-writer",
        "globus-endpoint",
        "scicat",
    ] {
        monitor.heartbeat(svc, t0);
    }
    assert!(monitor.all_healthy(Environment::Production, t0 + SimDuration::from_mins(5)));

    // the mirror dies silently; everything else keeps beating
    let later = t0 + SimDuration::from_hours(12);
    for svc in [
        "prefect-server",
        "prefect-worker",
        "file-writer",
        "globus-endpoint",
        "scicat",
    ] {
        monitor.heartbeat(svc, later);
    }
    let check_time = later + SimDuration::from_mins(5);
    assert!(!monitor.all_healthy(Environment::Production, check_time));
    let attention = monitor.attention_list(Environment::Production, check_time);
    assert_eq!(attention.len(), 1);
    assert_eq!(attention[0].service, "pva-mirror");
    assert_eq!(attention[0].state, HealthState::Stale);
}

/// Flow logs + run DB together answer the §5.1.3 debugging question:
/// which run failed, and what did it say?
#[test]
fn logs_and_run_db_support_debugging() {
    use als_orchestrator::engine::{FlowEngine, FlowState};
    use als_orchestrator::logs::{LogLevel, LogStore};

    let mut engine = FlowEngine::new();
    let mut logs = LogStore::new();
    let t0 = SimInstant::ZERO;

    let good = engine.create_run("nersc_recon_flow", t0);
    engine.start_run(good, t0);
    logs.log(
        good,
        LogLevel::Info,
        t0,
        "transfer complete, submitting job",
    );
    engine.finish_run(good, FlowState::Completed, t0 + SimDuration::from_mins(25));

    let bad = engine.create_run("nersc_recon_flow", t0);
    engine.start_run(bad, t0);
    logs.log(
        bad,
        LogLevel::Error,
        t0 + SimDuration::from_secs(40),
        "Globus: permission denied on /prune",
    );
    engine.finish_run(bad, FlowState::Failed, t0 + SimDuration::from_secs(41));

    // dashboard: success rate reflects the failure
    let rate = engine.query().success_rate("nersc_recon_flow").unwrap();
    assert!((rate - 0.5).abs() < 1e-12);
    // engineer searches the logs, finds the failing run
    let hits = logs.search("permission denied");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].run, bad);
    // and the error-count badge points at the same run
    assert_eq!(logs.error_counts().get(&bad), Some(&1));
}

/// The full §5.3 incident arc, end to end: a mid-beamtime NERSC outage
/// strands and kills work → the circuit breaker opens and redirects the
/// NERSC branch to ALCF → stranded jobs are remotely cancelled at their
/// deadline → the outage ends, heartbeats resume, the breaker half-opens
/// and a probe job closes it → late scans fail back to NERSC.
#[test]
fn nersc_outage_failover_recovery_and_failback() {
    use als_flows::resilience::{nersc_outage_plan, outcome_of, run_resilience_sim};
    use als_hpc::BreakerState;
    use als_orchestrator::engine::FlowState;

    // 24 scans every 5 minutes; the outage covers 900 s..6300 s, so scans
    // keep arriving for ~15 minutes after recovery (past the breaker's
    // 10-minute cooldown) — enough to observe fail-back.
    let plan = nersc_outage_plan(900, 5400);
    let sim = run_resilience_sim(24, 5, true, &plan);
    let out = outcome_of(&sim, 24);

    // remediation worked: the whole campaign completed
    assert_eq!(out.branch_flows_total, 48);
    assert_eq!(out.completion_rate, 1.0, "failover rescued every branch");
    assert!(out.failover_count > 0, "outage must trigger redirects");
    assert!(out.remote_cancels > 0, "stranded jobs must be cancelled");
    assert!(out.nersc_breaker_trips >= 1);

    // the run DB shows the redirects: NERSC-branch runs during the outage
    // carry the failover parameter and the redirect + remote-cancel tasks
    let engine = sim.engine();
    let q = engine.query();
    let nersc_runs = q.runs_of(als_flows::sim::FLOW_NERSC);
    assert_eq!(nersc_runs.len(), 24);
    let redirected: Vec<_> = nersc_runs
        .iter()
        .filter(|r| r.parameters.get("failover").map(String::as_str) == Some("alcf"))
        .collect();
    assert!(!redirected.is_empty());
    // some redirects happen at failure time (redirect task recorded), the
    // rest at launch time once the breaker is already open
    assert!(redirected
        .iter()
        .any(|r| r.tasks.iter().any(|t| t.name == "failover_redirect")));
    assert!(nersc_runs.iter().any(|r| r
        .tasks
        .iter()
        .any(|t| t.name == "remote_cancel_stranded_job")));

    // fail-back: the last scan arrives after outage end + cooldown, and
    // its NERSC branch runs at NERSC again — no failover parameter
    let last = nersc_runs
        .iter()
        .max_by(|a, b| a.created.as_secs_f64().total_cmp(&b.created.as_secs_f64()))
        .unwrap();
    assert!(last.created.as_secs_f64() > 6300.0 + 600.0);
    assert_eq!(last.state, FlowState::Completed);
    assert!(
        !last.parameters.contains_key("failover"),
        "late scans fail back to NERSC"
    );
    assert!(last.tasks.iter().any(|t| t.name == "sfapi_slurm_job"));

    // and the breaker has closed again
    assert_eq!(
        sim.breaker(als_facility::Facility::Nersc).state(),
        BreakerState::Closed
    );
}

/// Paired comparison on the same scans and the same outage: failover
/// strictly improves campaign completion.
#[test]
fn failover_strictly_beats_no_failover_under_outage() {
    use als_flows::resilience::{nersc_outage_plan, resilience_comparison};

    let plan = nersc_outage_plan(900, 5400);
    let cmp = resilience_comparison(16, 5, &plan);
    assert!(
        cmp.with_failover.completion_rate > cmp.without_failover.completion_rate,
        "with {} must beat without {}",
        cmp.with_failover.completion_rate,
        cmp.without_failover.completion_rate
    );
    assert_eq!(cmp.with_failover.completion_rate, 1.0);
    assert!(cmp.without_failover.completion_rate < 1.0);
    assert_eq!(cmp.without_failover.failover_count, 0);
    // deadline-driven remote cancellation is baseline operator behaviour
    // in both arms; only the rerouting differs
    assert!(cmp.without_failover.remote_cancels > 0);
}

/// Fault-injected campaigns are deterministic: the same seed and plan
/// reproduce the same outcome, redirect for redirect.
#[test]
fn resilience_runs_are_deterministic() {
    use als_flows::resilience::{nersc_outage_plan, outcome_of, run_resilience_sim};

    let plan = nersc_outage_plan(900, 5400);
    let a = outcome_of(&run_resilience_sim(12, 9, true, &plan), 12);
    let b = outcome_of(&run_resilience_sim(12, 9, true, &plan), 12);
    assert_eq!(a, b);
}
