//! Property-based tests on the cost-aware router's safety invariants
//! under arbitrary fault schedules.
//!
//! For any combination of facility outage windows the router must:
//!
//! 1. never select a facility whose circuit breaker was open (or whose
//!    heartbeat was stale) at selection time — checked against the
//!    router's own audit log, which snapshots both at every decision;
//! 2. never duplicate a facility-side mutation while re-routing — every
//!    redirect abandons its claim (and remotely cancels stranded work)
//!    before the branch moves;
//! 3. leave nothing behind once the campaign drains: no live
//!    reconstruction ops at any facility, no open entries in the
//!    orchestrator's op map.

use als_facility::RouterMode;
use als_flows::faults::{FaultKind, FaultPlan, FaultWindow};
use als_flows::scan::ScanWorkload;
use als_flows::sim::{FacilitySim, SimConfig};
use als_hpc::BreakerState;
use als_simcore::{SimDuration, SimInstant};
use proptest::prelude::*;

/// An arbitrary outage schedule: up to one window per facility, each
/// starting inside the arrival window and lasting 5–90 minutes. Windows
/// may overlap arbitrarily — including all three facilities at once.
fn outage_plan(windows: &[(u8, u64, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(which, start_s, dur_s) in windows {
        let kind = match which % 3 {
            0 => FaultKind::NerscOutage,
            1 => FaultKind::AlcfOutage,
            _ => FaultKind::OlcfOutage,
        };
        let start = SimInstant::ZERO + SimDuration::from_secs(start_s);
        plan = plan.with_window(FaultWindow::new(
            start,
            start + SimDuration::from_secs(dur_s),
            kind,
        ));
    }
    plan
}

fn run_campaign(seed: u64, n_scans: usize, plan: &FaultPlan) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: plan.clone(),
        failover_enabled: true,
        router_mode: RouterMode::CostAware,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Router safety under arbitrary outage schedules.
    #[test]
    fn router_never_selects_unhealthy_and_leaks_nothing(
        seed in 1u64..500,
        windows in prop::collection::vec(
            (0u8..3, 120u64..2400, 300u64..5400),
            0..3,
        ),
    ) {
        let plan = outage_plan(&windows);
        let sim = run_campaign(seed, 6, &plan);

        // 1. the audit log: every routing decision landed on a facility
        //    whose breaker was not open and whose heartbeat was fresh
        for d in sim.router.decisions() {
            prop_assert_ne!(
                d.breaker_state,
                BreakerState::Open,
                "routed to open breaker: {:?}",
                d
            );
            prop_assert!(!d.heartbeat_stale, "routed to stale facility: {:?}", d);
        }

        // 2. re-routing never repeated a facility-side mutation
        prop_assert_eq!(sim.duplicate_side_effects, 0);

        // 3. a drained campaign leaves no stranded work anywhere: every
        //    abandoned redirect had a matching remote cancel
        prop_assert_eq!(sim.live_recon_ops(), 0, "live recon ops left at facilities");
        prop_assert_eq!(sim.open_exec_ops(), 0, "orchestrator still tracking ops");
    }
}
