//! Equivalence of the chunked scan-to-archive pipeline against the
//! retained per-slice baselines, on a simulated Shepp-Logan scan — at
//! one worker thread and at several, to catch ordering/racing bugs in
//! the slab/parallel plumbing.

use als_flows::realmode::{
    file_based_reconstruction_baseline, file_based_reconstruction_with, streaming_reconstruction,
    streaming_reconstruction_baseline, FileBranchConfig,
};
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_scidata::ScanFile;
use als_stream::slab::{FrameSlab, SlabFrame};
use als_stream::streamer::{reconstruct_preview, IncrementalScan, PlanCache, StreamerConfig};
use als_stream::{announce_for, ScanAnnounce};
use als_tomo::{Geometry, Volume};
use std::sync::Arc;

fn shepp_logan_scan(n: usize, nz: usize, n_angles: usize) -> (ScanFile, f64) {
    let vol = shepp_logan_volume(n, nz);
    let geom = Geometry::parallel_180(n_angles, n);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 4242);
    let frames = sim.all_frames();
    let scan = ScanFile::from_frames(
        "pipeline_equivalence",
        &frames,
        sim.dark_field(),
        sim.flat_field(),
        &geom.angles,
    )
    .expect("scan assembles");
    (scan, det.mu_scale)
}

fn rmse(a: &Volume, b: &Volume) -> f64 {
    assert_eq!((a.nx, a.ny, a.nz), (b.nx, b.ny, b.nz));
    let sum: f64 = a
        .data
        .iter()
        .zip(b.data.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum();
    (sum / a.data.len() as f64).sqrt()
}

/// Single test driving both thread counts sequentially:
/// `rayon::set_num_threads` is process-global, so the 1-thread and
/// N-thread runs must not race with each other.
#[test]
fn pipeline_matches_baseline_at_one_and_many_threads() {
    let (scan, mu) = shepp_logan_scan(48, 5, 24);
    let cfg = FileBranchConfig {
        sirt_iterations: 15,
        slab_rows: 2,
        ..Default::default()
    };

    let file_baseline = file_based_reconstruction_baseline(&scan, mu, &cfg);
    let stream_baseline = streaming_reconstruction_baseline(&scan, mu);

    let mut per_thread_file: Vec<Volume> = Vec::new();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let file_pipeline = file_based_reconstruction_with(&scan, mu, &cfg);
        let stream_pipeline = streaming_reconstruction(&scan, mu);

        // file branch: the pipeline's table-driven SIRT reassociates
        // floating-point sums, so agreement is ≤1e-5 RMSE, not bitwise
        let e = rmse(&file_baseline, &file_pipeline);
        assert!(
            e <= 1e-5,
            "file-based pipeline vs baseline rmse {e} at {threads} threads"
        );

        // streaming branch: identical fused prep + the same shared FBP
        // plan — must be exactly the per-slice result
        assert_eq!(
            stream_baseline, stream_pipeline,
            "streaming pipeline diverged at {threads} threads"
        );
        per_thread_file.push(file_pipeline);
    }
    rayon::set_num_threads(0);

    // thread count must not change the output at all
    assert_eq!(
        per_thread_file[0], per_thread_file[1],
        "pipeline output depends on worker thread count"
    );
}

/// The streaming service's incremental sinogram assembly (rows prepped as
/// each frame arrives, slab released immediately) must produce previews
/// **bit-identical** to the retained from-scratch path that gathers every
/// row from a whole-scan frame cache at scan end: per-element the float
/// operations are the same, only their interleaving differs.
#[test]
fn incremental_preview_is_bit_identical_to_from_scratch() {
    let vol = shepp_logan_volume(48, 4);
    let geom = Geometry::parallel_180(36, 48);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 97);
    let announce: ScanAnnounce = announce_for(&sim, "equiv", det.mu_scale);
    let frames: Vec<SlabFrame> = sim
        .all_frames()
        .into_iter()
        .map(|f| FrameSlab::detached(f.meta, f.data))
        .collect();

    let cfg = StreamerConfig::default();
    let scratch = reconstruct_preview(&announce, &frames, &cfg, "equiv").expect("scratch preview");

    let announce = Arc::new(announce);
    let mut scan = IncrementalScan::new(Arc::clone(&announce));
    for f in &frames {
        assert!(scan.ingest(f));
    }
    let plans = PlanCache::new();
    let incremental = scan
        .finish(&plans, &cfg.fbp, "equiv")
        .expect("incremental preview");

    assert_eq!(incremental.cached_frames, scratch.cached_frames);
    for (i, (a, b)) in incremental
        .slices
        .iter()
        .zip(scratch.slices.iter())
        .enumerate()
    {
        assert_eq!(a.data, b.data, "preview slice {i} diverged");
    }
}

/// Same equivalence when the acquisition is truncated — frames lost
/// upstream must shrink both paths' geometry identically.
#[test]
fn incremental_preview_matches_from_scratch_on_partial_scans() {
    let vol = shepp_logan_volume(32, 3);
    let geom = Geometry::parallel_180(24, 32);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 31);
    let announce = announce_for(&sim, "partial", det.mu_scale);
    // only 17 of the announced 24 frames arrive
    let frames: Vec<SlabFrame> = sim
        .all_frames()
        .into_iter()
        .take(17)
        .map(|f| FrameSlab::detached(f.meta, f.data))
        .collect();

    let cfg = StreamerConfig::default();
    let scratch = reconstruct_preview(&announce, &frames, &cfg, "partial").unwrap();
    let announce = Arc::new(announce);
    let mut scan = IncrementalScan::new(Arc::clone(&announce));
    for f in &frames {
        scan.ingest(f);
    }
    let incremental = scan.finish(&PlanCache::new(), &cfg.fbp, "partial").unwrap();

    assert_eq!(incremental.cached_frames, 17);
    assert_eq!(incremental.dropped_frames, 7);
    assert_eq!(scratch.dropped_frames, 7);
    for (a, b) in incremental.slices.iter().zip(scratch.slices.iter()) {
        assert_eq!(a.data, b.data);
    }
}
