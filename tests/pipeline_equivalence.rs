//! Equivalence of the chunked scan-to-archive pipeline against the
//! retained per-slice baselines, on a simulated Shepp-Logan scan — at
//! one worker thread and at several, to catch ordering/racing bugs in
//! the slab/parallel plumbing.

use als_flows::realmode::{
    file_based_reconstruction_baseline, file_based_reconstruction_with, streaming_reconstruction,
    streaming_reconstruction_baseline, FileBranchConfig,
};
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_scidata::ScanFile;
use als_tomo::{Geometry, Volume};

fn shepp_logan_scan(n: usize, nz: usize, n_angles: usize) -> (ScanFile, f64) {
    let vol = shepp_logan_volume(n, nz);
    let geom = Geometry::parallel_180(n_angles, n);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 4242);
    let frames = sim.all_frames();
    let scan = ScanFile::from_frames(
        "pipeline_equivalence",
        &frames,
        sim.dark_field(),
        sim.flat_field(),
        &geom.angles,
    )
    .expect("scan assembles");
    (scan, det.mu_scale)
}

fn rmse(a: &Volume, b: &Volume) -> f64 {
    assert_eq!((a.nx, a.ny, a.nz), (b.nx, b.ny, b.nz));
    let sum: f64 = a
        .data
        .iter()
        .zip(b.data.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum();
    (sum / a.data.len() as f64).sqrt()
}

/// Single test driving both thread counts sequentially:
/// `rayon::set_num_threads` is process-global, so the 1-thread and
/// N-thread runs must not race with each other.
#[test]
fn pipeline_matches_baseline_at_one_and_many_threads() {
    let (scan, mu) = shepp_logan_scan(48, 5, 24);
    let cfg = FileBranchConfig {
        sirt_iterations: 15,
        slab_rows: 2,
        ..Default::default()
    };

    let file_baseline = file_based_reconstruction_baseline(&scan, mu, &cfg);
    let stream_baseline = streaming_reconstruction_baseline(&scan, mu);

    let mut per_thread_file: Vec<Volume> = Vec::new();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let file_pipeline = file_based_reconstruction_with(&scan, mu, &cfg);
        let stream_pipeline = streaming_reconstruction(&scan, mu);

        // file branch: the pipeline's table-driven SIRT reassociates
        // floating-point sums, so agreement is ≤1e-5 RMSE, not bitwise
        let e = rmse(&file_baseline, &file_pipeline);
        assert!(
            e <= 1e-5,
            "file-based pipeline vs baseline rmse {e} at {threads} threads"
        );

        // streaming branch: identical fused prep + the same shared FBP
        // plan — must be exactly the per-slice result
        assert_eq!(
            stream_baseline, stream_pipeline,
            "streaming pipeline diverged at {threads} threads"
        );
        per_thread_file.push(file_pipeline);
    }
    rayon::set_num_threads(0);

    // thread count must not change the output at all
    assert_eq!(
        per_thread_file[0], per_thread_file[1],
        "pipeline output depends on worker thread count"
    );
}
