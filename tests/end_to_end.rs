//! Cross-crate integration tests: the full Figure 3 pipeline, end to end,
//! in both execution modes.

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::realmode::run_session;
use als_flows::scan::ScanWorkload;
use als_flows::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC, FLOW_NEW_FILE};
use als_hpc::scheduler::Qos;
use als_phantom::{feather_volume, shepp_logan_volume, FeatherSpecies};
use als_scidata::ScanFile;
use als_tomo::quality::mse_in_disk;
use als_viz::three_slice_preview;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("e2e_{name}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn real_mode_dual_path_full_chain() {
    // detector frames -> PVA mirror -> {file writer, streaming recon} ->
    // file-based recon -> preview extraction: every layer touched
    let dir = tmpdir("dual_path");
    let truth = shepp_logan_volume(48, 4);
    let result = run_session(&truth, 48, &dir, "e2e_scan", 11);

    // streaming preview arrived with the expected geometry
    assert_eq!(result.preview.cached_frames, 48);
    assert_eq!(result.preview.slices[0].width, 48);

    // the written scan file is loadable and internally consistent
    let scan = ScanFile::load(&result.scan_path).unwrap();
    assert_eq!(scan.shape(), (48, 4, 48));
    assert_eq!(scan.angles().len(), 48);

    // both reconstruction products resemble the ground truth
    for z in 0..4 {
        let t = truth.slice_xy(z);
        assert!(mse_in_disk(&t, &result.streaming_volume.slice_xy(z)) < 0.05);
        assert!(mse_in_disk(&t, &result.file_based_volume.slice_xy(z)) < 0.05);
    }

    // the access layer can cut previews from the file-based product
    let slices = three_slice_preview(&result.file_based_volume);
    assert_eq!(slices[0].width, 48);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_mode_campaign_with_quality_of_service_ablation() {
    // realtime QOS should reduce NERSC queue exposure vs regular QOS
    // under the same background load
    let mk = |qos: Qos| {
        let mut sim = FacilitySim::new(SimConfig {
            seed: 99,
            nersc_qos: qos,
            nersc_nodes: 4,
            background_mean_arrival_s: Some(240.0), // heavy competing load
            ..Default::default()
        });
        let mut w = ScanWorkload::production();
        sim.schedule_campaign(&mut w, 20);
        sim.run(None);
        sim.engine()
            .query()
            .table2_summary(FLOW_NERSC, 100)
            .expect("runs exist")
    };
    let realtime = mk(Qos::Realtime);
    let regular = mk(Qos::Regular);
    assert!(
        realtime.mean < regular.mean,
        "realtime QOS mean {} should beat regular {}",
        realtime.mean,
        regular.mean
    );
}

#[test]
fn sim_mode_checksum_ablation() {
    // disabling checksum verification shortens flows (at integrity risk)
    let mk = |verify: bool| {
        let report = run_campaign(&CampaignConfig {
            n_scans: 30,
            sim: SimConfig {
                seed: 5,
                verify_checksums: verify,
                background_mean_arrival_s: None,
                ..Default::default()
            },
        });
        report.measured(FLOW_NERSC).unwrap().mean
    };
    let with = mk(true);
    let without = mk(false);
    assert!(
        without < with,
        "checksum-off mean {without} should be below checksum-on {with}"
    );
}

#[test]
fn sim_mode_demand_queue_ablation() {
    // the paper's claim: Globus Compute's demand queue avoids batch waits
    use als_globus::compute::AcquisitionMode;
    let mk = |mode: AcquisitionMode| {
        let report = run_campaign(&CampaignConfig {
            n_scans: 30,
            sim: SimConfig {
                seed: 6,
                alcf_mode: mode,
                background_mean_arrival_s: None,
                ..Default::default()
            },
        });
        report.measured(FLOW_ALCF).unwrap().median
    };
    let demand = mk(AcquisitionMode::DemandQueue);
    let batch = mk(AcquisitionMode::Batch);
    assert!(
        demand < batch,
        "demand queue median {demand} should beat batch {batch}"
    );
}

#[test]
fn feather_scan_survives_the_whole_catalogued_pipeline() {
    // case-study shaped end-to-end: feather phantom through real mode,
    // then verify the scan file round-trips through the container layer
    let dir = tmpdir("feather");
    let phantom = feather_volume(FeatherSpecies::Sandgrouse, 64, 3, 77);
    let result = run_session(&phantom, 64, &dir, "feather_e2e", 3);
    let scan = ScanFile::load(&result.scan_path).unwrap();
    assert_eq!(scan.scan_name(), "feather_e2e");
    // raw bytes: 64 angles x 3 rows x 64 cols x 2B plus references
    assert!(result.scan_bytes >= (64 * 3 * 64 * 2) as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flow_counts_and_success_rates_are_consistent() {
    let report = run_campaign(&CampaignConfig {
        n_scans: 40,
        sim: SimConfig {
            seed: 12,
            ..Default::default()
        },
    });
    for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
        let m = report.measured(flow).unwrap();
        assert_eq!(m.n, 40, "{flow} should have 40 successful runs");
    }
    for (flow, rate) in &report.success_rates {
        assert_eq!(*rate, 1.0, "{flow} success rate");
    }
}
