//! Flow-run lifecycle tracking and the queryable run database.
//!
//! The engine does not execute anything itself — execution is driven by
//! the simulation (or by real services) which reports state transitions.
//! What the engine owns is the record: every flow run, every task run,
//! every retry, with timestamps, plus the query API used to produce
//! Table 2 ("we queried the Prefect server API, extracted and aggregated
//! completion times").

use als_simcore::{SimDuration, SimInstant, Summary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a flow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowRunId(pub u64);

/// Flow lifecycle states (Prefect's state vocabulary, trimmed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowState {
    Scheduled,
    Running,
    Completed,
    Failed,
    Cancelled,
}

impl FlowState {
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            FlowState::Completed | FlowState::Failed | FlowState::Cancelled
        )
    }
}

/// Task lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    Pending,
    Running,
    Completed,
    Failed,
    /// Waiting for its next retry attempt.
    AwaitingRetry,
    /// Skipped because an idempotency key already completed.
    Cached,
}

/// Retry policy for tasks: `max_attempts` total tries with exponential
/// backoff starting at `base_delay`, optionally jittered so that flows
/// which failed together don't retry together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_delay: SimDuration,
    /// Multiplier applied per attempt (2.0 = doubling).
    pub backoff: f64,
    /// Jitter fraction in `[0, 1)`: each seeded delay is scaled by a
    /// factor drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: SimDuration::from_secs(10),
            backoff: 2.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (1-based: the delay after the
    /// `attempt`-th failure). `None` when attempts are exhausted. The
    /// deterministic nominal schedule — jitter is applied only by
    /// [`RetryPolicy::delay_after_seeded`].
    pub fn delay_after(&self, attempt: u32) -> Option<SimDuration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let factor = self.backoff.powi(attempt.saturating_sub(1) as i32);
        Some(self.base_delay * factor)
    }

    /// Like [`RetryPolicy::delay_after`], but decorrelated: the delay is
    /// jittered by a factor derived deterministically from `(seed,
    /// attempt)`, so the same flow run replays the same schedule while
    /// distinct runs spread out instead of retrying in lockstep (the
    /// thundering-herd failure mode after a facility-wide outage).
    pub fn delay_after_seeded(&self, attempt: u32, seed: u64) -> Option<SimDuration> {
        let nominal = self.delay_after(attempt)?;
        if self.jitter == 0.0 {
            return Some(nominal);
        }
        debug_assert!((0.0..1.0).contains(&self.jitter), "jitter outside [0, 1)");
        // splitmix64 over the (seed, attempt) pair: cheap, stateless, and
        // well-distributed even for consecutive seeds
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // uniform [0, 1)
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        Some(SimDuration::from_secs_f64(nominal.as_secs_f64() * factor))
    }

    /// Deadline-aware retry scheduling: the (seeded, jittered) delay for
    /// retry `attempt`, unless that delay would land the retry past
    /// `deadline` — a retry that cannot start before the flow's deadline
    /// is wasted queue pressure, so the caller should fail terminally
    /// instead. Landing exactly *at* the deadline is still allowed (the
    /// retry fires at the last admissible instant).
    pub fn delay_before_deadline(
        &self,
        attempt: u32,
        seed: u64,
        now: SimInstant,
        deadline: SimInstant,
    ) -> Option<SimDuration> {
        let delay = self.delay_after_seeded(attempt, seed)?;
        if now + delay > deadline {
            return None;
        }
        Some(delay)
    }
}

/// One task run inside a flow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRun {
    pub name: String,
    pub state: TaskState,
    pub attempts: u32,
    pub started: Option<SimInstant>,
    pub finished: Option<SimInstant>,
    /// Idempotency key, if the task declared one.
    pub key: Option<String>,
    /// Most recent error message.
    pub error: Option<String>,
}

/// One flow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRun {
    pub id: FlowRunId,
    pub flow_name: String,
    pub state: FlowState,
    pub created: SimInstant,
    pub started: Option<SimInstant>,
    pub finished: Option<SimInstant>,
    pub tasks: Vec<TaskRun>,
    /// Free-form parameters (scan id, file size, ...).
    pub parameters: BTreeMap<String, String>,
}

impl FlowRun {
    /// End-to-end duration for terminal runs (created → finished, which is
    /// what the Prefect dashboard reports as the flow duration).
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished?.duration_since(self.created))
    }
}

/// The engine + run database.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEngine {
    runs: BTreeMap<FlowRunId, FlowRun>,
    next_id: u64,
    /// Id stride: shard `s` of an `n`-shard fleet uses `with_stride(s, n)`
    /// so run ids interleave globally without coordination (`id % n == s`).
    stride: u64,
}

impl Default for FlowEngine {
    fn default() -> Self {
        Self::with_stride(0, 1)
    }
}

impl FlowEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine whose run ids start at `first` and advance by `stride`.
    /// A sharded fleet gives shard `s` the engine `with_stride(s, n)`:
    /// ids stay globally unique and `id % n` recovers the owning shard.
    pub fn with_stride(first: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        FlowEngine {
            runs: BTreeMap::new(),
            next_id: first,
            stride,
        }
    }

    /// Create a flow run in `Scheduled` state.
    pub fn create_run(&mut self, flow_name: &str, now: SimInstant) -> FlowRunId {
        let id = FlowRunId(self.next_id);
        self.next_id += self.stride;
        self.runs.insert(
            id,
            FlowRun {
                id,
                flow_name: flow_name.to_string(),
                state: FlowState::Scheduled,
                created: now,
                started: None,
                finished: None,
                tasks: Vec::new(),
                parameters: BTreeMap::new(),
            },
        );
        id
    }

    /// Attach a parameter to a run.
    pub fn set_parameter(&mut self, id: FlowRunId, key: &str, value: &str) {
        if let Some(run) = self.runs.get_mut(&id) {
            run.parameters.insert(key.to_string(), value.to_string());
        }
    }

    /// Transition to Running.
    pub fn start_run(&mut self, id: FlowRunId, now: SimInstant) {
        if let Some(run) = self.runs.get_mut(&id) {
            assert_eq!(run.state, FlowState::Scheduled, "run already started");
            run.state = FlowState::Running;
            run.started = Some(now);
        }
    }

    /// Begin a task within a run; returns its index.
    pub fn start_task(
        &mut self,
        id: FlowRunId,
        name: &str,
        key: Option<&str>,
        now: SimInstant,
    ) -> usize {
        let run = self.runs.get_mut(&id).expect("flow run exists");
        run.tasks.push(TaskRun {
            name: name.to_string(),
            state: TaskState::Running,
            attempts: 1,
            started: Some(now),
            finished: None,
            key: key.map(str::to_string),
            error: None,
        });
        run.tasks.len() - 1
    }

    /// Record a task's terminal (or retrying) transition.
    pub fn finish_task(
        &mut self,
        id: FlowRunId,
        task: usize,
        state: TaskState,
        now: SimInstant,
        error: Option<&str>,
    ) {
        let run = self.runs.get_mut(&id).expect("flow run exists");
        let t = &mut run.tasks[task];
        t.state = state;
        t.finished = Some(now);
        t.error = error.map(str::to_string);
    }

    /// Record a retry attempt on a task (puts it back in Running).
    pub fn retry_task(&mut self, id: FlowRunId, task: usize, now: SimInstant) {
        let run = self.runs.get_mut(&id).expect("flow run exists");
        let t = &mut run.tasks[task];
        t.attempts += 1;
        t.state = TaskState::Running;
        t.started = Some(now);
        t.finished = None;
    }

    /// Terminal transition for a flow run.
    pub fn finish_run(&mut self, id: FlowRunId, state: FlowState, now: SimInstant) {
        assert!(state.is_terminal(), "finish_run needs a terminal state");
        if let Some(run) = self.runs.get_mut(&id) {
            assert!(!run.state.is_terminal(), "run already finished");
            run.state = state;
            run.finished = Some(now);
        }
    }

    pub fn run(&self, id: FlowRunId) -> Option<&FlowRun> {
        self.runs.get(&id)
    }

    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The id the next [`FlowEngine::create_run`] will assign. The
    /// write-ahead journal records it before the run exists.
    pub fn peek_next_id(&self) -> u64 {
        self.next_id
    }

    /// All runs, in creation order.
    pub fn runs(&self) -> impl Iterator<Item = &FlowRun> {
        self.runs.values()
    }

    /// Merge another engine's run database into this one — the fleet-wide
    /// query view over per-shard engines. Ids must be disjoint (which the
    /// stride discipline guarantees); colliding ids would silently shadow,
    /// so they are rejected.
    pub fn absorb(&mut self, other: &FlowEngine) {
        for run in other.runs.values() {
            let prev = self.runs.insert(run.id, run.clone());
            assert!(prev.is_none(), "run id collision while merging shards");
        }
    }

    /// Query interface (the Prefect API substitute).
    pub fn query(&self) -> RunQuery<'_> {
        RunQuery { engine: self }
    }
}

/// Read-only queries over the run database.
pub struct RunQuery<'a> {
    engine: &'a FlowEngine,
}

impl<'a> RunQuery<'a> {
    /// All runs of a flow, in creation order.
    pub fn runs_of(&self, flow_name: &str) -> Vec<&'a FlowRun> {
        self.engine
            .runs
            .values()
            .filter(|r| r.flow_name == flow_name)
            .collect()
    }

    /// Durations (seconds) of the last `n` *successful* runs of a flow —
    /// the exact Table 2 aggregation ("the last 100 successful file-based
    /// Prefect flow runs").
    pub fn last_n_successful_durations(&self, flow_name: &str, n: usize) -> Vec<f64> {
        let mut completed: Vec<&FlowRun> = self
            .engine
            .runs
            .values()
            .filter(|r| r.flow_name == flow_name && r.state == FlowState::Completed)
            .collect();
        completed.sort_by_key(|r| r.finished);
        completed
            .iter()
            .rev()
            .take(n)
            .filter_map(|r| r.duration())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Summary statistics over the last `n` successful runs.
    pub fn table2_summary(&self, flow_name: &str, n: usize) -> Option<Summary> {
        Summary::from_slice(&self.last_n_successful_durations(flow_name, n))
    }

    /// Success rate of a flow (completed / terminal).
    pub fn success_rate(&self, flow_name: &str) -> Option<f64> {
        let terminal: Vec<&FlowRun> = self
            .engine
            .runs
            .values()
            .filter(|r| r.flow_name == flow_name && r.state.is_terminal())
            .collect();
        if terminal.is_empty() {
            return None;
        }
        let ok = terminal
            .iter()
            .filter(|r| r.state == FlowState::Completed)
            .count();
        Some(ok as f64 / terminal.len() as f64)
    }

    /// Total retry attempts recorded across all tasks of a flow.
    pub fn total_retries(&self, flow_name: &str) -> u32 {
        self.runs_of(flow_name)
            .iter()
            .flat_map(|r| r.tasks.iter())
            .map(|t| t.attempts.saturating_sub(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_runs(durations_s: &[u64]) -> FlowEngine {
        let mut e = FlowEngine::new();
        for (i, &d) in durations_s.iter().enumerate() {
            let t0 = SimInstant::ZERO + SimDuration::from_secs(i as u64 * 1000);
            let id = e.create_run("nersc_recon_flow", t0);
            e.start_run(id, t0);
            e.finish_run(id, FlowState::Completed, t0 + SimDuration::from_secs(d));
        }
        e
    }

    #[test]
    fn run_lifecycle_and_duration() {
        let mut e = FlowEngine::new();
        let t0 = SimInstant::ZERO;
        let id = e.create_run("new_file_832", t0);
        e.set_parameter(id, "scan", "scan_0001");
        e.start_run(id, t0 + SimDuration::from_secs(2));
        let task = e.start_task(
            id,
            "copy_to_nersc",
            Some("scan_0001/copy"),
            t0 + SimDuration::from_secs(2),
        );
        e.finish_task(
            id,
            task,
            TaskState::Completed,
            t0 + SimDuration::from_secs(50),
            None,
        );
        e.finish_run(id, FlowState::Completed, t0 + SimDuration::from_secs(56));
        let run = e.run(id).unwrap();
        assert_eq!(run.state, FlowState::Completed);
        assert_eq!(run.duration().unwrap(), SimDuration::from_secs(56));
        assert_eq!(run.parameters["scan"], "scan_0001");
        assert_eq!(run.tasks[0].state, TaskState::Completed);
    }

    #[test]
    fn table2_summary_aggregates_successes_only() {
        let mut e = engine_with_runs(&[100, 200, 300]);
        // one failed run must not count
        let t = SimInstant::ZERO + SimDuration::from_hours(10);
        let bad = e.create_run("nersc_recon_flow", t);
        e.start_run(bad, t);
        e.finish_run(bad, FlowState::Failed, t + SimDuration::from_secs(5));
        let s = e.query().table2_summary("nersc_recon_flow", 100).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 200.0).abs() < 1e-9);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 300.0);
    }

    #[test]
    fn last_n_takes_most_recent() {
        let e = engine_with_runs(&[10, 20, 30, 40, 50]);
        let d = e.query().last_n_successful_durations("nersc_recon_flow", 2);
        // most recent two: 50 and 40
        assert_eq!(d.len(), 2);
        assert!(d.contains(&50.0) && d.contains(&40.0));
    }

    #[test]
    fn success_rate_counts_terminal_states() {
        let mut e = engine_with_runs(&[10, 10, 10]);
        let t = SimInstant::ZERO + SimDuration::from_hours(20);
        let bad = e.create_run("nersc_recon_flow", t);
        e.start_run(bad, t);
        e.finish_run(bad, FlowState::Failed, t + SimDuration::from_secs(1));
        // a still-running flow is excluded
        let running = e.create_run("nersc_recon_flow", t);
        e.start_run(running, t);
        assert!((e.query().success_rate("nersc_recon_flow").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: SimDuration::from_secs(10),
            backoff: 2.0,
            jitter: 0.0,
        };
        assert_eq!(p.delay_after(1), Some(SimDuration::from_secs(10)));
        assert_eq!(p.delay_after(2), Some(SimDuration::from_secs(20)));
        assert_eq!(p.delay_after(3), Some(SimDuration::from_secs(40)));
        assert_eq!(p.delay_after(4), None, "attempts exhausted");
    }

    #[test]
    fn seeded_jitter_is_reproducible_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 4,
            jitter: 0.3,
            ..Default::default()
        };
        for attempt in 1..=3 {
            let a = p.delay_after_seeded(attempt, 42).unwrap();
            let b = p.delay_after_seeded(attempt, 42).unwrap();
            assert_eq!(a, b, "same (seed, attempt) must replay identically");
            let nominal = p.delay_after(attempt).unwrap().as_secs_f64();
            let s = a.as_secs_f64();
            assert!(
                s >= nominal * 0.7 - 1e-9 && s <= nominal * 1.3 + 1e-9,
                "jittered {s} outside ±30% of {nominal}"
            );
        }
        assert_eq!(p.delay_after_seeded(4, 42), None, "exhaustion unaffected");
    }

    #[test]
    fn seeded_jitter_decorrelates_neighbouring_seeds() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..Default::default()
        };
        // flows that failed together (consecutive run ids as seeds) must
        // not retry in lockstep: their first-retry delays should spread
        let delays: Vec<f64> = (0..50)
            .map(|seed| p.delay_after_seeded(1, seed).unwrap().as_secs_f64())
            .collect();
        let distinct = {
            let mut d = delays.clone();
            d.sort_by(f64::total_cmp);
            d.dedup();
            d.len()
        };
        assert!(distinct >= 45, "only {distinct}/50 distinct delays");
        let spread = delays.iter().cloned().fold(f64::MIN, f64::max)
            - delays.iter().cloned().fold(f64::MAX, f64::min);
        let nominal = p.delay_after(1).unwrap().as_secs_f64();
        assert!(spread > 0.5 * nominal, "herd barely spread: {spread} s");
    }

    #[test]
    fn zero_jitter_matches_the_nominal_schedule() {
        let p = RetryPolicy::default();
        for attempt in 0..5 {
            for seed in [0u64, 1, u64::MAX] {
                assert_eq!(p.delay_after_seeded(attempt, seed), p.delay_after(attempt));
            }
        }
    }

    #[test]
    fn retries_are_counted() {
        let mut e = FlowEngine::new();
        let t0 = SimInstant::ZERO;
        let id = e.create_run("alcf_recon_flow", t0);
        e.start_run(id, t0);
        let task = e.start_task(id, "globus_compute", None, t0);
        e.finish_task(
            id,
            task,
            TaskState::AwaitingRetry,
            t0 + SimDuration::from_secs(5),
            Some("timeout"),
        );
        e.retry_task(id, task, t0 + SimDuration::from_secs(15));
        e.finish_task(
            id,
            task,
            TaskState::Completed,
            t0 + SimDuration::from_secs(60),
            None,
        );
        e.finish_run(id, FlowState::Completed, t0 + SimDuration::from_secs(61));
        assert_eq!(e.query().total_retries("alcf_recon_flow"), 1);
        assert_eq!(e.run(id).unwrap().tasks[task].attempts, 2);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn double_finish_panics() {
        let mut e = FlowEngine::new();
        let id = e.create_run("f", SimInstant::ZERO);
        e.start_run(id, SimInstant::ZERO);
        e.finish_run(id, FlowState::Completed, SimInstant::ZERO);
        e.finish_run(id, FlowState::Failed, SimInstant::ZERO);
    }

    #[test]
    fn empty_query_returns_none() {
        let e = FlowEngine::new();
        assert!(e.query().table2_summary("nope", 100).is_none());
        assert!(e.query().success_rate("nope").is_none());
    }

    #[test]
    fn strided_engines_interleave_globally_unique_ids() {
        let t0 = SimInstant::ZERO;
        let mut shards: Vec<FlowEngine> = (0..4).map(|s| FlowEngine::with_stride(s, 4)).collect();
        let mut ids = Vec::new();
        for round in 0..3 {
            for (s, e) in shards.iter_mut().enumerate() {
                let id = e.create_run("f", t0);
                assert_eq!(id.0 % 4, s as u64, "id encodes its shard");
                assert_eq!(id.0, s as u64 + 4 * round);
                ids.push(id.0);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "no collisions across shards");
    }

    #[test]
    fn absorb_builds_the_fleet_wide_view() {
        let t0 = SimInstant::ZERO;
        let mut a = FlowEngine::with_stride(0, 2);
        let mut b = FlowEngine::with_stride(1, 2);
        for e in [&mut a, &mut b] {
            let id = e.create_run("nersc_recon_flow", t0);
            e.start_run(id, t0);
            e.finish_run(id, FlowState::Completed, t0 + SimDuration::from_secs(30));
        }
        let mut merged = FlowEngine::new();
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged.run_count(), 2);
        assert_eq!(merged.query().runs_of("nersc_recon_flow").len(), 2);
        assert_eq!(
            merged.query().success_rate("nersc_recon_flow"),
            Some(1.0),
            "queries span both shards"
        );
    }

    #[test]
    fn deadline_aware_retry_refuses_delays_landing_past_the_deadline() {
        let p = RetryPolicy {
            max_attempts: 5,
            jitter: 0.25,
            ..Default::default()
        };
        let now = SimInstant::ZERO + SimDuration::from_secs(100);
        let seed = 7u64;
        // take the actual jittered delay and place the deadline around it
        let d = p.delay_after_seeded(1, seed).unwrap();
        assert_eq!(
            p.delay_before_deadline(1, seed, now, now + d),
            Some(d),
            "landing exactly at the deadline is the last admissible retry"
        );
        let just_past = now + d - SimDuration::from_millis(1);
        assert_eq!(
            p.delay_before_deadline(1, seed, now, just_past),
            None,
            "one millisecond short of the landing point means terminal failure"
        );
        assert_eq!(
            p.delay_before_deadline(1, seed, now, now + d + SimDuration::from_secs(1)),
            Some(d),
            "room to spare schedules normally"
        );
        // attempt exhaustion still wins over any deadline headroom
        assert_eq!(
            p.delay_before_deadline(5, seed, now, now + SimDuration::from_hours(10)),
            None
        );
    }

    #[test]
    fn deadline_aware_retry_is_seed_sensitive_at_the_boundary() {
        // with ±50% jitter, a deadline sized to the *nominal* delay admits
        // some seeds (jitter shrank the delay) and rejects others (jitter
        // grew it) — the boundary the deadline check must respect exactly
        let p = RetryPolicy {
            max_attempts: 3,
            jitter: 0.5,
            ..Default::default()
        };
        let now = SimInstant::ZERO;
        let deadline = now + p.delay_after(1).unwrap();
        let (mut admitted, mut rejected) = (0, 0);
        for seed in 0..64u64 {
            match p.delay_before_deadline(1, seed, now, deadline) {
                Some(d) => {
                    admitted += 1;
                    assert!(now + d <= deadline, "admitted delay overshoots deadline");
                }
                None => rejected += 1,
            }
        }
        assert!(admitted > 0 && rejected > 0, "{admitted} / {rejected}");
    }
}
