//! Periodic schedules for maintenance flows.
//!
//! "Scheduled pruning flows prevent storage saturation" and "automated
//! health monitoring every 12-24 hours" — both are fixed-interval
//! schedules on the simulation clock.

use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// A fixed-interval schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    pub every: SimDuration,
    next_fire: SimInstant,
}

impl Schedule {
    /// Fire every `every`, first at `start + every`.
    pub fn new(every: SimDuration, start: SimInstant) -> Self {
        assert!(!every.is_zero(), "schedule interval must be nonzero");
        Schedule {
            every,
            next_fire: start + every,
        }
    }

    /// The paper's pruning cadence (daily) and health checks (every 12 h).
    pub fn daily_pruning(start: SimInstant) -> Self {
        Schedule::new(SimDuration::from_hours(24), start)
    }

    pub fn health_monitoring(start: SimInstant) -> Self {
        Schedule::new(SimDuration::from_hours(12), start)
    }

    /// Next time the schedule fires.
    pub fn next_fire(&self) -> SimInstant {
        self.next_fire
    }

    /// Fire times due at or before `now`; advances the schedule past them.
    /// A long gap yields every missed firing (catch-up semantics).
    pub fn due(&mut self, now: SimInstant) -> Vec<SimInstant> {
        let mut fired = Vec::new();
        while self.next_fire <= now {
            fired.push(self.next_fire);
            self.next_fire += self.every;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_fixed_interval() {
        let mut s = Schedule::new(SimDuration::from_hours(1), SimInstant::ZERO);
        assert_eq!(s.next_fire(), SimInstant::ZERO + SimDuration::from_hours(1));
        let fired = s.due(SimInstant::ZERO + SimDuration::from_hours(3));
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[2], SimInstant::ZERO + SimDuration::from_hours(3));
        assert_eq!(s.next_fire(), SimInstant::ZERO + SimDuration::from_hours(4));
    }

    #[test]
    fn nothing_due_before_first_interval() {
        let mut s = Schedule::daily_pruning(SimInstant::ZERO);
        assert!(s
            .due(SimInstant::ZERO + SimDuration::from_hours(23))
            .is_empty());
    }

    #[test]
    fn health_fires_twice_daily() {
        let mut s = Schedule::health_monitoring(SimInstant::ZERO);
        let fired = s.due(SimInstant::ZERO + SimDuration::from_hours(24));
        assert_eq!(fired.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_rejected() {
        Schedule::new(SimDuration::ZERO, SimInstant::ZERO);
    }
}
