//! Named concurrency-limit pools.
//!
//! "Prefect workers execute flows in isolated containers with carefully
//! tuned limits: tuned concurrency for scan detection tasks, but lower
//! concurrency for HPC job submission to prevent queue conflicts."
//! A pool is a counting semaphore identified by a tag; tasks acquire a
//! slot before running and release it after.

use std::collections::BTreeMap;

/// A set of named counting semaphores.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ConcurrencyLimits {
    pools: BTreeMap<String, Pool>,
}

#[derive(Debug, Clone, PartialEq)]
struct Pool {
    limit: usize,
    in_use: usize,
    /// High-water mark, for observability.
    peak: usize,
    /// Total acquisitions that had to be refused.
    rejections: u64,
}

impl ConcurrencyLimits {
    pub fn new() -> Self {
        Self::default()
    }

    /// The production configuration from §4.2.2.
    pub fn production() -> Self {
        let mut l = Self::new();
        l.set_limit("scan-detect", 8);
        l.set_limit("hpc-submit", 2);
        l.set_limit("globus-transfer", 4);
        l.set_limit("prune", 1);
        l
    }

    /// Create or resize a pool.
    pub fn set_limit(&mut self, tag: &str, limit: usize) {
        let pool = self.pools.entry(tag.to_string()).or_insert(Pool {
            limit,
            in_use: 0,
            peak: 0,
            rejections: 0,
        });
        pool.limit = limit;
    }

    /// Try to take a slot. Unknown tags are unlimited (Prefect semantics:
    /// no limit configured means no constraint).
    pub fn try_acquire(&mut self, tag: &str) -> bool {
        match self.pools.get_mut(tag) {
            None => true,
            Some(pool) => {
                if pool.in_use < pool.limit {
                    pool.in_use += 1;
                    pool.peak = pool.peak.max(pool.in_use);
                    true
                } else {
                    pool.rejections += 1;
                    false
                }
            }
        }
    }

    /// Would [`ConcurrencyLimits::try_acquire`] succeed right now?
    /// Read-only: no slot is taken and no rejection is counted. The
    /// durable orchestrator peeks the outcome, journals it, and lets the
    /// journal apply perform the actual mutation.
    pub fn would_admit(&self, tag: &str) -> bool {
        self.pools.get(tag).is_none_or(|p| p.in_use < p.limit)
    }

    /// Count a rejection without re-evaluating admission — the journal
    /// replay path for `LimitRejected`. The original refusal may have
    /// been decided against fleet-level occupancy, so replay must record
    /// the tally rather than re-run the (shard-local) admission test.
    pub fn note_rejection(&mut self, tag: &str) {
        if let Some(pool) = self.pools.get_mut(tag) {
            pool.rejections += 1;
        }
    }

    /// Tags with a configured pool, in deterministic order.
    pub fn pool_tags(&self) -> Vec<&str> {
        self.pools.keys().map(String::as_str).collect()
    }

    /// Release a previously acquired slot.
    pub fn release(&mut self, tag: &str) {
        if let Some(pool) = self.pools.get_mut(tag) {
            assert!(pool.in_use > 0, "release without acquire on '{tag}'");
            pool.in_use -= 1;
        }
    }

    pub fn in_use(&self, tag: &str) -> usize {
        self.pools.get(tag).map_or(0, |p| p.in_use)
    }

    pub fn limit(&self, tag: &str) -> Option<usize> {
        self.pools.get(tag).map(|p| p.limit)
    }

    pub fn peak(&self, tag: &str) -> usize {
        self.pools.get(tag).map_or(0, |p| p.peak)
    }

    pub fn rejections(&self, tag: &str) -> u64 {
        self.pools.get(tag).map_or(0, |p| p.rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_up_to_limit_then_refuse() {
        let mut l = ConcurrencyLimits::new();
        l.set_limit("hpc-submit", 2);
        assert!(l.try_acquire("hpc-submit"));
        assert!(l.try_acquire("hpc-submit"));
        assert!(!l.try_acquire("hpc-submit"));
        assert_eq!(l.rejections("hpc-submit"), 1);
        l.release("hpc-submit");
        assert!(l.try_acquire("hpc-submit"));
        assert_eq!(l.peak("hpc-submit"), 2);
    }

    #[test]
    fn unknown_tags_are_unlimited() {
        let mut l = ConcurrencyLimits::new();
        for _ in 0..1000 {
            assert!(l.try_acquire("anything"));
        }
    }

    #[test]
    fn production_pools_match_paper_intent() {
        let mut l = ConcurrencyLimits::production();
        // scan detection is wider than HPC submission
        assert!(l.limit("scan-detect").unwrap() > l.limit("hpc-submit").unwrap());
        // prune is serialized (the §5.3 incident involved a burst of
        // concurrent prune requests)
        assert_eq!(l.limit("prune"), Some(1));
        assert!(l.try_acquire("prune"));
        assert!(!l.try_acquire("prune"));
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn unbalanced_release_panics() {
        let mut l = ConcurrencyLimits::new();
        l.set_limit("x", 1);
        l.release("x");
    }

    #[test]
    fn resizing_keeps_in_use() {
        let mut l = ConcurrencyLimits::new();
        l.set_limit("x", 1);
        assert!(l.try_acquire("x"));
        l.set_limit("x", 3);
        assert!(l.try_acquire("x"));
        assert_eq!(l.in_use("x"), 2);
    }
}
