//! Append-only write-ahead journal for the orchestrator.
//!
//! Every flow/task state transition, retry scheduling decision,
//! idempotency claim/complete/release, concurrency-limit decision, and
//! external-operation handoff is serialized as one framed record *before*
//! the in-memory state mutates. Replaying the journal from the top
//! therefore reconstructs the orchestrator's exact state — the property
//! [`crate::recovery::DurableOrchestrator`] builds crash recovery on.
//!
//! Frame format (one record per line):
//!
//! ```text
//! <seq:16 hex> <crc32:8 hex> <json payload>\n
//! ```
//!
//! The CRC-32 (IEEE, from `als_scidata::checksum`) covers the sequence
//! number and the payload, so a record torn mid-write (the classic
//! power-cut tail), bit-rotted in place, or spliced from another journal
//! fails verification. Replay stops at the first bad frame and reports
//! the torn tail so recovery can truncate it.

use crate::engine::{FlowState, TaskState};
use als_scidata::checksum::crc32;
use als_simcore::{SimDuration, SimInstant};
use als_telemetry::{Counter, Histogram, Registry, TraceEvent};
use serde::{Deserialize, Serialize};

/// Kinds of external operations the orchestrator hands off to facility
/// services. The journal records the handle so a restarted incarnation
/// can re-attach to (or cancel) the live operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExternalKind {
    /// A Slurm job submitted through the SFAPI (`hpc::Scheduler`).
    Job,
    /// A Globus transfer task (`globus::TransferService`).
    Transfer,
    /// A Globus Compute invocation (`globus::ComputeEndpoint`).
    Compute,
}

/// One journal record. Variants mirror the mutating operations of
/// `FlowEngine`, `IdempotencyStore`, and `ConcurrencyLimits`, plus the
/// external-operation ledger that reconciliation needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A new orchestrator incarnation opened the journal.
    IncarnationStarted {
        holder: String,
        at: SimInstant,
    },
    FlowCreated {
        run: u64,
        flow: String,
        at: SimInstant,
    },
    FlowParam {
        run: u64,
        key: String,
        value: String,
    },
    FlowStarted {
        run: u64,
        at: SimInstant,
    },
    FlowFinished {
        run: u64,
        state: FlowState,
        at: SimInstant,
    },
    TaskStarted {
        run: u64,
        task: usize,
        name: String,
        key: Option<String>,
        at: SimInstant,
    },
    TaskFinished {
        run: u64,
        task: usize,
        state: TaskState,
        at: SimInstant,
        error: Option<String>,
    },
    TaskRetried {
        run: u64,
        task: usize,
        at: SimInstant,
    },
    /// A retry was *decided* (delay computed from the retry policy).
    /// Pure bookkeeping for recovery: state changes only at the later
    /// `TaskRetried`.
    RetryScheduled {
        run: u64,
        task: usize,
        attempt: u32,
        delay: SimDuration,
    },
    ClaimAcquired {
        key: String,
        holder: String,
        deadline: SimInstant,
    },
    ClaimCompleted {
        key: String,
    },
    ClaimReleased {
        key: String,
    },
    /// An expired lease (typically held by a dead incarnation) was
    /// evicted before re-claiming.
    LeaseExpired {
        key: String,
        holder: String,
    },
    LimitSet {
        tag: String,
        limit: usize,
    },
    LimitAcquired {
        tag: String,
    },
    LimitReleased {
        tag: String,
    },
    /// An acquisition was refused. Journaled so replay reproduces the
    /// rejection counters exactly.
    LimitRejected {
        tag: String,
    },
    /// An external operation was handed to a facility service.
    /// `ctx` is caller-defined (JSON) context for re-attachment.
    ExternalSubmitted {
        kind: ExternalKind,
        handle: u64,
        run: u64,
        ctx: String,
    },
    /// The external operation reached a terminal state (either way).
    ExternalResolved {
        kind: ExternalKind,
        handle: u64,
    },
    /// A trace span mutation (start/end/note). Spans ride the WAL next
    /// to the state records, so crash recovery replays them into the
    /// identical trace store the dead incarnation had.
    SpanEvent {
        ev: TraceEvent,
    },
}

impl JournalRecord {
    /// The simulation-clock timestamp the record carries, if any.
    /// Group-commit latency is measured against these — telemetry never
    /// reads the wall clock.
    pub fn timestamp(&self) -> Option<SimInstant> {
        match self {
            JournalRecord::IncarnationStarted { at, .. }
            | JournalRecord::FlowCreated { at, .. }
            | JournalRecord::FlowStarted { at, .. }
            | JournalRecord::FlowFinished { at, .. }
            | JournalRecord::TaskStarted { at, .. }
            | JournalRecord::TaskFinished { at, .. }
            | JournalRecord::TaskRetried { at, .. } => Some(*at),
            JournalRecord::SpanEvent { ev } => Some(ev.at()),
            _ => None,
        }
    }
}

/// What replay found at the end of the journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TailReport {
    /// Records that verified and were replayed.
    pub valid_records: u64,
    /// Bytes of torn/corrupt tail truncated after the last valid record.
    pub dropped_bytes: usize,
    /// Why the tail was dropped, when it was.
    pub damage: Option<TailDamage>,
}

/// The first defect replay hit (everything from there on is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDamage {
    /// Record ended without a newline (torn mid-write).
    TornWrite,
    /// Frame didn't parse as `seq crc payload`.
    BadFrame,
    /// CRC-32 mismatch: the payload was altered after writing.
    ChecksumMismatch,
    /// Sequence number out of order (lost or duplicated record).
    SequenceGap,
}

impl TailReport {
    pub fn is_clean(&self) -> bool {
        self.damage.is_none()
    }
}

/// The append-only journal. In production this would sit on durable
/// storage; here it is an in-memory byte log whose contents survive a
/// simulated crash exactly when the simulation chooses to persist them.
///
/// Two durability modes:
///
/// * **immediate** (`batch <= 1`, the default): every appended record
///   lands in the durable image at once — one write per record, the
///   PR 2 behaviour.
/// * **group commit** (`batch >= 2`): appended frames accumulate in a
///   pending buffer and move to the durable image together, either when
///   `batch` records have accumulated or on an explicit [`Journal::flush`]
///   barrier. One write covers many records; a crash loses whatever is
///   still pending, and [`Journal::crash_image_mid_flush`] models the
///   flush itself being torn by the crash.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Durable bytes — what survives a crash.
    buf: Vec<u8>,
    next_seq: u64,
    /// Group-commit threshold; `0` or `1` means immediate durability.
    batch: usize,
    /// Framed records appended but not yet flushed to `buf`.
    pending: Vec<u8>,
    pending_records: u64,
    /// Durable write operations issued (appends in immediate mode,
    /// flushes in group-commit mode) — the denominator a WAL device
    /// would fsync on.
    writes: u64,
    /// Offset in `buf` where the most recent durable write began; a
    /// crash racing that write can tear anywhere past this point.
    last_write_start: usize,
    /// Registry handles, attached by [`Journal::instrument`].
    metrics: Option<JournalMetrics>,
}

/// Interned registry handles for the journal write path.
#[derive(Debug, Clone)]
struct JournalMetrics {
    records: Counter,
    flushes: Counter,
    flush_batch: Histogram,
}

fn frame_crc(seq: u64, payload: &str) -> u32 {
    let mut framed = format!("{seq:016x} ").into_bytes();
    framed.extend_from_slice(payload.as_bytes());
    crc32(&framed)
}

impl Journal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch durability mode. Any pending records are flushed first so
    /// no frame changes mode mid-flight. `0` or `1` = immediate.
    pub fn set_group_commit(&mut self, batch: usize) {
        self.flush();
        self.batch = batch;
    }

    pub fn group_commit_batch(&self) -> usize {
        self.batch
    }

    /// Attach registry handles: `orch_journal_records_total`,
    /// `orch_journal_flushes_total` (durable write operations), and
    /// `orch_journal_flush_batch_records` (records per durable write).
    /// Pre-attach history back-fills the counters; per-write batch sizes
    /// from before attachment are gone.
    pub fn instrument(&mut self, registry: &Registry) {
        let m = JournalMetrics {
            records: registry.counter("orch_journal_records_total", &[]),
            flushes: registry.counter("orch_journal_flushes_total", &[]),
            flush_batch: registry.histogram("orch_journal_flush_batch_records", &[]),
        };
        m.records.add(self.next_seq);
        m.flushes.add(self.writes);
        self.metrics = Some(m);
    }

    /// Append one record. Must be called *before* applying the mutation
    /// it describes (write-ahead discipline). In group-commit mode the
    /// frame is buffered and becomes durable at the next flush.
    pub fn append(&mut self, rec: &JournalRecord) {
        let payload = serde_json::to_string(rec).expect("journal record serializes");
        let crc = frame_crc(self.next_seq, &payload);
        let line = format!("{:016x} {:08x} {}\n", self.next_seq, crc, payload);
        self.next_seq += 1;
        if let Some(m) = &self.metrics {
            m.records.inc();
        }
        if self.batch <= 1 {
            self.last_write_start = self.buf.len();
            self.buf.extend_from_slice(line.as_bytes());
            self.writes += 1;
            if let Some(m) = &self.metrics {
                m.flushes.inc();
                m.flush_batch.record(1);
            }
        } else {
            self.pending.extend_from_slice(line.as_bytes());
            self.pending_records += 1;
            if self.pending_records as usize >= self.batch {
                self.flush();
            }
        }
    }

    /// Commit barrier: move every pending frame into the durable image
    /// as one write. Returns whether anything was written. Callers place
    /// this *before* handing side effects to a facility, so the claim
    /// and submission records are durable before the work exists.
    pub fn flush(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.last_write_start = self.buf.len();
        self.buf.append(&mut self.pending);
        let batch = self.pending_records;
        self.pending_records = 0;
        self.writes += 1;
        if let Some(m) = &self.metrics {
            m.flushes.inc();
            m.flush_batch.record(batch);
        }
        true
    }

    /// The raw *durable* journal bytes (what a crash-surviving store
    /// would hold). Pending group-commit frames are not included.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of records appended so far (durable + pending).
    pub fn record_count(&self) -> u64 {
        self.next_seq
    }

    /// Records already in the durable image.
    pub fn durable_record_count(&self) -> u64 {
        self.next_seq - self.pending_records
    }

    /// Records buffered but not yet flushed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Durable write operations issued so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// What a crash right now leaves on durable storage: the flushed
    /// image; pending frames die with the process.
    pub fn crash_image(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// What a crash *racing the flush itself* leaves behind: the durable
    /// image plus a torn prefix of the write that was in flight —
    /// `keep_milli`/1000 of it. With nothing pending, the tear lands
    /// inside the most recent durable write instead (the device had not
    /// finished committing it). Either way the result is a valid prefix
    /// followed by a torn frame, exactly what replay truncates.
    pub fn crash_image_mid_flush(&self, keep_milli: u32) -> Vec<u8> {
        let keep_milli = keep_milli.min(1000) as usize;
        if !self.pending.is_empty() {
            let keep = self.pending.len() * keep_milli / 1000;
            let mut img = self.buf.clone();
            img.extend_from_slice(&self.pending[..keep]);
            img
        } else {
            let tail = self.buf.len() - self.last_write_start;
            let keep = tail * keep_milli / 1000;
            self.buf[..self.last_write_start + keep].to_vec()
        }
    }

    /// Damage the journal for tests/experiments: drop the last
    /// `drop_bytes` bytes, simulating a write torn by the crash.
    pub fn tear_tail(&mut self, drop_bytes: usize) {
        let keep = self.buf.len().saturating_sub(drop_bytes);
        self.buf.truncate(keep);
    }

    /// Flip one byte in place (bit-rot injection for tests).
    pub fn corrupt_byte(&mut self, offset: usize) {
        if let Some(b) = self.buf.get_mut(offset) {
            *b ^= 0x01;
        }
    }

    /// Decode a journal image: every record that frames, checksums, and
    /// sequences correctly, plus a report on the (possibly torn) tail.
    /// Decoding stops at the first bad frame — a write-ahead log is only
    /// trustworthy up to its first defect.
    pub fn replay_bytes(bytes: &[u8]) -> (Vec<JournalRecord>, TailReport) {
        let mut records = Vec::new();
        let mut report = TailReport::default();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let rest = &bytes[pos..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                report.damage = Some(TailDamage::TornWrite);
                break;
            };
            let line = &rest[..nl];
            match Self::decode_line(line, report.valid_records) {
                Ok(rec) => {
                    records.push(rec);
                    report.valid_records += 1;
                    pos += nl + 1;
                }
                Err(damage) => {
                    report.damage = Some(damage);
                    break;
                }
            }
        }
        report.dropped_bytes = bytes.len() - pos;
        (records, report)
    }

    fn decode_line(line: &[u8], expected_seq: u64) -> Result<JournalRecord, TailDamage> {
        let text = std::str::from_utf8(line).map_err(|_| TailDamage::BadFrame)?;
        // "<seq:16> <crc:8> <payload>"
        if text.len() < 26 || text.as_bytes().get(16) != Some(&b' ') {
            return Err(TailDamage::BadFrame);
        }
        let seq = u64::from_str_radix(&text[..16], 16).map_err(|_| TailDamage::BadFrame)?;
        let crc = u32::from_str_radix(&text[17..25], 16).map_err(|_| TailDamage::BadFrame)?;
        let payload = text.get(26..).ok_or(TailDamage::BadFrame)?;
        if frame_crc(seq, payload) != crc {
            return Err(TailDamage::ChecksumMismatch);
        }
        if seq != expected_seq {
            return Err(TailDamage::SequenceGap);
        }
        serde_json::from_str(payload).map_err(|_| TailDamage::BadFrame)
    }

    /// Rebuild a journal from the valid prefix of a crash-surviving
    /// image, so appends continue the sequence. Returns the journal, the
    /// decoded records, and the tail report.
    pub fn from_bytes(bytes: &[u8]) -> (Self, Vec<JournalRecord>, TailReport) {
        let (records, report) = Self::replay_bytes(bytes);
        let valid_len = bytes.len() - report.dropped_bytes;
        let journal = Journal {
            buf: bytes[..valid_len].to_vec(),
            next_seq: report.valid_records,
            last_write_start: valid_len,
            ..Default::default()
        };
        (journal, records, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::IncarnationStarted {
                holder: "orch-0".into(),
                at: t(0),
            },
            JournalRecord::FlowCreated {
                run: 0,
                flow: "new_file_832".into(),
                at: t(1),
            },
            JournalRecord::FlowParam {
                run: 0,
                key: "scan".into(),
                value: "scan_0001".into(),
            },
            JournalRecord::TaskStarted {
                run: 0,
                task: 0,
                name: "stage_and_ingest".into(),
                key: Some("scan_0001/ingest".into()),
                at: t(2),
            },
            JournalRecord::ClaimAcquired {
                key: "scan_0001/ingest".into(),
                holder: "orch-0".into(),
                deadline: t(3600),
            },
            JournalRecord::RetryScheduled {
                run: 0,
                task: 0,
                attempt: 1,
                delay: SimDuration::from_secs(10),
            },
            JournalRecord::ExternalSubmitted {
                kind: ExternalKind::Transfer,
                handle: 7,
                run: 0,
                ctx: "{\"scan\":1}".into(),
            },
            JournalRecord::FlowFinished {
                run: 0,
                state: FlowState::Completed,
                at: t(60),
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let mut j = Journal::new();
        let recs = sample_records();
        for r in &recs {
            j.append(r);
        }
        let (decoded, report) = Journal::replay_bytes(j.bytes());
        assert_eq!(decoded, recs);
        assert!(report.is_clean());
        assert_eq!(report.valid_records, recs.len() as u64);
        assert_eq!(report.dropped_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        let full = j.byte_len();
        j.tear_tail(10); // rip the last record mid-write
        let (decoded, report) = Journal::replay_bytes(j.bytes());
        assert_eq!(decoded.len(), sample_records().len() - 1);
        assert_eq!(report.damage, Some(TailDamage::TornWrite));
        assert!(report.dropped_bytes > 0 && report.dropped_bytes < full);
        // the surviving prefix replays the same records
        assert_eq!(decoded, sample_records()[..decoded.len()].to_vec());
    }

    #[test]
    fn bit_rot_fails_the_checksum() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        // flip a payload byte in the middle of the log
        j.corrupt_byte(j.byte_len() / 2);
        let (decoded, report) = Journal::replay_bytes(j.bytes());
        assert!(decoded.len() < sample_records().len());
        assert!(matches!(
            report.damage,
            Some(TailDamage::ChecksumMismatch | TailDamage::BadFrame)
        ));
    }

    #[test]
    fn from_bytes_continues_the_sequence_after_truncation() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        j.tear_tail(5);
        let (mut revived, decoded, report) = Journal::from_bytes(j.bytes());
        assert!(!report.is_clean());
        assert_eq!(revived.record_count(), decoded.len() as u64);
        revived.append(&JournalRecord::IncarnationStarted {
            holder: "orch-1".into(),
            at: t(100),
        });
        let (again, report2) = Journal::replay_bytes(revived.bytes());
        assert!(
            report2.is_clean(),
            "truncate-then-append yields a clean log"
        );
        assert_eq!(again.len(), decoded.len() + 1);
    }

    #[test]
    fn empty_journal_is_clean() {
        let (recs, report) = Journal::replay_bytes(&[]);
        assert!(recs.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn group_commit_batches_records_into_fewer_writes() {
        let mut j = Journal::new();
        j.set_group_commit(3);
        let recs = sample_records();
        for r in &recs {
            j.append(r); // 8 records -> flushes after 3 and 6
        }
        assert_eq!(j.record_count(), 8);
        assert_eq!(j.durable_record_count(), 6);
        assert_eq!(j.pending_records(), 2);
        assert_eq!(j.write_count(), 2, "two batch flushes, not eight writes");
        assert!(j.flush(), "barrier drains the remainder");
        assert_eq!(j.durable_record_count(), 8);
        assert_eq!(j.write_count(), 3);
        let (decoded, report) = Journal::replay_bytes(j.bytes());
        assert!(report.is_clean());
        assert_eq!(decoded, recs);
    }

    #[test]
    fn immediate_mode_writes_every_record() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r);
        }
        assert_eq!(j.write_count(), j.record_count());
        assert_eq!(j.pending_records(), 0);
    }

    #[test]
    fn crash_drops_pending_but_keeps_the_flushed_prefix() {
        let mut j = Journal::new();
        j.set_group_commit(4);
        let recs = sample_records();
        for r in &recs {
            j.append(r); // flushes after 4; 8 total -> 8 durable? 8/4=2 flushes, 0 pending
        }
        j.append(&recs[0]); // one pending record on top
        assert_eq!(j.pending_records(), 1);
        let image = j.crash_image();
        let (decoded, report) = Journal::replay_bytes(&image);
        assert!(report.is_clean(), "durable image is a clean prefix");
        assert_eq!(decoded.len(), 8, "the pending record died with the crash");
    }

    #[test]
    fn mid_flush_tear_degrades_to_a_clean_shorter_prefix() {
        let mut j = Journal::new();
        j.set_group_commit(4);
        let recs = sample_records();
        for r in &recs[..4] {
            j.append(r); // exactly one flushed batch, nothing pending
        }
        // the crash raced that flush: only 40% of the write hit the disk
        let image = j.crash_image_mid_flush(400);
        assert!(image.len() < j.byte_len());
        let (decoded, report) = Journal::replay_bytes(&image);
        assert!(!report.is_clean(), "a torn flush leaves a damaged tail");
        assert!(decoded.len() < 4);
        assert_eq!(decoded, recs[..decoded.len()].to_vec());

        // with frames pending, the tear lands inside the in-flight flush
        for r in &recs[4..6] {
            j.append(r);
        }
        let image = j.crash_image_mid_flush(500);
        let (decoded, _) = Journal::replay_bytes(&image);
        assert!(decoded.len() >= 4, "durable batch survives the torn flush");
    }

    #[test]
    fn span_events_frame_like_any_other_record() {
        use als_telemetry::{SpanOutcome, Stage};
        let mut j = Journal::new();
        let evs = [
            JournalRecord::SpanEvent {
                ev: TraceEvent::Start {
                    scan: "scan_0001".into(),
                    span: 0,
                    parent: None,
                    stage: Stage::Transfer,
                    facility: "nersc".into(),
                    at: t(10),
                },
            },
            JournalRecord::SpanEvent {
                ev: TraceEvent::End {
                    scan: "scan_0001".into(),
                    span: 0,
                    at: t(95),
                    outcome: SpanOutcome::Ok,
                },
            },
        ];
        for e in &evs {
            j.append(e);
        }
        assert_eq!(evs[0].timestamp(), Some(t(10)));
        let (decoded, report) = Journal::replay_bytes(j.bytes());
        assert!(report.is_clean());
        assert_eq!(decoded, evs);
    }

    #[test]
    fn instrumented_journal_reports_flush_batch_sizes() {
        let registry = Registry::new();
        let mut j = Journal::new();
        j.append(&sample_records()[0]); // pre-attach history
        j.instrument(&registry);
        j.set_group_commit(3);
        for r in &sample_records()[..5] {
            j.append(r); // one auto-flush of 3, then 2 pending
        }
        assert!(j.flush(), "barrier drains the remaining 2");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["orch_journal_records_total"], 6);
        // 1 back-filled immediate write + batch of 3 + barrier of 2
        assert_eq!(snap.counters["orch_journal_flushes_total"], 3);
        let h = &snap.histograms["orch_journal_flush_batch_records"];
        assert_eq!(h.count, 2, "only post-attach flushes have batch sizes");
        assert_eq!(h.min, Some(2));
        assert_eq!(h.max, Some(3));
    }

    #[test]
    fn mode_switch_flushes_pending_frames_first() {
        let mut j = Journal::new();
        j.set_group_commit(8);
        j.append(&sample_records()[0]);
        assert_eq!(j.pending_records(), 1);
        j.set_group_commit(0);
        assert_eq!(j.pending_records(), 0);
        assert_eq!(j.durable_record_count(), 1);
    }
}
