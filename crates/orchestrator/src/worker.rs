//! Prefect-worker pools (§4.2.2).
//!
//! "Prefect workers execute flows in isolated containers with carefully
//! tuned limits." A [`WorkerPool`] binds a container image (version-pinned
//! through the registry's beamtime freeze) to a concurrency budget and
//! tracks which flow runs each worker slot is executing, so staff can see
//! at a glance what the pool is doing.

use crate::engine::FlowRunId;
use als_simcore::SimInstant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a worker slot within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Every worker slot is busy.
    Saturated,
    /// The flow run is not currently executing in this pool.
    NotRunningHere(FlowRunId),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Saturated => write!(f, "worker pool saturated"),
            PoolError::NotRunningHere(r) => write!(f, "flow run {r:?} not in this pool"),
        }
    }
}

impl std::error::Error for PoolError {}

/// What one busy worker slot is doing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    pub run: FlowRunId,
    pub since: SimInstant,
}

/// A pool of identical workers executing flows in containers.
#[derive(Debug)]
pub struct WorkerPool {
    name: String,
    /// The pinned container image (`name:version`) the workers run.
    image: String,
    slots: BTreeMap<WorkerId, Option<Assignment>>,
    /// Total flow executions completed, for dashboards.
    completed: u64,
}

impl WorkerPool {
    /// Create a pool of `concurrency` workers running `image`.
    pub fn new(name: &str, image: &str, concurrency: usize) -> Self {
        assert!(concurrency > 0, "a pool needs at least one worker");
        WorkerPool {
            name: name.to_string(),
            image: image.to_string(),
            slots: (0..concurrency as u32)
                .map(|i| (WorkerId(i), None))
                .collect(),
            completed: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn image(&self) -> &str {
        &self.image
    }

    pub fn concurrency(&self) -> usize {
        self.slots.len()
    }

    pub fn busy_count(&self) -> usize {
        self.slots.values().filter(|s| s.is_some()).count()
    }

    pub fn idle_count(&self) -> usize {
        self.concurrency() - self.busy_count()
    }

    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Assign a flow run to the lowest-numbered idle worker.
    pub fn assign(&mut self, run: FlowRunId, now: SimInstant) -> Result<WorkerId, PoolError> {
        let idle = self
            .slots
            .iter()
            .find(|(_, s)| s.is_none())
            .map(|(&id, _)| id)
            .ok_or(PoolError::Saturated)?;
        self.slots
            .insert(idle, Some(Assignment { run, since: now }));
        Ok(idle)
    }

    /// Release the worker executing `run` (the flow finished).
    pub fn release(&mut self, run: FlowRunId) -> Result<WorkerId, PoolError> {
        let slot = self
            .slots
            .iter()
            .find(|(_, s)| s.as_ref().is_some_and(|a| a.run == run))
            .map(|(&id, _)| id)
            .ok_or(PoolError::NotRunningHere(run))?;
        self.slots.insert(slot, None);
        self.completed += 1;
        Ok(slot)
    }

    /// The staff dashboard view: what every worker is doing.
    pub fn status(&self) -> Vec<(WorkerId, Option<&Assignment>)> {
        self.slots.iter().map(|(&id, a)| (id, a.as_ref())).collect()
    }

    /// Roll the pool to a new image version. Refused while any worker is
    /// busy (production pools drain before redeploys).
    pub fn set_image(&mut self, image: &str) -> Result<(), PoolError> {
        if self.busy_count() > 0 {
            return Err(PoolError::Saturated);
        }
        self.image = image.to_string();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_simcore::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn assign_fills_slots_in_order() {
        let mut pool = WorkerPool::new("hpc-submit", "splash-flows:2.3.0", 2);
        let a = pool.assign(FlowRunId(1), t(0)).unwrap();
        let b = pool.assign(FlowRunId(2), t(1)).unwrap();
        assert_eq!((a, b), (WorkerId(0), WorkerId(1)));
        assert_eq!(pool.busy_count(), 2);
        assert_eq!(pool.assign(FlowRunId(3), t(2)), Err(PoolError::Saturated));
    }

    #[test]
    fn release_frees_the_right_slot() {
        let mut pool = WorkerPool::new("p", "img:1", 2);
        pool.assign(FlowRunId(1), t(0)).unwrap();
        pool.assign(FlowRunId(2), t(0)).unwrap();
        let freed = pool.release(FlowRunId(1)).unwrap();
        assert_eq!(freed, WorkerId(0));
        assert_eq!(pool.busy_count(), 1);
        assert_eq!(pool.completed_count(), 1);
        // the freed slot is reused first
        assert_eq!(pool.assign(FlowRunId(3), t(1)).unwrap(), WorkerId(0));
        assert_eq!(
            pool.release(FlowRunId(99)),
            Err(PoolError::NotRunningHere(FlowRunId(99)))
        );
    }

    #[test]
    fn status_shows_assignments() {
        let mut pool = WorkerPool::new("p", "img:1", 2);
        pool.assign(FlowRunId(7), t(5)).unwrap();
        let status = pool.status();
        assert_eq!(status.len(), 2);
        assert_eq!(status[0].1.unwrap().run, FlowRunId(7));
        assert!(status[1].1.is_none());
    }

    #[test]
    fn image_roll_requires_drained_pool() {
        let mut pool = WorkerPool::new("p", "img:1", 1);
        pool.assign(FlowRunId(1), t(0)).unwrap();
        assert!(pool.set_image("img:2").is_err());
        pool.release(FlowRunId(1)).unwrap();
        pool.set_image("img:2").unwrap();
        assert_eq!(pool.image(), "img:2");
    }
}
