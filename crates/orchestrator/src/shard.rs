//! Sharded orchestrator fleet: N journal partitions, group commit, and
//! fleet-wide crash recovery.
//!
//! [`ShardedOrchestrator`] partitions the durable core across N
//! [`DurableOrchestrator`] shards. Routing is by *scan prefix*: the part
//! of an idempotency key before the first `/` (the scan/campaign id)
//! hashes to a shard, and every key and flow run of that scan lives on
//! the same partition. Run ids are strided (`id % n == shard`), so ids
//! stay globally unique without coordination and any id routes back to
//! its owner in O(1).
//!
//! Completions are additionally replicated to the next shard in the
//! ring — a grow-only set, so replication cannot conflict — which lets
//! [`ShardedOrchestrator::claim`] consult the fleet-wide completed union
//! first. A single shard losing its journal suffix therefore cannot
//! forget enough to re-run another shard's completed side effects, and
//! usually not even its own.
//!
//! [`ShardedOrchestrator::recover_fleet`] replays every shard image
//! independently (shards share no mutable state, so any replay order
//! yields the same fleet) and reports per-shard damage: a torn tail on
//! one partition degrades only the flows routed to it.
//!
//! [`ShardPool`] is the event-loop execution shape: one thread per
//! shard, each owning its orchestrator and WAL device outright, fed by a
//! closure mailbox — task transitions on different shards never touch a
//! shared lock.

use crate::engine::{FlowEngine, FlowRunId, FlowState, TaskState};
use crate::idempotency::Claim;
use crate::journal::ExternalKind;
use crate::recovery::{DurableOrchestrator, PendingOp, PendingRetry, RecoveryInfo};
use als_simcore::{SimDuration, SimInstant};
use als_telemetry::{Registry, TraceEvent, TraceStore};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::thread;

/// FNV-1a over the routing prefix — stable, cheap, and good enough to
/// spread scan names across a handful of partitions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a routing key belongs to: hash of the scan/campaign prefix
/// (everything before the first `/`; keys without one hash whole).
pub fn shard_of_key(key: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let prefix = key.split('/').next().unwrap_or(key);
    (fnv1a(prefix.as_bytes()) % shards as u64) as usize
}

/// Per-shard recovery reports plus fleet-level aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRecoveryInfo {
    pub shards: Vec<RecoveryInfo>,
}

impl FleetRecoveryInfo {
    /// External operations still open per any shard's journal.
    pub fn pending_external(&self) -> impl Iterator<Item = &PendingOp> {
        self.shards.iter().flat_map(|s| s.pending_external.iter())
    }

    /// Retries owed across the fleet.
    pub fn pending_retries(&self) -> impl Iterator<Item = &PendingRetry> {
        self.shards.iter().flat_map(|s| s.pending_retries.iter())
    }

    pub fn expired_leases(&self) -> usize {
        self.shards.iter().map(|s| s.expired_leases.len()).sum()
    }

    pub fn replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed).sum()
    }

    /// Torn/corrupt bytes truncated across all partitions.
    pub fn dropped_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.tail.dropped_bytes).sum()
    }

    /// Indices of partitions whose journal tail was damaged — the only
    /// shards whose flows may need facility-evidence reconciliation.
    pub fn damaged_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.tail.is_clean())
            .map(|(i, _)| i)
            .collect()
    }
}

/// N durable orchestrator shards behind one façade, routing by scan
/// prefix and run id.
#[derive(Debug, Clone)]
pub struct ShardedOrchestrator {
    shards: Vec<DurableOrchestrator>,
}

impl Default for ShardedOrchestrator {
    fn default() -> Self {
        ShardedOrchestrator {
            shards: vec![DurableOrchestrator::default()],
        }
    }
}

impl ShardedOrchestrator {
    /// A fresh fleet of `n` shards. `batch <= 1` keeps every shard in
    /// immediate-durability mode (the unsharded PR 2 behaviour with
    /// `n == 1`).
    pub fn new(holder: &str, now: SimInstant, n: usize, batch: usize) -> Self {
        assert!(n > 0, "fleet needs at least one shard");
        ShardedOrchestrator {
            shards: (0..n)
                .map(|i| DurableOrchestrator::shard(holder, now, i as u64, n as u64, batch))
                .collect(),
        }
    }

    /// A fresh fleet with the §4.2.2 production concurrency pools on
    /// every shard (each shard polices its slice of the fleet quota).
    pub fn production(holder: &str, now: SimInstant, n: usize, batch: usize) -> Self {
        let mut fleet = Self::new(holder, now, n, batch);
        for shard in &mut fleet.shards {
            for (tag, limit) in [
                ("scan-detect", 8),
                ("hpc-submit", 2),
                ("globus-transfer", 4),
                ("prune", 1),
            ] {
                shard.set_limit(tag, limit);
            }
            // pool configuration must survive a crash before first flush
            shard.commit();
        }
        fleet
    }

    /// Adopt pre-built shards (e.g. recovered individually, possibly on
    /// separate threads) as one fleet. Shard order must match each
    /// shard's id stride.
    pub fn from_shards(shards: Vec<DurableOrchestrator>) -> Self {
        assert!(!shards.is_empty(), "fleet needs at least one shard");
        ShardedOrchestrator { shards }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn holder(&self) -> &str {
        self.shards[0].holder()
    }

    /// The partition a key routes to.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_of_key(key, self.shards.len())
    }

    fn shard_of_run(&self, id: FlowRunId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    pub fn shards(&self) -> &[DurableOrchestrator] {
        &self.shards
    }

    /// Direct shard access — chaos injection and tests.
    pub fn shards_mut(&mut self) -> &mut [DurableOrchestrator] {
        &mut self.shards
    }

    // ----- journal / durability ----------------------------------------

    /// Commit barrier on every shard.
    pub fn commit_all(&mut self) {
        for shard in &mut self.shards {
            shard.commit();
        }
    }

    /// Commit barrier on the shard owning `key`.
    pub fn commit_key(&mut self, key: &str) {
        let s = self.shard_of(key);
        self.shards[s].commit();
    }

    /// What a crash right now leaves on durable storage, per shard.
    pub fn crash_images(&self) -> Vec<Vec<u8>> {
        self.shards
            .iter()
            .map(|s| s.journal().crash_image())
            .collect()
    }

    /// Total records appended across the fleet (durable + pending).
    pub fn journal_records(&self) -> u64 {
        self.shards.iter().map(|s| s.journal().record_count()).sum()
    }

    /// Total durable write operations across the fleet.
    pub fn journal_writes(&self) -> u64 {
        self.shards.iter().map(|s| s.journal().write_count()).sum()
    }

    /// Attach registry handles to every shard. The handles are shared
    /// cells, so journal/flush/span metrics read as fleet totals.
    pub fn instrument(&mut self, registry: &Registry) {
        for shard in &mut self.shards {
            shard.instrument(registry);
        }
    }

    // ----- journaled trace spans ---------------------------------------

    /// Journal a span event on the shard owning the scan, so a scan's
    /// spans and its state records share a WAL partition.
    pub fn record_span(&mut self, key: &str, ev: TraceEvent) {
        let s = self.shard_of(key);
        self.shards[s].record_span(ev);
    }

    /// Fleet-wide trace view: every shard's journaled spans merged.
    /// Build once per query burst — it clones the spans.
    pub fn merged_traces(&self) -> TraceStore {
        let mut merged = TraceStore::new();
        for shard in &self.shards {
            merged.merge_from(shard.traces());
        }
        merged
    }

    /// Highest span id journaled anywhere in the fleet — a recovered
    /// incarnation resumes its span allocator above this.
    pub fn max_span_id(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.traces().max_span_id())
            .max()
    }

    // ----- idempotency --------------------------------------------------

    /// Completed anywhere in the fleet? Replication makes this robust to
    /// one shard forgetting its suffix.
    pub fn is_completed(&self, key: &str) -> bool {
        self.shards
            .iter()
            .any(|sh| sh.idempotency.is_completed(key))
    }

    /// Fleet-wide completed-key union, deduplicated (replicas collapse).
    pub fn completed_union(&self) -> BTreeSet<&str> {
        self.shards
            .iter()
            .flat_map(|sh| sh.idempotency.completed_keys())
            .collect()
    }

    /// Claim a key: the fleet-wide completed union short-circuits to
    /// `Cached`; otherwise the owning shard decides.
    pub fn claim(&mut self, key: &str, now: SimInstant, lease: SimDuration) -> Claim {
        if self.is_completed(key) {
            return Claim::Cached;
        }
        let s = self.shard_of(key);
        self.shards[s].claim(key, now, lease)
    }

    /// Complete a key on its owner and replicate to the next shard in
    /// the ring (grow-only, so replication cannot conflict).
    pub fn complete(&mut self, key: &str) {
        let n = self.shards.len();
        let s = self.shard_of(key);
        self.shards[s].complete(key);
        if n > 1 {
            self.shards[(s + 1) % n].complete(key);
        }
    }

    pub fn release(&mut self, key: &str) {
        let s = self.shard_of(key);
        self.shards[s].release(key);
    }

    // ----- concurrency limits ------------------------------------------

    /// Acquire from the pool on the shard owning `key` (each shard
    /// polices its slice of the fleet quota).
    pub fn try_acquire_for(&mut self, key: &str, tag: &str) -> bool {
        let s = self.shard_of(key);
        self.shards[s].try_acquire(tag)
    }

    pub fn release_limit_for(&mut self, key: &str, tag: &str) {
        let s = self.shard_of(key);
        self.shards[s].release_limit(tag);
    }

    /// Fleet-wide in-use count for a pool tag.
    pub fn limit_in_use(&self, tag: &str) -> usize {
        self.shards.iter().map(|s| s.limits.in_use(tag)).sum()
    }

    /// Fleet-wide rejection tally for a pool tag.
    pub fn limit_rejections(&self, tag: &str) -> u64 {
        self.shards.iter().map(|s| s.limits.rejections(tag)).sum()
    }

    // ----- flow runs ----------------------------------------------------

    /// Create a run on the shard owning `routing_key` (the scan name, so
    /// a scan's run and its idempotency keys share a partition).
    pub fn create_run(&mut self, flow: &str, routing_key: &str, now: SimInstant) -> FlowRunId {
        let s = self.shard_of(routing_key);
        let id = self.shards[s].create_run(flow, now);
        debug_assert_eq!(self.shard_of_run(id), s, "stride and routing disagree");
        id
    }

    pub fn set_parameter(&mut self, id: FlowRunId, key: &str, value: &str) {
        let s = self.shard_of_run(id);
        self.shards[s].set_parameter(id, key, value);
    }

    pub fn start_run(&mut self, id: FlowRunId, now: SimInstant) {
        let s = self.shard_of_run(id);
        self.shards[s].start_run(id, now);
    }

    pub fn finish_run(&mut self, id: FlowRunId, state: FlowState, now: SimInstant) {
        let s = self.shard_of_run(id);
        self.shards[s].finish_run(id, state, now);
    }

    pub fn start_task(
        &mut self,
        id: FlowRunId,
        name: &str,
        key: Option<&str>,
        now: SimInstant,
    ) -> usize {
        let s = self.shard_of_run(id);
        self.shards[s].start_task(id, name, key, now)
    }

    pub fn finish_task(
        &mut self,
        id: FlowRunId,
        task: usize,
        state: TaskState,
        now: SimInstant,
        error: Option<&str>,
    ) {
        let s = self.shard_of_run(id);
        self.shards[s].finish_task(id, task, state, now, error);
    }

    pub fn retry_task(&mut self, id: FlowRunId, task: usize, now: SimInstant) {
        let s = self.shard_of_run(id);
        self.shards[s].retry_task(id, task, now);
    }

    pub fn schedule_retry(&mut self, id: FlowRunId, task: usize, attempt: u32, delay: SimDuration) {
        let s = self.shard_of_run(id);
        self.shards[s].schedule_retry(id, task, attempt, delay);
    }

    pub fn run(&self, id: FlowRunId) -> Option<&crate::engine::FlowRun> {
        let s = self.shard_of_run(id);
        self.shards[s].engine.run(id)
    }

    /// Every run across the fleet (per-shard creation order, shard 0
    /// first — deterministic, not globally time-ordered).
    pub fn all_runs(&self) -> impl Iterator<Item = &crate::engine::FlowRun> {
        self.shards.iter().flat_map(|s| s.engine.runs())
    }

    /// Fleet-wide query view: a merged copy of every shard's run
    /// database. Build once per query burst — it clones the runs.
    pub fn merged_engine(&self) -> FlowEngine {
        let mut merged = FlowEngine::new();
        for shard in &self.shards {
            merged.absorb(&shard.engine);
        }
        merged
    }

    // ----- external operations -----------------------------------------

    pub fn external_submitted(
        &mut self,
        kind: ExternalKind,
        handle: u64,
        run: FlowRunId,
        ctx: &str,
    ) {
        let s = self.shard_of_run(run);
        self.shards[s].external_submitted(kind, handle, run, ctx);
    }

    /// Resolve an external handle on whichever shard holds it open.
    pub fn external_resolved(&mut self, kind: ExternalKind, handle: u64) {
        for shard in &mut self.shards {
            if shard.external_is_open(kind, handle) {
                shard.external_resolved(kind, handle);
                return;
            }
        }
    }

    pub fn external_is_open(&self, kind: ExternalKind, handle: u64) -> bool {
        self.shards.iter().any(|s| s.external_is_open(kind, handle))
    }

    /// Did any shard's journal ever record this handle's submission?
    pub fn external_ever_seen(&self, kind: ExternalKind, handle: u64) -> bool {
        self.shards
            .iter()
            .any(|s| s.external_ever_seen(kind, handle))
    }

    pub fn runs_with_open_ops(&self) -> BTreeSet<FlowRunId> {
        self.shards
            .iter()
            .flat_map(|s| s.runs_with_open_ops())
            .collect()
    }

    pub fn open_external_count(&self) -> usize {
        self.shards.iter().map(|s| s.open_external_count()).sum()
    }

    // ----- recovery -----------------------------------------------------

    /// Fleet-wide recovery: replay every shard image independently and
    /// re-assemble the fleet. Shards share no mutable state, so replay
    /// order cannot matter; damage on one image truncates only that
    /// shard's prefix while the rest recover in full.
    pub fn recover_fleet(
        images: &[Vec<u8>],
        holder: &str,
        now: SimInstant,
        batch: usize,
    ) -> (Self, FleetRecoveryInfo) {
        assert!(!images.is_empty(), "fleet needs at least one journal");
        let total = images.len() as u64;
        let mut shards = Vec::with_capacity(images.len());
        let mut infos = Vec::with_capacity(images.len());
        for (i, image) in images.iter().enumerate() {
            let (shard, info) =
                DurableOrchestrator::recover_shard(image, holder, now, i as u64, total, batch);
            shards.push(shard);
            infos.push(info);
        }
        (
            ShardedOrchestrator { shards },
            FleetRecoveryInfo { shards: infos },
        )
    }
}

// ----- per-shard event loops -------------------------------------------

type ShardOp = Box<dyn FnOnce(&mut DurableOrchestrator) + Send>;

/// One event-loop thread per shard, each owning its orchestrator (and
/// optionally a WAL device sink) outright. Operations are closures
/// mailed to the owning shard; transitions on different shards proceed
/// with no shared lock. `join` drains the mailboxes and hands the
/// shards back.
pub struct ShardPool {
    senders: Vec<mpsc::Sender<ShardOp>>,
    handles: Vec<thread::JoinHandle<DurableOrchestrator>>,
}

impl ShardPool {
    /// Spawn event loops with no WAL device attached.
    pub fn spawn(shards: Vec<DurableOrchestrator>) -> Self {
        Self::spawn_with_sinks(shards, |_| Box::new(|_bytes: &[u8]| {}))
    }

    /// Spawn event loops where shard `i` persists through `mk_sink(i)`:
    /// after each operation, the sink receives exactly the bytes the
    /// journal made durable since the last call (a real device would
    /// write-and-fsync them). In immediate mode that is every record; in
    /// group-commit mode, one call per flush.
    pub fn spawn_with_sinks(
        shards: Vec<DurableOrchestrator>,
        mut mk_sink: impl FnMut(usize) -> Box<dyn FnMut(&[u8]) + Send>,
    ) -> Self {
        let mut senders = Vec::with_capacity(shards.len());
        let mut handles = Vec::with_capacity(shards.len());
        for (i, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<ShardOp>();
            let mut sink = mk_sink(i);
            let handle = thread::spawn(move || {
                // construction-time records (incarnation, pools) first
                let mut synced = 0usize;
                if shard.journal().byte_len() > 0 {
                    sink(shard.journal().bytes());
                    synced = shard.journal().byte_len();
                }
                while let Ok(op) = rx.recv() {
                    op(&mut shard);
                    let len = shard.journal().byte_len();
                    if len > synced {
                        sink(&shard.journal().bytes()[synced..]);
                        synced = len;
                    }
                }
                shard
            });
            senders.push(tx);
            handles.push(handle);
        }
        ShardPool { senders, handles }
    }

    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Mail an operation to shard `s`'s event loop.
    pub fn submit(&self, s: usize, op: impl FnOnce(&mut DurableOrchestrator) + Send + 'static) {
        self.senders[s]
            .send(Box::new(op))
            .expect("shard loop alive");
    }

    /// Close every mailbox, drain the loops, and return the shards.
    pub fn join(self) -> Vec<DurableOrchestrator> {
        drop(self.senders);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard thread exits cleanly"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FlowState;
    use crate::idempotency::Claim;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    const LEASE: SimDuration = SimDuration::from_secs(600);

    #[test]
    fn keys_of_one_scan_share_a_partition() {
        for scan in ["scan_0001", "scan_0042", "tomo_setup_9"] {
            let home = shard_of_key(&format!("{scan}/ingest"), 8);
            for key in [
                format!("{scan}/nersc_recon_flow/copy@nersc"),
                format!("{scan}/alcf_recon_flow/exec@alcf"),
                format!("{scan}/nersc_recon_flow/back@nersc"),
            ] {
                assert_eq!(shard_of_key(&key, 8), home, "{key} left its scan's shard");
            }
        }
    }

    #[test]
    fn runs_land_on_their_scans_shard_with_globally_unique_ids() {
        let mut fleet = ShardedOrchestrator::new("orch-0", t(0), 4, 0);
        let mut seen = BTreeSet::new();
        for i in 0..12 {
            let scan = format!("scan_{i:04}");
            let id = fleet.create_run("new_file_832", &scan, t(i));
            assert!(seen.insert(id.0), "duplicate id across shards");
            assert_eq!(
                (id.0 % 4) as usize,
                fleet.shard_of(&scan),
                "run id must encode its scan's shard"
            );
        }
        assert_eq!(fleet.merged_engine().run_count(), 12);
    }

    #[test]
    fn completion_replicates_to_the_ring_neighbour() {
        let mut fleet = ShardedOrchestrator::new("orch-0", t(0), 4, 0);
        let key = "scan_0007/ingest";
        assert_eq!(fleet.claim(key, t(1), LEASE), Claim::Run);
        fleet.complete(key);
        let owner = fleet.shard_of(key);
        let replica = (owner + 1) % 4;
        assert!(fleet.shards()[owner].idempotency.is_completed(key));
        assert!(
            fleet.shards()[replica].idempotency.is_completed(key),
            "replica shard must also remember the completion"
        );
        assert_eq!(fleet.completed_union().len(), 1, "union deduplicates");
        // even if the owner forgets everything, the fleet stays Cached
        fleet.shards_mut()[owner] = DurableOrchestrator::shard("orch-1", t(2), owner as u64, 4, 0);
        assert_eq!(
            fleet.claim(key, t(3), LEASE),
            Claim::Cached,
            "replicated completion survives total owner amnesia"
        );
    }

    #[test]
    fn fleet_recovery_is_order_independent_and_damage_is_isolated() {
        let mut fleet = ShardedOrchestrator::new("orch-0", t(0), 3, 4);
        // spread flows across all shards
        for i in 0..9 {
            let scan = format!("scan_{i:04}");
            let key = format!("{scan}/ingest");
            assert_eq!(fleet.claim(&key, t(i), LEASE), Claim::Run);
            let run = fleet.create_run("new_file_832", &scan, t(i));
            fleet.start_run(run, t(i));
            fleet.external_submitted(ExternalKind::Transfer, i, run, "{}");
            fleet.complete(&key);
        }
        fleet.commit_all();
        let mut images = fleet.crash_images();
        // wreck one shard's suffix
        let victim = 1usize;
        let torn = 120.min(images[victim].len() / 2);
        let keep = images[victim].len() - torn;
        images[victim].truncate(keep);

        let (rec_a, info_a) = ShardedOrchestrator::recover_fleet(&images, "orch-1", t(100), 4);
        assert_eq!(info_a.damaged_shards(), vec![victim]);
        assert!(info_a.dropped_bytes() > 0);

        // recover the shards individually in reverse order: same fleet
        let mut shards_rev: Vec<Option<DurableOrchestrator>> =
            (0..images.len()).map(|_| None).collect();
        for i in (0..images.len()).rev() {
            let (s, info) =
                DurableOrchestrator::recover_shard(&images[i], "orch-1", t(100), i as u64, 3, 4);
            assert_eq!(info, info_a.shards[i], "per-shard report is order-free");
            shards_rev[i] = Some(s);
        }
        let rec_b =
            ShardedOrchestrator::from_shards(shards_rev.into_iter().map(Option::unwrap).collect());
        for i in 0..3 {
            assert_eq!(rec_a.shards()[i].engine, rec_b.shards()[i].engine);
            assert_eq!(rec_a.shards()[i].idempotency, rec_b.shards()[i].idempotency);
            assert_eq!(rec_a.shards()[i].limits, rec_b.shards()[i].limits);
        }
        // undamaged shards recovered every record; the victim lost some
        for (i, info) in info_a.shards.iter().enumerate() {
            if i != victim {
                assert!(info.tail.is_clean(), "shard {i} must be untouched");
            }
        }
        assert!(
            info_a.shards[victim].replayed < fleet.shards()[victim].journal().record_count(),
            "the victim's torn suffix is gone"
        );
    }

    #[test]
    fn group_commit_loses_only_unbarriered_bookkeeping() {
        let mut fleet = ShardedOrchestrator::new("orch-0", t(0), 2, 16);
        let scan = "scan_0001";
        let key = format!("{scan}/ingest");
        assert_eq!(fleet.claim(&key, t(1), LEASE), Claim::Run);
        let run = fleet.create_run("new_file_832", scan, t(1));
        fleet.start_run(run, t(1));
        // submission is a barrier: everything above is durable now
        fleet.external_submitted(ExternalKind::Transfer, 0, run, "{}");
        // bookkeeping after the barrier stays pending
        fleet.external_resolved(ExternalKind::Transfer, 0);
        fleet.complete(&key);
        let images = fleet.crash_images();
        let (rec, info) = ShardedOrchestrator::recover_fleet(&images, "orch-1", t(50), 16);
        for s in &info.shards {
            assert!(s.tail.is_clean(), "losing pending frames is not damage");
        }
        assert!(
            rec.external_is_open(ExternalKind::Transfer, 0),
            "the resolve was pending: journal still sees the op open"
        );
        assert!(
            !rec.is_completed(&key),
            "the completion was pending: fate sweep must re-complete it"
        );
        assert!(rec.run(run).is_some(), "the barrier made the run durable");
    }

    #[test]
    fn fleet_traces_route_by_scan_and_survive_recovery() {
        use als_telemetry::{SpanOutcome, Stage};
        let mut fleet = ShardedOrchestrator::new("orch-0", t(0), 4, 8);
        for i in 0..6u64 {
            let scan = format!("scan_{i:04}");
            fleet.record_span(
                &format!("{scan}/ingest"),
                TraceEvent::Start {
                    scan: scan.clone(),
                    span: i,
                    parent: None,
                    stage: Stage::Ingest,
                    facility: "als".into(),
                    at: t(i),
                },
            );
            fleet.record_span(
                &format!("{scan}/ingest"),
                TraceEvent::End {
                    scan: scan.clone(),
                    span: i,
                    at: t(i + 10),
                    outcome: SpanOutcome::Ok,
                },
            );
            // a scan's spans live on the shard its keys hash to
            let home = fleet.shard_of(&scan);
            assert!(fleet.shards()[home].traces().scan(&scan).is_some());
        }
        fleet.commit_all();
        let live = fleet.merged_traces();
        assert_eq!(live.scan_count(), 6);
        assert_eq!(fleet.max_span_id(), Some(5));

        let (rec, info) =
            ShardedOrchestrator::recover_fleet(&fleet.crash_images(), "orch-1", t(100), 8);
        assert!(info.shards.iter().all(|s| s.tail.is_clean()));
        let recovered = rec.merged_traces();
        assert_eq!(recovered.scan_count(), live.scan_count());
        assert_eq!(
            recovered.report(),
            live.report(),
            "the fleet-wide report reconstructs identically after recovery"
        );
    }

    #[test]
    fn shard_pool_runs_transitions_without_a_shared_lock() {
        let n = 4usize;
        let fleet = ShardedOrchestrator::new("orch-0", t(0), n, 8);
        let pool = ShardPool::spawn(fleet.shards().to_vec());
        for i in 0..40u64 {
            let scan = format!("scan_{i:04}");
            let s = shard_of_key(&scan, n);
            pool.submit(s, move |shard| {
                let run = shard.create_run("new_file_832", t(i));
                shard.start_run(run, t(i));
                shard.finish_run(run, FlowState::Completed, t(i + 1));
                shard.commit();
            });
        }
        let shards = pool.join();
        let rec = ShardedOrchestrator::from_shards(shards);
        let engine = rec.merged_engine();
        assert_eq!(engine.run_count(), 40);
        assert_eq!(engine.query().success_rate("new_file_832"), Some(1.0));
    }

    #[test]
    fn shard_pool_sinks_see_every_durable_byte() {
        use std::sync::{Arc, Mutex};
        let n = 2usize;
        let fleet = ShardedOrchestrator::new("orch-0", t(0), n, 4);
        let captured: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(vec![Vec::new(); n]));
        let pool = ShardPool::spawn_with_sinks(fleet.shards().to_vec(), |i| {
            let captured = Arc::clone(&captured);
            Box::new(move |bytes: &[u8]| {
                captured.lock().unwrap()[i].extend_from_slice(bytes);
            })
        });
        for i in 0..10u64 {
            let scan = format!("scan_{i:04}");
            let s = shard_of_key(&scan, n);
            pool.submit(s, move |shard| {
                let run = shard.create_run("new_file_832", t(i));
                shard.start_run(run, t(i));
                shard.commit();
            });
        }
        let shards = pool.join();
        let written = captured.lock().unwrap();
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(
                written[i],
                shard.journal().bytes(),
                "sink {i} must hold exactly the durable image"
            );
        }
    }
}
