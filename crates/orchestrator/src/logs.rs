//! Flow-run log store (§5.1.3).
//!
//! "Logs are stored in a database, made available directly in the
//! browser, and update in real-time. In addition to debugging, the
//! Prefect API allows for extracting flow statistics." This module is
//! that database: per-run, timestamped, leveled log records with tail
//! subscriptions (the "update in real-time" part) and text search for
//! debugging sessions.
//!
//! A real campaign logs for days, so the store is bounded: a retention
//! cap evicts the oldest records first. Record positions are *global*
//! indices (never reused), so `by_run` stays consistent across eviction
//! and tail cursors survive it; evictions are counted and surfaced as a
//! telemetry counter.

use crate::engine::FlowRunId;
use als_simcore::SimInstant;
use als_telemetry::{Counter, Registry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LogLevel {
    Debug,
    Info,
    Warning,
    Error,
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    pub at: SimInstant,
    pub run: FlowRunId,
    pub level: LogLevel,
    pub message: String,
}

/// The log database. Bounded: at most `retention` records are held,
/// oldest evicted first.
#[derive(Debug, Default)]
pub struct LogStore {
    records: VecDeque<LogRecord>,
    /// Global index of `records[0]` — indices are assigned once and never
    /// reused, so `by_run` entries and tail cursors survive eviction.
    base: usize,
    by_run: BTreeMap<FlowRunId, VecDeque<usize>>,
    /// `None` = unbounded (the pre-cap behaviour, tests only).
    retention: Option<usize>,
    dropped: u64,
    dropped_counter: Option<Counter>,
}

/// Default retention: roughly a week of a busy beamline's log volume.
pub const DEFAULT_LOG_RETENTION: usize = 100_000;

impl LogStore {
    pub fn new() -> Self {
        LogStore {
            retention: Some(DEFAULT_LOG_RETENTION),
            ..Default::default()
        }
    }

    /// A store keeping at most `cap` records (`0` is rejected).
    pub fn with_retention(cap: usize) -> Self {
        assert!(cap > 0, "retention cap must be positive");
        LogStore {
            retention: Some(cap),
            ..Default::default()
        }
    }

    /// An unbounded store.
    pub fn unbounded() -> Self {
        LogStore {
            retention: None,
            ..Default::default()
        }
    }

    /// Surface evictions as `orch_log_records_dropped_total`.
    pub fn instrument(&mut self, registry: &Registry) {
        let c = registry.counter("orch_log_records_dropped_total", &[]);
        c.add(self.dropped); // back-fill evictions that predate attachment
        self.dropped_counter = Some(c);
    }

    /// Append a record, evicting the oldest if over the cap.
    pub fn log(&mut self, run: FlowRunId, level: LogLevel, at: SimInstant, message: &str) {
        let idx = self.base + self.records.len();
        self.records.push_back(LogRecord {
            at,
            run,
            level,
            message: message.to_string(),
        });
        self.by_run.entry(run).or_default().push_back(idx);
        if let Some(cap) = self.retention {
            while self.records.len() > cap {
                self.evict_oldest();
            }
        }
    }

    fn evict_oldest(&mut self) {
        let Some(rec) = self.records.pop_front() else {
            return;
        };
        if let Some(idxs) = self.by_run.get_mut(&rec.run) {
            debug_assert_eq!(idxs.front(), Some(&self.base), "index map out of sync");
            idxs.pop_front();
            if idxs.is_empty() {
                self.by_run.remove(&rec.run);
            }
        }
        self.base += 1;
        self.dropped += 1;
        if let Some(c) = &self.dropped_counter {
            c.inc();
        }
    }

    /// Records currently held (evicted ones excluded).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the retention cap since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fetch by global index (`None` once evicted).
    fn get(&self, global: usize) -> Option<&LogRecord> {
        self.records.get(global.checked_sub(self.base)?)
    }

    /// All *retained* records of one run, in order.
    pub fn for_run(&self, run: FlowRunId) -> Vec<&LogRecord> {
        self.by_run
            .get(&run)
            .map(|idxs| idxs.iter().filter_map(|&i| self.get(i)).collect())
            .unwrap_or_default()
    }

    /// Records at or above a severity.
    pub fn at_least(&self, level: LogLevel) -> Vec<&LogRecord> {
        self.records.iter().filter(|r| r.level >= level).collect()
    }

    /// Case-insensitive text search (the browser search box).
    pub fn search(&self, query: &str) -> Vec<&LogRecord> {
        let q = query.to_ascii_lowercase();
        self.records
            .iter()
            .filter(|r| r.message.to_ascii_lowercase().contains(&q))
            .collect()
    }

    /// "Real-time" tail: everything appended since a previously observed
    /// cursor; returns the records plus the new cursor. Cursors are
    /// global indices — a subscriber that fell behind the retention
    /// window resumes at the oldest retained record (having missed the
    /// evicted ones, which `dropped()` accounts for).
    pub fn tail(&self, cursor: usize) -> (Vec<&LogRecord>, usize) {
        let end = self.base + self.records.len();
        let from = cursor.clamp(self.base, end) - self.base;
        let new = self.records.iter().skip(from).collect();
        (new, end)
    }

    /// Error counts per run — the dashboard's red-badge column.
    pub fn error_counts(&self) -> BTreeMap<FlowRunId, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if r.level == LogLevel::Error {
                *out.entry(r.run).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_simcore::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn per_run_logs_stay_ordered() {
        let mut store = LogStore::new();
        let a = FlowRunId(1);
        let b = FlowRunId(2);
        store.log(a, LogLevel::Info, t(0), "copy started");
        store.log(b, LogLevel::Info, t(1), "other flow");
        store.log(a, LogLevel::Info, t(2), "copy finished");
        let logs = store.for_run(a);
        assert_eq!(logs.len(), 2);
        assert!(logs[0].at < logs[1].at);
        assert!(logs.iter().all(|r| r.run == a));
    }

    #[test]
    fn severity_filter_is_inclusive() {
        let mut store = LogStore::new();
        let run = FlowRunId(0);
        store.log(run, LogLevel::Debug, t(0), "noise");
        store.log(run, LogLevel::Warning, t(1), "globus retry");
        store.log(run, LogLevel::Error, t(2), "permission denied");
        let warnings = store.at_least(LogLevel::Warning);
        assert_eq!(warnings.len(), 2);
        assert_eq!(store.at_least(LogLevel::Error).len(), 1);
    }

    #[test]
    fn search_finds_incident_messages() {
        let mut store = LogStore::new();
        store.log(
            FlowRunId(0),
            LogLevel::Error,
            t(0),
            "Globus Transfer: Permission Denied on prune",
        );
        store.log(FlowRunId(1), LogLevel::Info, t(1), "recon ok");
        let hits = store.search("permission denied");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("prune"));
    }

    #[test]
    fn tail_returns_only_new_records() {
        let mut store = LogStore::new();
        store.log(FlowRunId(0), LogLevel::Info, t(0), "a");
        let (first, cursor) = store.tail(0);
        assert_eq!(first.len(), 1);
        store.log(FlowRunId(0), LogLevel::Info, t(1), "b");
        store.log(FlowRunId(0), LogLevel::Info, t(2), "c");
        let (next, cursor2) = store.tail(cursor);
        assert_eq!(next.len(), 2);
        assert_eq!(next[0].message, "b");
        let (empty, _) = store.tail(cursor2);
        assert!(empty.is_empty());
    }

    #[test]
    fn retention_cap_evicts_oldest_and_keeps_by_run_consistent() {
        let mut store = LogStore::with_retention(3);
        let a = FlowRunId(1);
        let b = FlowRunId(2);
        store.log(a, LogLevel::Info, t(0), "a0");
        store.log(b, LogLevel::Info, t(1), "b0");
        store.log(a, LogLevel::Info, t(2), "a1");
        store.log(a, LogLevel::Info, t(3), "a2"); // evicts a0
        store.log(b, LogLevel::Info, t(4), "b1"); // evicts b0
        assert_eq!(store.len(), 3);
        assert_eq!(store.dropped(), 2);
        let logs_a = store.for_run(a);
        assert_eq!(
            logs_a
                .iter()
                .map(|r| r.message.as_str())
                .collect::<Vec<_>>(),
            ["a1", "a2"],
            "evicted records vanish from the per-run view"
        );
        let logs_b = store.for_run(b);
        assert_eq!(logs_b.len(), 1);
        assert_eq!(logs_b[0].message, "b1");
        // evicting a run's last record drops its index entry entirely
        let mut tiny = LogStore::with_retention(1);
        tiny.log(a, LogLevel::Info, t(0), "only");
        tiny.log(b, LogLevel::Info, t(1), "new");
        assert!(tiny.for_run(a).is_empty());
        assert_eq!(tiny.for_run(b).len(), 1);
    }

    #[test]
    fn tail_cursor_survives_eviction() {
        let mut store = LogStore::with_retention(2);
        store.log(FlowRunId(0), LogLevel::Info, t(0), "a");
        let (_, cursor) = store.tail(0);
        assert_eq!(cursor, 1);
        // three more appends push the window past the cursor
        for (i, m) in ["b", "c", "d"].iter().enumerate() {
            store.log(FlowRunId(0), LogLevel::Info, t(1 + i as u64), m);
        }
        let (new, cursor2) = store.tail(cursor);
        // "b" was evicted before the subscriber caught up: it resumes at
        // the oldest retained record
        assert_eq!(
            new.iter().map(|r| r.message.as_str()).collect::<Vec<_>>(),
            ["c", "d"]
        );
        assert_eq!(cursor2, 4);
        assert_eq!(store.dropped(), 2);
        let (empty, _) = store.tail(cursor2);
        assert!(empty.is_empty());
    }

    #[test]
    fn dropped_records_surface_as_a_telemetry_counter() {
        let registry = als_telemetry::Registry::new();
        let mut store = LogStore::with_retention(1);
        store.log(FlowRunId(0), LogLevel::Info, t(0), "pre");
        store.log(FlowRunId(0), LogLevel::Info, t(1), "evicts pre");
        store.instrument(&registry); // back-fills the 1 pre-attach drop
        store.log(FlowRunId(0), LogLevel::Info, t(2), "evicts again");
        assert_eq!(
            registry
                .counter("orch_log_records_dropped_total", &[])
                .get(),
            2
        );
    }

    #[test]
    fn error_counts_per_run() {
        let mut store = LogStore::new();
        store.log(FlowRunId(7), LogLevel::Error, t(0), "x");
        store.log(FlowRunId(7), LogLevel::Error, t(1), "y");
        store.log(FlowRunId(8), LogLevel::Info, t(2), "fine");
        let counts = store.error_counts();
        assert_eq!(counts.get(&FlowRunId(7)), Some(&2));
        assert_eq!(counts.get(&FlowRunId(8)), None);
    }
}
