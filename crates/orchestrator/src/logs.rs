//! Flow-run log store (§5.1.3).
//!
//! "Logs are stored in a database, made available directly in the
//! browser, and update in real-time. In addition to debugging, the
//! Prefect API allows for extracting flow statistics." This module is
//! that database: per-run, timestamped, leveled log records with tail
//! subscriptions (the "update in real-time" part) and text search for
//! debugging sessions.

use crate::engine::FlowRunId;
use als_simcore::SimInstant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LogLevel {
    Debug,
    Info,
    Warning,
    Error,
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    pub at: SimInstant,
    pub run: FlowRunId,
    pub level: LogLevel,
    pub message: String,
}

/// The log database.
#[derive(Debug, Default)]
pub struct LogStore {
    records: Vec<LogRecord>,
    by_run: BTreeMap<FlowRunId, Vec<usize>>,
}

impl LogStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn log(&mut self, run: FlowRunId, level: LogLevel, at: SimInstant, message: &str) {
        let idx = self.records.len();
        self.records.push(LogRecord {
            at,
            run,
            level,
            message: message.to_string(),
        });
        self.by_run.entry(run).or_default().push(idx);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records of one run, in order.
    pub fn for_run(&self, run: FlowRunId) -> Vec<&LogRecord> {
        self.by_run
            .get(&run)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Records at or above a severity.
    pub fn at_least(&self, level: LogLevel) -> Vec<&LogRecord> {
        self.records.iter().filter(|r| r.level >= level).collect()
    }

    /// Case-insensitive text search (the browser search box).
    pub fn search(&self, query: &str) -> Vec<&LogRecord> {
        let q = query.to_ascii_lowercase();
        self.records
            .iter()
            .filter(|r| r.message.to_ascii_lowercase().contains(&q))
            .collect()
    }

    /// "Real-time" tail: everything appended since a previously observed
    /// cursor; returns the records plus the new cursor.
    pub fn tail(&self, cursor: usize) -> (Vec<&LogRecord>, usize) {
        let new = self.records[cursor.min(self.records.len())..]
            .iter()
            .collect();
        (new, self.records.len())
    }

    /// Error counts per run — the dashboard's red-badge column.
    pub fn error_counts(&self) -> BTreeMap<FlowRunId, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if r.level == LogLevel::Error {
                *out.entry(r.run).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_simcore::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn per_run_logs_stay_ordered() {
        let mut store = LogStore::new();
        let a = FlowRunId(1);
        let b = FlowRunId(2);
        store.log(a, LogLevel::Info, t(0), "copy started");
        store.log(b, LogLevel::Info, t(1), "other flow");
        store.log(a, LogLevel::Info, t(2), "copy finished");
        let logs = store.for_run(a);
        assert_eq!(logs.len(), 2);
        assert!(logs[0].at < logs[1].at);
        assert!(logs.iter().all(|r| r.run == a));
    }

    #[test]
    fn severity_filter_is_inclusive() {
        let mut store = LogStore::new();
        let run = FlowRunId(0);
        store.log(run, LogLevel::Debug, t(0), "noise");
        store.log(run, LogLevel::Warning, t(1), "globus retry");
        store.log(run, LogLevel::Error, t(2), "permission denied");
        let warnings = store.at_least(LogLevel::Warning);
        assert_eq!(warnings.len(), 2);
        assert_eq!(store.at_least(LogLevel::Error).len(), 1);
    }

    #[test]
    fn search_finds_incident_messages() {
        let mut store = LogStore::new();
        store.log(
            FlowRunId(0),
            LogLevel::Error,
            t(0),
            "Globus Transfer: Permission Denied on prune",
        );
        store.log(FlowRunId(1), LogLevel::Info, t(1), "recon ok");
        let hits = store.search("permission denied");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("prune"));
    }

    #[test]
    fn tail_returns_only_new_records() {
        let mut store = LogStore::new();
        store.log(FlowRunId(0), LogLevel::Info, t(0), "a");
        let (first, cursor) = store.tail(0);
        assert_eq!(first.len(), 1);
        store.log(FlowRunId(0), LogLevel::Info, t(1), "b");
        store.log(FlowRunId(0), LogLevel::Info, t(2), "c");
        let (next, cursor2) = store.tail(cursor);
        assert_eq!(next.len(), 2);
        assert_eq!(next[0].message, "b");
        let (empty, _) = store.tail(cursor2);
        assert!(empty.is_empty());
    }

    #[test]
    fn error_counts_per_run() {
        let mut store = LogStore::new();
        store.log(FlowRunId(7), LogLevel::Error, t(0), "x");
        store.log(FlowRunId(7), LogLevel::Error, t(1), "y");
        store.log(FlowRunId(8), LogLevel::Info, t(2), "fine");
        let counts = store.error_counts();
        assert_eq!(counts.get(&FlowRunId(7)), Some(&2));
        assert_eq!(counts.get(&FlowRunId(8)), None);
    }
}
