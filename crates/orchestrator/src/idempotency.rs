//! Idempotent task semantics.
//!
//! "Workflows are designed as a series of subflows and tasks, implementing
//! idempotent semantics that support safe retries of specific steps in
//! case of failure." A task declares a key (e.g. `scan_0001/copy-to-cfs`);
//! once that key completes, re-running the flow skips the step instead of
//! repeating the side effect (double-copying 30 GB, double-ingesting
//! metadata, double-submitting a Slurm job).

use std::collections::BTreeSet;

/// A persistent set of completed idempotency keys.
#[derive(Debug, Default, Clone)]
pub struct IdempotencyStore {
    completed: BTreeSet<String>,
    /// Keys currently held by an in-flight execution (prevents two
    /// concurrent retries from both running the step).
    in_flight: BTreeSet<String>,
}

/// Outcome of attempting to claim a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The step must run; the key is now held.
    Run,
    /// The step already completed; skip it.
    Cached,
    /// Another execution currently holds the key.
    Busy,
}

impl IdempotencyStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to claim a key for execution.
    pub fn claim(&mut self, key: &str) -> Claim {
        if self.completed.contains(key) {
            return Claim::Cached;
        }
        if self.in_flight.contains(key) {
            return Claim::Busy;
        }
        self.in_flight.insert(key.to_string());
        Claim::Run
    }

    /// Mark a claimed key as completed (the side effect happened).
    pub fn complete(&mut self, key: &str) {
        self.in_flight.remove(key);
        self.completed.insert(key.to_string());
    }

    /// Release a claimed key without completing (the step failed and will
    /// be retried later).
    pub fn release(&mut self, key: &str) {
        self.in_flight.remove(key);
    }

    pub fn is_completed(&self, key: &str) -> bool {
        self.completed.contains(key)
    }

    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_runs_second_is_cached() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("scan1/copy"), Claim::Run);
        store.complete("scan1/copy");
        assert_eq!(store.claim("scan1/copy"), Claim::Cached);
        assert!(store.is_completed("scan1/copy"));
    }

    #[test]
    fn concurrent_claims_are_serialized() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("k"), Claim::Run);
        assert_eq!(store.claim("k"), Claim::Busy);
        store.release("k");
        assert_eq!(
            store.claim("k"),
            Claim::Run,
            "released key can be reclaimed"
        );
    }

    #[test]
    fn failed_step_can_retry() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("k"), Claim::Run);
        store.release("k"); // step failed
        assert!(!store.is_completed("k"));
        assert_eq!(store.claim("k"), Claim::Run);
        store.complete("k");
        assert_eq!(store.claim("k"), Claim::Cached);
    }

    #[test]
    fn keys_are_independent() {
        let mut store = IdempotencyStore::new();
        store.claim("a");
        store.complete("a");
        assert_eq!(store.claim("b"), Claim::Run);
        assert_eq!(store.completed_count(), 1);
    }

    #[test]
    fn replaying_a_whole_flow_skips_done_steps() {
        // simulate: flow ran half-way, crashed, replays from the top
        let mut store = IdempotencyStore::new();
        let steps = ["scan9/copy-nersc", "scan9/recon", "scan9/copy-back"];
        // first execution completes only the first step
        assert_eq!(store.claim(steps[0]), Claim::Run);
        store.complete(steps[0]);
        assert_eq!(store.claim(steps[1]), Claim::Run);
        store.release(steps[1]); // crash mid-recon
                                 // replay
        let mut executed = Vec::new();
        for s in steps {
            if store.claim(s) == Claim::Run {
                executed.push(s);
                store.complete(s);
            }
        }
        assert_eq!(executed, vec!["scan9/recon", "scan9/copy-back"]);
    }
}
