//! Idempotent task semantics with lease-based claims.
//!
//! "Workflows are designed as a series of subflows and tasks, implementing
//! idempotent semantics that support safe retries of specific steps in
//! case of failure." A task declares a key (e.g. `scan_0001/copy-to-cfs`);
//! once that key completes, re-running the flow skips the step instead of
//! repeating the side effect (double-copying 30 GB, double-ingesting
//! metadata, double-submitting a Slurm job).
//!
//! A claim is a *lease*, not a lock: it records who holds the key and
//! until when. A claim held by an execution that died (orchestrator
//! crash, worker eviction) expires at its deadline and can then be stolen
//! by a later execution — without expiry, one crash mid-step would wedge
//! that key forever. Live holders still get the exclusive [`Claim::Busy`]
//! behaviour.

use als_simcore::{SimDuration, SimInstant};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// An in-flight claim on a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Who holds the key (e.g. an orchestrator incarnation id).
    pub holder: String,
    /// The lease is dead at and after this instant.
    pub deadline: SimInstant,
}

impl Lease {
    /// Is the lease still protecting its holder at `now`?
    pub fn is_live(&self, now: SimInstant) -> bool {
        now < self.deadline
    }
}

/// A persistent set of completed idempotency keys plus live leases.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct IdempotencyStore {
    completed: BTreeSet<String>,
    /// Keys currently leased to an in-flight execution (prevents two
    /// concurrent retries from both running the step).
    leases: BTreeMap<String, Lease>,
}

/// Outcome of attempting to claim a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The step must run; the key is now leased to the caller.
    Run,
    /// The step already completed; skip it.
    Cached,
    /// Another execution holds a live lease on the key.
    Busy,
}

impl IdempotencyStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to claim a key for execution. A live lease held by someone
    /// else yields [`Claim::Busy`]; an expired lease is stolen.
    pub fn claim(&mut self, key: &str, holder: &str, now: SimInstant, lease: SimDuration) -> Claim {
        if self.completed.contains(key) {
            return Claim::Cached;
        }
        if let Some(l) = self.leases.get(key) {
            if l.is_live(now) {
                return Claim::Busy;
            }
        }
        self.install_lease(key, holder, now + lease);
        Claim::Run
    }

    /// Install (or overwrite) a lease directly — the journal-replay path,
    /// where the claim decision was already made and recorded.
    pub fn install_lease(&mut self, key: &str, holder: &str, deadline: SimInstant) {
        self.leases.insert(
            key.to_string(),
            Lease {
                holder: holder.to_string(),
                deadline,
            },
        );
    }

    /// Mark a claimed key as completed (the side effect happened).
    pub fn complete(&mut self, key: &str) {
        self.leases.remove(key);
        self.completed.insert(key.to_string());
    }

    /// Release a claimed key without completing (the step failed and will
    /// be retried later).
    pub fn release(&mut self, key: &str) {
        self.leases.remove(key);
    }

    pub fn is_completed(&self, key: &str) -> bool {
        self.completed.contains(key)
    }

    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Completed keys in deterministic order — the per-shard contribution
    /// to a fleet-wide completed-set union.
    pub fn completed_keys(&self) -> impl Iterator<Item = &str> {
        self.completed.iter().map(String::as_str)
    }

    /// The current lease on a key, live or expired.
    pub fn lease(&self, key: &str) -> Option<&Lease> {
        self.leases.get(key)
    }

    /// Number of keys currently leased (live or expired).
    pub fn in_flight_count(&self) -> usize {
        self.leases.len()
    }

    /// Keys leased to holders other than `survivor` — the set a restarted
    /// orchestrator must expire after recovery.
    pub fn foreign_leases(&self, survivor: &str) -> Vec<String> {
        self.leases
            .iter()
            .filter(|(_, l)| l.holder != survivor)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimInstant = SimInstant::ZERO;
    const LEASE: SimDuration = SimDuration::from_secs(600);

    fn at(s: u64) -> SimInstant {
        T0 + SimDuration::from_secs(s)
    }

    #[test]
    fn first_claim_runs_second_is_cached() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("scan1/copy", "w1", T0, LEASE), Claim::Run);
        store.complete("scan1/copy");
        assert_eq!(store.claim("scan1/copy", "w2", T0, LEASE), Claim::Cached);
        assert!(store.is_completed("scan1/copy"));
    }

    #[test]
    fn concurrent_claims_are_serialized() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("k", "w1", T0, LEASE), Claim::Run);
        assert_eq!(store.claim("k", "w2", T0, LEASE), Claim::Busy);
        store.release("k");
        assert_eq!(
            store.claim("k", "w2", T0, LEASE),
            Claim::Run,
            "released key can be reclaimed"
        );
    }

    #[test]
    fn failed_step_can_retry() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("k", "w1", T0, LEASE), Claim::Run);
        store.release("k"); // step failed
        assert!(!store.is_completed("k"));
        assert_eq!(store.claim("k", "w1", T0, LEASE), Claim::Run);
        store.complete("k");
        assert_eq!(store.claim("k", "w1", T0, LEASE), Claim::Cached);
    }

    #[test]
    fn keys_are_independent() {
        let mut store = IdempotencyStore::new();
        store.claim("a", "w1", T0, LEASE);
        store.complete("a");
        assert_eq!(store.claim("b", "w1", T0, LEASE), Claim::Run);
        assert_eq!(store.completed_count(), 1);
    }

    #[test]
    fn expired_lease_is_stolen() {
        let mut store = IdempotencyStore::new();
        assert_eq!(store.claim("k", "dead", T0, LEASE), Claim::Run);
        // just before the deadline the original holder is still protected
        assert_eq!(store.claim("k", "w2", at(599), LEASE), Claim::Busy);
        // at the deadline the lease is dead and the key can be stolen
        assert_eq!(store.claim("k", "w2", at(600), LEASE), Claim::Run);
        let l = store.lease("k").unwrap();
        assert_eq!(l.holder, "w2");
        assert_eq!(l.deadline, at(1200), "stolen lease gets a fresh deadline");
    }

    #[test]
    fn foreign_leases_lists_only_other_holders() {
        let mut store = IdempotencyStore::new();
        store.claim("a", "orch-0", T0, LEASE);
        store.claim("b", "orch-0", T0, LEASE);
        store.claim("c", "orch-1", T0, LEASE);
        assert_eq!(store.foreign_leases("orch-1"), vec!["a", "b"]);
        assert!(store.foreign_leases("orch-0").contains(&"c".to_string()));
    }

    #[test]
    fn replaying_a_whole_flow_skips_done_steps() {
        // simulate: flow ran half-way, the incarnation died, a new one
        // replays from the top after the old leases expired
        let mut store = IdempotencyStore::new();
        let steps = ["scan9/copy-nersc", "scan9/recon", "scan9/copy-back"];
        // first incarnation completes only the first step
        assert_eq!(store.claim(steps[0], "orch-0", T0, LEASE), Claim::Run);
        store.complete(steps[0]);
        assert_eq!(store.claim(steps[1], "orch-0", T0, LEASE), Claim::Run);
        // crash mid-recon: nothing released, but the lease expires
        let later = at(3600);
        let mut executed = Vec::new();
        for s in steps {
            if store.claim(s, "orch-1", later, LEASE) == Claim::Run {
                executed.push(s);
                store.complete(s);
            }
        }
        assert_eq!(executed, vec!["scan9/recon", "scan9/copy-back"]);
    }
}
