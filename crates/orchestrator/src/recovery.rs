//! Crash recovery for the orchestrator: journal-backed state plus
//! facility-state reconciliation.
//!
//! [`DurableOrchestrator`] wraps the in-memory [`FlowEngine`],
//! [`IdempotencyStore`], and [`ConcurrencyLimits`] behind a write-ahead
//! [`Journal`]: every mutation is appended as a record first, then applied
//! through the same code path replay uses, so "replay the journal" and
//! "re-run the mutations" are one and the same — state after recovery is
//! byte-for-byte the state before the crash.
//!
//! Recovery alone is not enough: the dead incarnation may have left Slurm
//! jobs, Globus transfers, and Compute invocations running at the
//! facilities. The journal's `ExternalSubmitted`/`ExternalResolved`
//! ledger tells the new incarnation which handles are still open; the
//! fate helpers ([`job_fate`], [`transfer_fate`], [`compute_fate`]) ask
//! the live services what actually became of them, and
//! [`cancel_orphan_jobs`] reaps jobs the (possibly torn) journal never
//! heard about.

use crate::engine::{FlowEngine, FlowRunId, FlowState, TaskState};
use crate::idempotency::{Claim, IdempotencyStore};
use crate::journal::{ExternalKind, Journal, JournalRecord, TailReport};
use crate::limits::ConcurrencyLimits;
use als_globus::compute::{ComputeEndpoint, ComputeTaskId, ComputeTaskState};
use als_globus::transfer::{TaskId, TaskStatus, TransferService};
use als_hpc::scheduler::{JobId, JobState, Scheduler};
use als_simcore::{SimDuration, SimInstant};
use als_telemetry::{Counter, Histogram, Registry, TraceEvent, TraceStore};
use std::collections::{BTreeMap, BTreeSet};

/// An external operation the journal believes is still in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingOp {
    pub kind: ExternalKind,
    pub handle: u64,
    pub run: FlowRunId,
    /// Caller-defined re-attachment context (JSON), recorded at submit.
    pub ctx: String,
}

/// A retry that was scheduled but had not fired when the crash hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingRetry {
    pub run: FlowRunId,
    pub task: usize,
    pub attempt: u32,
    pub delay: SimDuration,
}

/// What [`DurableOrchestrator::recover`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryInfo {
    /// Journal-tail verdict (torn/corrupt bytes truncated).
    pub tail: TailReport,
    /// Records replayed from the valid prefix.
    pub replayed: u64,
    /// External operations still open per the journal — re-attach or
    /// cancel these against live facility state.
    pub pending_external: Vec<PendingOp>,
    /// Retries decided but not yet executed.
    pub pending_retries: Vec<PendingRetry>,
    /// Idempotency keys whose leases were held by dead incarnations and
    /// were force-expired.
    pub expired_leases: Vec<String>,
}

/// The orchestrator's durable core: engine + idempotency + limits, every
/// mutation journaled ahead of application.
#[derive(Debug, Clone, Default)]
pub struct DurableOrchestrator {
    journal: Journal,
    pub engine: FlowEngine,
    pub idempotency: IdempotencyStore,
    pub limits: ConcurrencyLimits,
    holder: String,
    /// Open external operations: handle → (owning run, re-attach ctx).
    open_external: BTreeMap<(ExternalKind, u64), (FlowRunId, String)>,
    /// Every handle this journal ever recorded a submission for, open or
    /// since resolved. Rebuilt by replay; recovery uses it to tell
    /// re-attachable operations from true orphans whose submission
    /// record was destroyed with the journal tail.
    seen_external: BTreeSet<(ExternalKind, u64)>,
    /// Projection of journaled `SpanEvent` records — rebuilt by replay,
    /// so traces survive a crash exactly like the engine state does.
    traces: TraceStore,
    /// Record-carried timestamp of the oldest frame still pending in the
    /// group-commit buffer (None when the journal is drained).
    pending_since: Option<SimInstant>,
    /// Latest record-carried timestamp seen — the shard's notion of
    /// "now" without ever reading a wall clock.
    last_now: Option<SimInstant>,
    metrics: Option<OrchMetrics>,
}

/// Interned registry handles for the durable core.
#[derive(Debug, Clone)]
struct OrchMetrics {
    /// Age (µs, record timestamps) of the oldest pending frame when its
    /// flush finally lands — the durability lag group commit trades for
    /// fewer writes.
    group_commit_latency: Histogram,
    span_events: Counter,
}

impl DurableOrchestrator {
    /// A fresh incarnation with an empty journal.
    pub fn new(holder: &str, now: SimInstant) -> Self {
        let mut o = DurableOrchestrator {
            holder: holder.to_string(),
            ..Default::default()
        };
        o.record(JournalRecord::IncarnationStarted {
            holder: holder.to_string(),
            at: now,
        });
        o
    }

    /// A fresh shard of an `n`-shard fleet: run ids strided so `id % total
    /// == index`, and the journal in group-commit mode (`batch <= 1` =
    /// immediate durability, the unsharded behaviour).
    pub fn shard(holder: &str, now: SimInstant, index: u64, total: u64, batch: usize) -> Self {
        assert!(index < total, "shard index out of range");
        let mut o = DurableOrchestrator {
            holder: holder.to_string(),
            engine: FlowEngine::with_stride(index, total),
            ..Default::default()
        };
        o.record(JournalRecord::IncarnationStarted {
            holder: holder.to_string(),
            at: now,
        });
        o.journal.set_group_commit(batch);
        o
    }

    /// A fresh incarnation with the §4.2.2 production concurrency pools
    /// (journaled, so replay rebuilds them).
    pub fn production(holder: &str, now: SimInstant) -> Self {
        let mut o = Self::new(holder, now);
        for (tag, limit) in [
            ("scan-detect", 8),
            ("hpc-submit", 2),
            ("globus-transfer", 4),
            ("prune", 1),
        ] {
            o.set_limit(tag, limit);
        }
        o
    }

    /// This incarnation's identity (the lease holder string).
    pub fn holder(&self) -> &str {
        &self.holder
    }

    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Mutable journal access — fault injection only (tearing the tail to
    /// simulate a write cut short by the crash).
    pub fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Attach registry handles to this shard: the journal write metrics
    /// plus `orch_group_commit_latency_us` and `orch_span_events_total`.
    /// Handles are shared cells, so instrumenting a fleet's shards with
    /// one registry yields fleet totals.
    pub fn instrument(&mut self, registry: &Registry) {
        self.journal.instrument(registry);
        let m = OrchMetrics {
            group_commit_latency: registry.histogram("orch_group_commit_latency_us", &[]),
            span_events: registry.counter("orch_span_events_total", &[]),
        };
        m.span_events.add(self.traces.events_applied());
        self.metrics = Some(m);
    }

    /// Write-ahead: append the record, then apply it. Apply is the same
    /// function replay uses, which is what makes recovery exact.
    fn record(&mut self, rec: JournalRecord) {
        if let Some(at) = rec.timestamp() {
            self.last_now = Some(self.last_now.map_or(at, |n| n.max(at)));
        }
        self.journal.append(&rec);
        self.note_durability();
        self.apply(&rec);
    }

    /// Group-commit latency bookkeeping, on record-carried `SimInstant`s
    /// only (telemetry never reads the wall clock): stamp the oldest
    /// pending frame's time, and when the journal drains — batch-bound
    /// auto-flush or explicit barrier — record how long it sat pending.
    fn note_durability(&mut self) {
        if self.journal.pending_records() == 0 {
            if let (Some(m), Some(since), Some(now)) =
                (&self.metrics, self.pending_since, self.last_now)
            {
                m.group_commit_latency
                    .record(now.duration_since(since).as_micros());
            }
            self.pending_since = None;
        } else if self.pending_since.is_none() {
            self.pending_since = self.last_now;
        }
    }

    /// Commit barrier: force any pending group-commit frames into the
    /// durable image. A no-op in immediate mode.
    pub fn commit(&mut self) -> bool {
        let flushed = self.journal.flush();
        if flushed {
            self.note_durability();
        }
        flushed
    }

    fn apply(&mut self, rec: &JournalRecord) {
        match rec {
            JournalRecord::IncarnationStarted { .. } => {}
            JournalRecord::FlowCreated { run, flow, at } => {
                let id = self.engine.create_run(flow, *at);
                debug_assert_eq!(id.0, *run, "journal and engine disagree on run id");
            }
            JournalRecord::FlowParam { run, key, value } => {
                self.engine.set_parameter(FlowRunId(*run), key, value);
            }
            JournalRecord::FlowStarted { run, at } => {
                self.engine.start_run(FlowRunId(*run), *at);
            }
            JournalRecord::FlowFinished { run, state, at } => {
                self.engine.finish_run(FlowRunId(*run), *state, *at);
            }
            JournalRecord::TaskStarted {
                run,
                task,
                name,
                key,
                at,
            } => {
                let idx = self
                    .engine
                    .start_task(FlowRunId(*run), name, key.as_deref(), *at);
                debug_assert_eq!(idx, *task, "journal and engine disagree on task index");
            }
            JournalRecord::TaskFinished {
                run,
                task,
                state,
                at,
                error,
            } => {
                self.engine
                    .finish_task(FlowRunId(*run), *task, *state, *at, error.as_deref());
            }
            JournalRecord::TaskRetried { run, task, at } => {
                self.engine.retry_task(FlowRunId(*run), *task, *at);
            }
            JournalRecord::RetryScheduled { .. } => {} // decision only; fires as TaskRetried
            JournalRecord::ClaimAcquired {
                key,
                holder,
                deadline,
            } => {
                self.idempotency.install_lease(key, holder, *deadline);
            }
            JournalRecord::ClaimCompleted { key } => self.idempotency.complete(key),
            JournalRecord::ClaimReleased { key } => self.idempotency.release(key),
            JournalRecord::LeaseExpired { key, .. } => self.idempotency.release(key),
            JournalRecord::LimitSet { tag, limit } => self.limits.set_limit(tag, *limit),
            JournalRecord::LimitAcquired { tag } => {
                let ok = self.limits.try_acquire(tag);
                debug_assert!(ok, "journaled acquire must re-admit on replay");
            }
            JournalRecord::LimitReleased { tag } => self.limits.release(tag),
            JournalRecord::LimitRejected { tag } => {
                // counter-only: the refusal may have been a *fleet-level*
                // decision (another shard's pool was full), so re-running
                // try_acquire against this shard's local pool would be
                // wrong — only the rejection tally is state
                self.limits.note_rejection(tag);
            }
            JournalRecord::ExternalSubmitted {
                kind,
                handle,
                run,
                ctx,
            } => {
                self.open_external
                    .insert((*kind, *handle), (FlowRunId(*run), ctx.clone()));
                self.seen_external.insert((*kind, *handle));
            }
            JournalRecord::ExternalResolved { kind, handle } => {
                self.open_external.remove(&(*kind, *handle));
            }
            JournalRecord::SpanEvent { ev } => {
                if let Some(m) = &self.metrics {
                    m.span_events.inc();
                }
                self.traces.apply(ev);
            }
        }
    }

    // ----- journaled flow/task operations ------------------------------

    pub fn create_run(&mut self, flow: &str, now: SimInstant) -> FlowRunId {
        let id = FlowRunId(self.engine.peek_next_id());
        self.record(JournalRecord::FlowCreated {
            run: id.0,
            flow: flow.to_string(),
            at: now,
        });
        id
    }

    pub fn set_parameter(&mut self, id: FlowRunId, key: &str, value: &str) {
        self.record(JournalRecord::FlowParam {
            run: id.0,
            key: key.to_string(),
            value: value.to_string(),
        });
    }

    pub fn start_run(&mut self, id: FlowRunId, now: SimInstant) {
        self.record(JournalRecord::FlowStarted { run: id.0, at: now });
    }

    pub fn finish_run(&mut self, id: FlowRunId, state: FlowState, now: SimInstant) {
        self.record(JournalRecord::FlowFinished {
            run: id.0,
            state,
            at: now,
        });
    }

    pub fn start_task(
        &mut self,
        id: FlowRunId,
        name: &str,
        key: Option<&str>,
        now: SimInstant,
    ) -> usize {
        let idx = self.engine.run(id).map_or(0, |r| r.tasks.len());
        self.record(JournalRecord::TaskStarted {
            run: id.0,
            task: idx,
            name: name.to_string(),
            key: key.map(str::to_string),
            at: now,
        });
        idx
    }

    pub fn finish_task(
        &mut self,
        id: FlowRunId,
        task: usize,
        state: TaskState,
        now: SimInstant,
        error: Option<&str>,
    ) {
        self.record(JournalRecord::TaskFinished {
            run: id.0,
            task,
            state,
            at: now,
            error: error.map(str::to_string),
        });
    }

    pub fn retry_task(&mut self, id: FlowRunId, task: usize, now: SimInstant) {
        self.record(JournalRecord::TaskRetried {
            run: id.0,
            task,
            at: now,
        });
    }

    /// Journal a retry *decision* (the backoff delay chosen by the retry
    /// policy) so a restarted incarnation knows the retry is owed.
    pub fn schedule_retry(&mut self, id: FlowRunId, task: usize, attempt: u32, delay: SimDuration) {
        self.record(JournalRecord::RetryScheduled {
            run: id.0,
            task,
            attempt,
            delay,
        });
    }

    // ----- journaled idempotency operations ----------------------------

    /// Claim a key under a lease. Journals the lease eviction (if an
    /// expired one was stolen) and the acquisition; `Cached`/`Busy`
    /// outcomes change no state and are not journaled.
    pub fn claim(&mut self, key: &str, now: SimInstant, lease: SimDuration) -> Claim {
        if self.idempotency.is_completed(key) {
            return Claim::Cached;
        }
        if let Some(l) = self.idempotency.lease(key) {
            if l.is_live(now) {
                return Claim::Busy;
            }
            let holder = l.holder.clone();
            self.record(JournalRecord::LeaseExpired {
                key: key.to_string(),
                holder,
            });
        }
        self.record(JournalRecord::ClaimAcquired {
            key: key.to_string(),
            holder: self.holder.clone(),
            deadline: now + lease,
        });
        Claim::Run
    }

    pub fn complete(&mut self, key: &str) {
        if !self.idempotency.is_completed(key) {
            self.record(JournalRecord::ClaimCompleted {
                key: key.to_string(),
            });
        }
    }

    pub fn release(&mut self, key: &str) {
        if self.idempotency.lease(key).is_some() {
            self.record(JournalRecord::ClaimReleased {
                key: key.to_string(),
            });
        }
    }

    // ----- journaled concurrency-limit operations ----------------------

    pub fn set_limit(&mut self, tag: &str, limit: usize) {
        self.record(JournalRecord::LimitSet {
            tag: tag.to_string(),
            limit,
        });
    }

    pub fn try_acquire(&mut self, tag: &str) -> bool {
        let admit = self.limits.would_admit(tag);
        self.record(if admit {
            JournalRecord::LimitAcquired {
                tag: tag.to_string(),
            }
        } else {
            JournalRecord::LimitRejected {
                tag: tag.to_string(),
            }
        });
        admit
    }

    pub fn release_limit(&mut self, tag: &str) {
        self.record(JournalRecord::LimitReleased {
            tag: tag.to_string(),
        });
    }

    // ----- journaled trace spans ---------------------------------------

    /// Journal a trace span event. Spans ride the WAL next to the state
    /// records, so recovery replays them into the identical trace store
    /// (and therefore the identical latency report).
    pub fn record_span(&mut self, ev: TraceEvent) {
        self.record(JournalRecord::SpanEvent { ev });
    }

    /// The journaled-span projection.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    // ----- external-operation ledger -----------------------------------

    /// Record that an external operation (job/transfer/invocation) was
    /// handed to a facility service. This is a commit barrier: the
    /// submission record (and everything queued before it — the claim,
    /// the task start) is flushed durable immediately, because from this
    /// instant a side effect exists at a facility that the journal must
    /// not forget.
    pub fn external_submitted(
        &mut self,
        kind: ExternalKind,
        handle: u64,
        run: FlowRunId,
        ctx: &str,
    ) {
        self.record(JournalRecord::ExternalSubmitted {
            kind,
            handle,
            run: run.0,
            ctx: ctx.to_string(),
        });
        if self.journal.flush() {
            self.note_durability();
        }
    }

    /// Record that the operation reached a terminal state (success or
    /// failure — either way it is no longer open).
    pub fn external_resolved(&mut self, kind: ExternalKind, handle: u64) {
        if self.open_external.contains_key(&(kind, handle)) {
            self.record(JournalRecord::ExternalResolved { kind, handle });
        }
    }

    /// Is this handle still open per the journal?
    pub fn external_is_open(&self, kind: ExternalKind, handle: u64) -> bool {
        self.open_external.contains_key(&(kind, handle))
    }

    /// Did this journal *ever* record the handle's submission (open or
    /// resolved)? `false` after recovery means the facility is running
    /// work the journal never heard about — the submission record was
    /// destroyed, and the operation must be adopted or cancelled.
    pub fn external_ever_seen(&self, kind: ExternalKind, handle: u64) -> bool {
        self.seen_external.contains(&(kind, handle))
    }

    /// Runs that still own an open external operation — these must *not*
    /// be resumed by re-running their steps (the operation itself will
    /// report back); everything else non-terminal is fair game.
    pub fn runs_with_open_ops(&self) -> BTreeSet<FlowRunId> {
        self.open_external.values().map(|(run, _)| *run).collect()
    }

    pub fn open_external_count(&self) -> usize {
        self.open_external.len()
    }

    // ----- recovery ----------------------------------------------------

    /// Rebuild an orchestrator from a crash-surviving journal image:
    /// truncate any torn tail, replay the valid prefix through the same
    /// apply path live operations use, force-expire leases held by dead
    /// incarnations, and report what still needs reconciling against
    /// live facility state.
    pub fn recover(bytes: &[u8], holder: &str, now: SimInstant) -> (Self, RecoveryInfo) {
        Self::recover_shard(bytes, holder, now, 0, 1, 0)
    }

    /// [`DurableOrchestrator::recover`] for one shard of an `n`-shard
    /// fleet: the engine is pre-configured with the shard's id stride
    /// *before* replay (so `FlowCreated` records land on the same ids
    /// they were journaled with), and the journal re-enters group-commit
    /// mode only after the recovery records themselves are durable.
    pub fn recover_shard(
        bytes: &[u8],
        holder: &str,
        now: SimInstant,
        index: u64,
        total: u64,
        batch: usize,
    ) -> (Self, RecoveryInfo) {
        assert!(index < total, "shard index out of range");
        let (journal, records, tail) = Journal::from_bytes(bytes);
        let mut orch = DurableOrchestrator {
            journal,
            engine: FlowEngine::with_stride(index, total),
            holder: holder.to_string(),
            ..Default::default()
        };
        // retries owed = scheduled minus fired, per (run, task)
        let mut owed: BTreeMap<(u64, usize), Vec<PendingRetry>> = BTreeMap::new();
        for rec in &records {
            match rec {
                JournalRecord::RetryScheduled {
                    run,
                    task,
                    attempt,
                    delay,
                } => owed.entry((*run, *task)).or_default().push(PendingRetry {
                    run: FlowRunId(*run),
                    task: *task,
                    attempt: *attempt,
                    delay: *delay,
                }),
                JournalRecord::TaskRetried { run, task, .. } => {
                    if let Some(v) = owed.get_mut(&(*run, *task)) {
                        v.pop();
                    }
                }
                _ => {}
            }
            orch.apply(rec);
        }
        let replayed = records.len() as u64;
        orch.record(JournalRecord::IncarnationStarted {
            holder: holder.to_string(),
            at: now,
        });
        // the previous incarnation is dead by definition: its leases
        // protect nothing any more
        let expired_leases = orch.expire_foreign_leases(now);
        let pending_external = orch
            .open_external
            .iter()
            .map(|((kind, handle), (run, ctx))| PendingOp {
                kind: *kind,
                handle: *handle,
                run: *run,
                ctx: ctx.clone(),
            })
            .collect();
        let info = RecoveryInfo {
            tail,
            replayed,
            pending_external,
            pending_retries: owed.into_values().flatten().collect(),
            expired_leases,
        };
        // recovery records above were written in immediate mode (durable
        // at once); only new work batches
        orch.journal.set_group_commit(batch);
        (orch, info)
    }

    /// Force-expire every lease not held by this incarnation (journaled).
    pub fn expire_foreign_leases(&mut self, _now: SimInstant) -> Vec<String> {
        let foreign = self.idempotency.foreign_leases(&self.holder);
        for key in &foreign {
            let holder = self
                .idempotency
                .lease(key)
                .map(|l| l.holder.clone())
                .unwrap_or_default();
            self.record(JournalRecord::LeaseExpired {
                key: key.clone(),
                holder,
            });
        }
        foreign
    }
}

// ----- facility-state reconciliation ----------------------------------

/// What actually became of an external operation while the orchestrator
/// was dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFate {
    /// Finished successfully; harvest the result.
    Completed,
    /// Reached a terminal failure state.
    Failed,
    /// Still pending/running; re-attach and keep waiting.
    Live,
    /// The facility has no record of it.
    Lost,
}

/// Ask the Slurm scheduler what became of a journaled job.
pub fn job_fate(sched: &Scheduler, id: JobId) -> OpFate {
    match sched.state(id) {
        None => OpFate::Lost,
        Some(JobState::Pending | JobState::Running) => OpFate::Live,
        Some(JobState::Completed) => OpFate::Completed,
        Some(JobState::TimedOut | JobState::Cancelled | JobState::Failed) => OpFate::Failed,
    }
}

/// Ask the transfer service what became of a journaled transfer.
pub fn transfer_fate(svc: &TransferService, id: TaskId) -> OpFate {
    match svc.status(id) {
        None => OpFate::Lost,
        Some(TaskStatus::Queued | TaskStatus::Active | TaskStatus::Hung) => OpFate::Live,
        Some(TaskStatus::Succeeded) => OpFate::Completed,
        Some(TaskStatus::Failed(_) | TaskStatus::Cancelled) => OpFate::Failed,
    }
}

/// Ask the compute endpoint what became of a journaled invocation.
pub fn compute_fate(ep: &ComputeEndpoint, id: ComputeTaskId) -> OpFate {
    match ep.state(id) {
        None => OpFate::Lost,
        Some(ComputeTaskState::Pending | ComputeTaskState::Running) => OpFate::Live,
        Some(ComputeTaskState::Completed) => OpFate::Completed,
        Some(ComputeTaskState::Cancelled | ComputeTaskState::Failed) => OpFate::Failed,
    }
}

/// Cancel live jobs matching `name_prefix` that the journal knows nothing
/// about — submissions whose `ExternalSubmitted` record was lost in the
/// torn tail. Background (non-prefixed) jobs belong to other users and
/// are left alone. Returns the reaped job ids.
pub fn cancel_orphan_jobs(
    sched: &mut Scheduler,
    known: &BTreeSet<u64>,
    name_prefix: &str,
    now: SimInstant,
) -> Vec<JobId> {
    let orphans: Vec<JobId> = sched
        .live_jobs()
        .into_iter()
        .filter(|id| {
            !known.contains(&id.0)
                && sched
                    .job_name(*id)
                    .is_some_and(|n| n.starts_with(name_prefix))
        })
        .collect();
    for &id in &orphans {
        sched.cancel(id, now);
    }
    orphans
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_hpc::scheduler::{JobRequest, Qos};

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    const LEASE: SimDuration = SimDuration::from_secs(3600);

    fn scripted_orchestrator() -> DurableOrchestrator {
        let mut o = DurableOrchestrator::production("orch-0", t(0));
        let run = o.create_run("nersc_recon_flow", t(1));
        o.set_parameter(run, "scan", "scan_0001");
        o.start_run(run, t(1));
        assert_eq!(o.claim("scan_0001/copy", t(1), LEASE), Claim::Run);
        assert!(o.try_acquire("globus-transfer"));
        let task = o.start_task(run, "globus_copy_to_hpc", Some("scan_0001/copy"), t(1));
        o.external_submitted(ExternalKind::Transfer, 11, run, "{\"scan\":1}");
        o.finish_task(run, task, TaskState::Completed, t(90), None);
        o.external_resolved(ExternalKind::Transfer, 11);
        o.release_limit("globus-transfer");
        o.complete("scan_0001/copy");
        assert_eq!(o.claim("scan_0001/job", t(90), LEASE), Claim::Run);
        o.schedule_retry(run, task, 1, SimDuration::from_secs(10));
        o.external_submitted(ExternalKind::Job, 3, run, "{\"scan\":1}");
        // second run left mid-flight (claim held, op open)
        let run2 = o.create_run("alcf_recon_flow", t(100));
        o.start_run(run2, t(100));
        assert_eq!(o.claim("scan_0002/copy", t(100), LEASE), Claim::Run);
        o.external_submitted(ExternalKind::Transfer, 12, run2, "{\"scan\":2}");
        o
    }

    #[test]
    fn recovery_reproduces_state_exactly() {
        let live = scripted_orchestrator();
        let (rec, info) = DurableOrchestrator::recover(live.journal().bytes(), "orch-1", t(200));
        assert!(info.tail.is_clean());
        assert_eq!(rec.engine, live.engine);
        assert_eq!(rec.limits, live.limits);
        assert_eq!(rec.open_external, live.open_external);
        // idempotency matches except the foreign leases recovery expired
        assert_eq!(
            rec.idempotency.completed_count(),
            live.idempotency.completed_count()
        );
        assert_eq!(rec.idempotency.in_flight_count(), 0, "dead leases expired");
        assert_eq!(info.expired_leases.len(), 2);
        assert_eq!(info.pending_external.len(), 2);
        assert_eq!(info.pending_retries.len(), 1);
        assert_eq!(
            rec.runs_with_open_ops(),
            BTreeSet::from([FlowRunId(0), FlowRunId(1)])
        );
    }

    #[test]
    fn recovery_truncates_a_torn_tail_and_keeps_the_prefix() {
        let mut live = scripted_orchestrator();
        let clean_records = live.journal().record_count();
        live.journal_mut().tear_tail(7);
        let (rec, info) = DurableOrchestrator::recover(live.journal().bytes(), "orch-1", t(200));
        assert!(!info.tail.is_clean());
        assert!(info.tail.dropped_bytes > 0);
        assert!(info.replayed < clean_records, "the torn record is gone");
        // the recovered engine equals a replay of just the valid prefix
        let (prefix_records, _) = Journal::replay_bytes(rec.journal().bytes());
        let mut shadow = DurableOrchestrator::default();
        for r in prefix_records.iter().take(info.replayed as usize) {
            shadow.apply(r);
        }
        assert_eq!(rec.engine, shadow.engine);
    }

    #[test]
    fn recovered_journal_accepts_new_appends() {
        let live = scripted_orchestrator();
        let (mut rec, _) = DurableOrchestrator::recover(live.journal().bytes(), "orch-1", t(200));
        let run = rec.create_run("new_file_832", t(201));
        assert_eq!(
            run.0, 2,
            "run ids continue where the dead incarnation stopped"
        );
        let (rec2, info2) = DurableOrchestrator::recover(rec.journal().bytes(), "orch-2", t(300));
        assert!(info2.tail.is_clean());
        assert_eq!(rec2.engine, rec.engine);
    }

    #[test]
    fn journaled_spans_replay_to_the_identical_report() {
        use als_telemetry::{SpanOutcome, Stage};
        let scan = "scan_0001";
        let mut o = DurableOrchestrator::new("orch-0", t(0));
        let start = |span, parent, stage, fac: &str, at| TraceEvent::Start {
            scan: scan.into(),
            span,
            parent,
            stage,
            facility: fac.into(),
            at,
        };
        let end = |span, at, outcome| TraceEvent::End {
            scan: scan.into(),
            span,
            at,
            outcome,
        };
        o.record_span(start(0, None, Stage::Ingest, "als", t(0)));
        o.record_span(end(0, t(12), SpanOutcome::Ok));
        // transfer to NERSC fails; the redirect span supersedes it
        o.record_span(start(1, None, Stage::Transfer, "nersc", t(12)));
        o.record_span(end(1, t(80), SpanOutcome::Failed));
        o.record_span(start(2, Some(1), Stage::Transfer, "alcf", t(80)));
        o.record_span(TraceEvent::Note {
            scan: scan.into(),
            span: 2,
            at: t(80),
            key: "router".into(),
            value: "breaker=Open hop=1".into(),
        });
        o.record_span(end(2, t(150), SpanOutcome::Ok));
        let live_report = o.traces().report();

        let (rec, info) = DurableOrchestrator::recover(o.journal().bytes(), "orch-1", t(500));
        assert!(info.tail.is_clean());
        assert_eq!(rec.traces(), o.traces(), "replay rebuilds the trace store");
        assert_eq!(rec.traces().report(), live_report, "…and the report");
        assert_eq!(
            rec.traces().max_span_id(),
            Some(2),
            "the new incarnation resumes its span allocator above this"
        );
        let tr = rec.traces().scan(scan).unwrap();
        assert_eq!(tr.span(2).unwrap().parent, Some(1));
        assert_eq!(tr.span(2).unwrap().notes[0].key, "router");
    }

    #[test]
    fn group_commit_latency_is_measured_on_record_timestamps() {
        let registry = Registry::new();
        let mut o = DurableOrchestrator::shard("orch-0", t(0), 0, 1, 64);
        o.instrument(&registry);
        let run = o.create_run("nersc_recon_flow", t(10)); // oldest pending
        o.start_run(run, t(10));
        o.finish_run(run, FlowState::Completed, t(25));
        o.commit(); // barrier at last_now = t(25): 15 s pending
        let snap = registry.snapshot();
        let h = &snap.histograms["orch_group_commit_latency_us"];
        assert_eq!(h.count, 1);
        assert_eq!(h.min, Some(15_000_000));
        // submission barrier measures too
        let run2 = o.create_run("alcf_recon_flow", t(30));
        o.external_submitted(ExternalKind::Job, 9, run2, "{}");
        assert_eq!(
            registry.snapshot().histograms["orch_group_commit_latency_us"].count,
            2
        );
    }

    #[test]
    fn orphan_jobs_are_cancelled_by_prefix() {
        let mut sched = Scheduler::new(8);
        let req = |name: &str| JobRequest {
            name: name.to_string(),
            qos: Qos::Realtime,
            nodes: 1,
            runtime: SimDuration::from_secs(600),
            walltime_limit: SimDuration::from_secs(7200),
        };
        let (known_job, _) = sched.submit(req("recon_scan_0001"), t(0));
        let (orphan_job, _) = sched.submit(req("recon_scan_0002"), t(0));
        let (background, _) = sched.submit(req("background"), t(0));
        let known = BTreeSet::from([known_job.0]);
        let reaped = cancel_orphan_jobs(&mut sched, &known, "recon_", t(10));
        assert_eq!(reaped, vec![orphan_job]);
        assert_eq!(sched.state(orphan_job), Some(JobState::Cancelled));
        assert_ne!(sched.state(known_job), Some(JobState::Cancelled));
        assert_ne!(sched.state(background), Some(JobState::Cancelled));
    }

    #[test]
    fn fates_classify_job_states() {
        let mut sched = Scheduler::new(4);
        let (job, _) = sched.submit(
            JobRequest {
                name: "recon_x".into(),
                qos: Qos::Realtime,
                nodes: 1,
                runtime: SimDuration::from_secs(100),
                walltime_limit: SimDuration::from_secs(1000),
            },
            t(0),
        );
        assert_eq!(job_fate(&sched, job), OpFate::Live);
        sched.advance_to(t(500));
        assert_eq!(job_fate(&sched, job), OpFate::Completed);
        assert_eq!(job_fate(&sched, JobId(999)), OpFate::Lost);
    }
}
