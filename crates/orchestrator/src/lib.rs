//! # als-orchestrator
//!
//! The workflow orchestration layer — a Prefect substitute providing what
//! the paper's §4.2.2 describes:
//!
//! * [`engine`] — flow and task runs with full lifecycle states, retries,
//!   and a queryable run database (Table 2 is produced by querying it,
//!   exactly as the paper queried the Prefect server API);
//! * [`idempotency`] — idempotent task semantics "that support safe
//!   retries of specific steps in case of failure";
//! * [`limits`] — named concurrency-limit pools ("tuned concurrency for
//!   scan detection tasks, but lower concurrency for HPC job submission
//!   to prevent queue conflicts");
//! * [`schedule`] — periodic schedules for the pruning flows;
//! * [`journal`] — append-only write-ahead event journal with
//!   per-record checksums and torn-tail detection;
//! * [`recovery`] — crash recovery by journal replay plus reconciliation
//!   against live facility state (orphaned jobs, in-flight transfers,
//!   leases held by the dead incarnation);
//! * [`shard`] — the durable core partitioned across N journal shards
//!   with group-commit batching, per-shard event loops, and fleet-wide
//!   recovery that isolates damage to the shard that suffered it.

pub mod engine;
pub mod idempotency;
pub mod journal;
pub mod limits;
pub mod logs;
pub mod recovery;
pub mod schedule;
pub mod shard;
pub mod worker;

pub use engine::{FlowEngine, FlowRunId, FlowState, RetryPolicy, RunQuery, TaskState};
pub use idempotency::{Claim, IdempotencyStore, Lease};
pub use journal::{ExternalKind, Journal, JournalRecord, TailDamage, TailReport};
pub use limits::ConcurrencyLimits;
pub use logs::{LogLevel, LogRecord, LogStore};
pub use recovery::{
    cancel_orphan_jobs, compute_fate, job_fate, transfer_fate, DurableOrchestrator, OpFate,
    PendingOp, PendingRetry, RecoveryInfo,
};
pub use schedule::Schedule;
pub use shard::{shard_of_key, FleetRecoveryInfo, ShardPool, ShardedOrchestrator};
pub use worker::{WorkerId, WorkerPool};
