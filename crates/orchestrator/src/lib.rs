//! # als-orchestrator
//!
//! The workflow orchestration layer — a Prefect substitute providing what
//! the paper's §4.2.2 describes:
//!
//! * [`engine`] — flow and task runs with full lifecycle states, retries,
//!   and a queryable run database (Table 2 is produced by querying it,
//!   exactly as the paper queried the Prefect server API);
//! * [`idempotency`] — idempotent task semantics "that support safe
//!   retries of specific steps in case of failure";
//! * [`limits`] — named concurrency-limit pools ("tuned concurrency for
//!   scan detection tasks, but lower concurrency for HPC job submission
//!   to prevent queue conflicts");
//! * [`schedule`] — periodic schedules for the pruning flows.

pub mod engine;
pub mod idempotency;
pub mod limits;
pub mod logs;
pub mod schedule;
pub mod worker;

pub use engine::{FlowEngine, FlowRunId, FlowState, RetryPolicy, RunQuery, TaskState};
pub use idempotency::IdempotencyStore;
pub use limits::ConcurrencyLimits;
pub use logs::{LogLevel, LogRecord, LogStore};
pub use schedule::Schedule;
pub use worker::{WorkerId, WorkerPool};
