//! Property tests for the write-ahead journal: replay must reproduce the
//! orchestrator's durable state exactly, and any damage to a suffix of
//! the byte stream must degrade to a clean *prefix* of the history —
//! never to garbage, a panic, or a state the live path could not have
//! produced.

use als_orchestrator::engine::{FlowState, TaskState};
use als_orchestrator::idempotency::Claim;
use als_orchestrator::{DurableOrchestrator, ExternalKind, Journal};
use als_simcore::{SimDuration, SimInstant};
use proptest::prelude::*;

const HOLDER: &str = "orch-pt";
const KEYS: [&str; 3] = ["scan/ingest", "scan/copy@nersc", "scan/exec@alcf"];
const LEASE: SimDuration = SimDuration::from_secs(600);

/// Drive a random-but-valid operation sequence against a fresh
/// orchestrator, mirroring the call mix the facility simulator makes.
/// Returns the orchestrator and the sim-time reached.
fn drive(ops: &[u8]) -> (DurableOrchestrator, SimInstant) {
    let mut now = SimInstant::ZERO;
    let mut orch = DurableOrchestrator::production(HOLDER, now);
    // shadow state so every call is legal (start_run asserts Scheduled &c.)
    let mut scheduled = Vec::new();
    let mut running: Vec<(als_orchestrator::engine::FlowRunId, usize)> = Vec::new();
    let mut held = [false; 3];
    let mut done = [false; 3];
    let mut open_handles: Vec<u64> = Vec::new();
    let mut next_handle = 0u64;

    for &op in ops {
        match op % 10 {
            0 => scheduled.push(orch.create_run("recon", now)),
            1 => {
                if let Some(run) = scheduled.pop() {
                    orch.start_run(run, now);
                    running.push((run, 0));
                }
            }
            2 => {
                if let Some((run, tasks)) = running.last_mut() {
                    orch.start_task(*run, &format!("t{tasks}"), Some(KEYS[0]), now);
                    *tasks += 1;
                }
            }
            3 => {
                if let Some(&(run, tasks)) = running.last() {
                    if tasks > 0 {
                        orch.finish_task(run, tasks - 1, TaskState::Completed, now, None);
                    }
                }
            }
            4 => {
                if let Some((run, _)) = running.pop() {
                    orch.finish_run(run, FlowState::Completed, now);
                }
            }
            5 => {
                let k = (op as usize / 10) % 3;
                match orch.claim(KEYS[k], now, LEASE) {
                    Claim::Run => held[k] = true,
                    Claim::Cached => assert!(done[k], "cached but never completed"),
                    Claim::Busy => assert!(held[k], "busy but no live lease"),
                }
            }
            6 => {
                let k = (op as usize / 10) % 3;
                if held[k] {
                    orch.complete(KEYS[k]);
                    held[k] = false;
                    done[k] = true;
                }
            }
            7 => {
                let k = (op as usize / 10) % 3;
                if held[k] {
                    orch.release(KEYS[k]);
                    held[k] = false;
                }
            }
            8 => {
                if let Some(&(run, _)) = running.last() {
                    let kind = match op / 10 {
                        0..=7 => ExternalKind::Transfer,
                        8..=15 => ExternalKind::Job,
                        _ => ExternalKind::Compute,
                    };
                    orch.external_submitted(kind, next_handle, run, "{\"scan\":1}");
                    open_handles.push(next_handle);
                    next_handle += 1;
                } else if let Some(h) = open_handles.pop() {
                    // resolve all kinds; resolving a non-open pair is a no-op
                    orch.external_resolved(ExternalKind::Transfer, h);
                    orch.external_resolved(ExternalKind::Job, h);
                    orch.external_resolved(ExternalKind::Compute, h);
                }
            }
            _ => now += SimDuration::from_secs(u64::from(op) + 1),
        }
    }
    (orch, now)
}

proptest! {
    /// Replaying a clean journal reproduces the engine, the idempotency
    /// store, and the concurrency limits *exactly* — the record-then-
    /// apply discipline means durable state is a pure function of the
    /// byte stream.
    #[test]
    fn clean_replay_reproduces_state_exactly(ops in prop::collection::vec(any::<u8>(), 0..120)) {
        let (orch, now) = drive(&ops);
        let (replayed, info) = DurableOrchestrator::recover(orch.journal().bytes(), HOLDER, now);
        prop_assert!(info.tail.is_clean(), "clean journal reported damage: {:?}", info.tail);
        prop_assert_eq!(info.replayed, orch.journal().record_count());
        prop_assert_eq!(&replayed.engine, &orch.engine, "engines diverge after replay");
        // same holder ⇒ no lease is foreign ⇒ the store survives verbatim
        prop_assert!(info.expired_leases.is_empty());
        prop_assert_eq!(&replayed.idempotency, &orch.idempotency, "idempotency stores diverge");
        prop_assert_eq!(&replayed.limits, &orch.limits, "concurrency limits diverge");
        prop_assert_eq!(replayed.open_external_count(), orch.open_external_count());
    }

    /// Damaging any suffix of the byte stream — truncation mid-record,
    /// bit-flips, appended garbage — degrades replay to a *prefix* of
    /// the original record history, and recovery from the damaged image
    /// equals recovery from that prefix re-serialised. No panic, no
    /// phantom records, no divergent state.
    #[test]
    fn damaged_tail_degrades_to_a_clean_prefix(
        ops in prop::collection::vec(any::<u8>(), 1..100),
        cut_frac in 0.0f64..1.0,
        junk in prop::collection::vec(any::<u8>(), 0..40),
        flip in 0usize..4096,
    ) {
        let (orch, now) = drive(&ops);
        let full = orch.journal().bytes().to_vec();
        let (full_records, _) = Journal::replay_bytes(&full);

        // damage = truncate at an arbitrary byte, optionally flip a byte
        // in what remains, then append garbage
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let mut damaged = full[..cut.min(full.len())].to_vec();
        if flip % 2 == 1 && !damaged.is_empty() {
            let i = flip % damaged.len();
            damaged[i] ^= 0x41;
        }
        damaged.extend_from_slice(&junk);

        let (records, _tail) = Journal::replay_bytes(&damaged);
        prop_assert!(records.len() <= full_records.len());
        prop_assert_eq!(
            &records[..],
            &full_records[..records.len()],
            "damaged replay is not a prefix of the original history"
        );

        // recovery from the damaged image must equal recovery from the
        // surviving prefix re-serialised through the journal writer
        let mut prefix = Journal::new();
        for rec in &records {
            prefix.append(rec);
        }
        let (from_damaged, info_d) = DurableOrchestrator::recover(&damaged, HOLDER, now);
        let (from_prefix, info_p) = DurableOrchestrator::recover(prefix.bytes(), HOLDER, now);
        prop_assert_eq!(info_d.replayed, records.len() as u64);
        prop_assert_eq!(info_d.replayed, info_p.replayed);
        prop_assert_eq!(&from_damaged.engine, &from_prefix.engine);
        prop_assert_eq!(&from_damaged.idempotency, &from_prefix.idempotency);
        prop_assert_eq!(&from_damaged.limits, &from_prefix.limits);
    }
}
