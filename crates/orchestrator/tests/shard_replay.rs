//! Property tests for the *sharded* group-commit journal: fleet
//! recovery must reproduce each partition's durable state exactly, a
//! crash image must degrade to the durable prefix of each shard's
//! history, and damage on one partition must never bleed into the
//! recovered state of another. A pair of deterministic hardening tests
//! then pin the zero-duplicate guarantee under the nastiest recovery
//! shapes: a lease-steal race immediately after a multi-shard recovery,
//! and a completion record destroyed on its home shard but surviving on
//! its ring replica.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use als_orchestrator::engine::{FlowRunId, FlowState, TaskState};
use als_orchestrator::idempotency::Claim;
use als_orchestrator::{
    shard_of_key, DurableOrchestrator, ExternalKind, ShardPool, ShardedOrchestrator,
};
use als_simcore::{SimDuration, SimInstant};
use proptest::prelude::*;

const HOLDER: &str = "orch-pt";
const LEASE: SimDuration = SimDuration::from_secs(600);
// distinct prefixes before '/' so the keys spread across partitions
const KEYS: [&str; 4] = [
    "scan_a/ingest",
    "scan_b/copy@nersc",
    "scan_c/exec@alcf",
    "scan_d/back@nersc",
];

/// Drive a random-but-valid operation sequence against a fresh fleet,
/// mirroring the call mix the facility simulator makes — runs routed by
/// scan key, claims/completions on the owning shard, external barriers.
fn drive_fleet(ops: &[u8], shards: usize, batch: usize) -> (ShardedOrchestrator, SimInstant) {
    let mut now = SimInstant::ZERO;
    let mut fleet = ShardedOrchestrator::new(HOLDER, now, shards, batch);
    let mut scheduled: Vec<FlowRunId> = Vec::new();
    let mut running: Vec<(FlowRunId, usize)> = Vec::new();
    let mut held = [false; 4];
    let mut done = [false; 4];
    let mut open_handles: Vec<u64> = Vec::new();
    let mut next_handle = 0u64;

    for &op in ops {
        match op % 10 {
            0 => {
                let k = (op as usize / 10) % KEYS.len();
                scheduled.push(fleet.create_run("recon", KEYS[k], now));
            }
            1 => {
                if let Some(run) = scheduled.pop() {
                    fleet.start_run(run, now);
                    running.push((run, 0));
                }
            }
            2 => {
                if let Some((run, tasks)) = running.last_mut() {
                    fleet.start_task(*run, &format!("t{tasks}"), Some(KEYS[0]), now);
                    *tasks += 1;
                }
            }
            3 => {
                if let Some(&(run, tasks)) = running.last() {
                    if tasks > 0 {
                        fleet.finish_task(run, tasks - 1, TaskState::Completed, now, None);
                    }
                }
            }
            4 => {
                if let Some((run, _)) = running.pop() {
                    fleet.finish_run(run, FlowState::Completed, now);
                }
            }
            5 => {
                let k = (op as usize / 10) % KEYS.len();
                match fleet.claim(KEYS[k], now, LEASE) {
                    Claim::Run => held[k] = true,
                    Claim::Cached => assert!(done[k], "cached but never completed"),
                    Claim::Busy => assert!(held[k], "busy but no live lease"),
                }
            }
            6 => {
                let k = (op as usize / 10) % KEYS.len();
                if held[k] {
                    fleet.complete(KEYS[k]);
                    held[k] = false;
                    done[k] = true;
                }
            }
            7 => {
                let k = (op as usize / 10) % KEYS.len();
                if held[k] {
                    fleet.release(KEYS[k]);
                    held[k] = false;
                }
            }
            8 => {
                if let Some(&(run, _)) = running.last() {
                    let kind = match op / 10 {
                        0..=7 => ExternalKind::Transfer,
                        8..=15 => ExternalKind::Job,
                        _ => ExternalKind::Compute,
                    };
                    fleet.external_submitted(kind, next_handle, run, "{\"scan\":1}");
                    open_handles.push(next_handle);
                    next_handle += 1;
                } else if let Some(h) = open_handles.pop() {
                    fleet.external_resolved(ExternalKind::Transfer, h);
                    fleet.external_resolved(ExternalKind::Job, h);
                    fleet.external_resolved(ExternalKind::Compute, h);
                }
            }
            _ => now += SimDuration::from_secs(u64::from(op) + 1),
        }
    }
    (fleet, now)
}

proptest! {
    /// After a commit barrier on every shard, fleet recovery from the
    /// crash images reproduces each partition — engine, idempotency
    /// store, limits, open external ops — exactly, independent of the
    /// shard count and the group-commit batch size.
    #[test]
    fn fleet_recovery_reproduces_every_shard_exactly(
        ops in prop::collection::vec(any::<u8>(), 0..150),
        shards in 1usize..5,
        batch_sel in 0usize..3,
    ) {
        let batch = [1usize, 4, 32][batch_sel];
        let (mut fleet, now) = drive_fleet(&ops, shards, batch);
        fleet.commit_all();
        let images = fleet.crash_images();
        let (replayed, info) = ShardedOrchestrator::recover_fleet(&images, HOLDER, now, batch);
        prop_assert!(info.damaged_shards().is_empty(), "clean images reported damage");
        prop_assert_eq!(info.replayed(), fleet.journal_records());
        for (i, (a, b)) in replayed.shards().iter().zip(fleet.shards()).enumerate() {
            prop_assert_eq!(&a.engine, &b.engine, "shard {} engine diverged", i);
            prop_assert_eq!(&a.idempotency, &b.idempotency, "shard {} idempotency diverged", i);
            prop_assert_eq!(&a.limits, &b.limits, "shard {} limits diverged", i);
            prop_assert_eq!(a.open_external_count(), b.open_external_count());
        }
    }

    /// Without a final barrier, a crash image holds exactly the durable
    /// prefix of each shard's history (group-commit pending records are
    /// lost, which is *not* damage), and fleet recovery equals each
    /// shard recovered independently — replay order across partitions
    /// cannot matter because they share no state.
    #[test]
    fn crash_image_is_the_durable_prefix_and_shards_replay_independently(
        ops in prop::collection::vec(any::<u8>(), 0..150),
        shards in 1usize..5,
        batch_sel in 0usize..3,
    ) {
        let batch = [1usize, 4, 32][batch_sel];
        let (fleet, now) = drive_fleet(&ops, shards, batch);
        let images = fleet.crash_images();
        let (replayed, info) = ShardedOrchestrator::recover_fleet(&images, HOLDER, now, batch);
        prop_assert!(info.damaged_shards().is_empty(), "pending-tail loss is not damage");
        let durable: u64 = fleet
            .shards()
            .iter()
            .map(|s| s.journal().durable_record_count())
            .sum();
        prop_assert_eq!(info.replayed(), durable);
        // shard-at-a-time recovery (any order) gives the same fleet
        for (i, image) in images.iter().enumerate().rev() {
            let (alone, _) = DurableOrchestrator::recover_shard(
                image, HOLDER, now, i as u64, shards as u64, batch,
            );
            prop_assert_eq!(&alone.engine, &replayed.shards()[i].engine);
            prop_assert_eq!(&alone.idempotency, &replayed.shards()[i].idempotency);
        }
    }

    /// Wounding one partition — truncation at an arbitrary byte plus
    /// appended garbage — degrades only that shard: every other shard's
    /// recovered state is byte-for-byte what a fully clean recovery
    /// produces, and reported damage points at the victim alone.
    #[test]
    fn damage_on_one_shard_leaves_the_others_intact(
        ops in prop::collection::vec(any::<u8>(), 1..150),
        shards in 2usize..5,
        victim_sel in 0usize..8,
        cut_frac in 0.0f64..1.0,
        junk in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let (mut fleet, now) = drive_fleet(&ops, shards, 4);
        fleet.commit_all();
        let images = fleet.crash_images();
        let victim = victim_sel % shards;

        let mut wounded_images = images.clone();
        let cut = ((wounded_images[victim].len() as f64) * cut_frac) as usize;
        wounded_images[victim].truncate(cut);
        wounded_images[victim].extend_from_slice(&junk);

        let (clean, _) = ShardedOrchestrator::recover_fleet(&images, HOLDER, now, 4);
        let (wounded, info) = ShardedOrchestrator::recover_fleet(&wounded_images, HOLDER, now, 4);
        prop_assert!(
            info.damaged_shards().iter().all(|&s| s == victim),
            "damage reported off the victim: {:?}",
            info.damaged_shards()
        );
        for i in 0..shards {
            if i == victim {
                continue;
            }
            prop_assert_eq!(&wounded.shards()[i].engine, &clean.shards()[i].engine);
            prop_assert_eq!(&wounded.shards()[i].idempotency, &clean.shards()[i].idempotency);
        }
        // the victim degraded to a prefix of its own history
        let victim_full = clean.shards()[victim].journal().record_count();
        prop_assert!(wounded.shards()[victim].journal().record_count() <= victim_full);
    }
}

#[test]
fn post_recovery_steal_race_grants_a_key_exactly_once() {
    // a dead incarnation crashes holding the key's lease (the claim is
    // durable because the submit barrier flushed it)
    let t0 = SimInstant::ZERO;
    let shards = 4;
    let key = "scan_0042/nersc_recon_flow/copy@nersc";
    let mut fleet = ShardedOrchestrator::new("orch-dead", t0, shards, 8);
    assert_eq!(fleet.claim(key, t0, LEASE), Claim::Run);
    let run = fleet.create_run("recon", key, t0);
    fleet.external_submitted(ExternalKind::Transfer, 7, run, "{\"scan\":42}");
    let images = fleet.crash_images();

    // recovery under a new incarnation force-expires the dead holder's
    // lease on its shard...
    let now = t0 + SimDuration::from_secs(60);
    let (recovered, info) = ShardedOrchestrator::recover_fleet(&images, "orch-new", now, 8);
    assert!(
        info.expired_leases() >= 1,
        "dead-incarnation lease was not force-expired"
    );

    // ...and a herd of racing claimants on the live event loops must be
    // granted the key exactly once: the owning shard's mailbox
    // serialises the steal, everyone behind the winner sees Busy
    let grants = Arc::new(AtomicUsize::new(0));
    let pool = ShardPool::spawn(recovered.shards().to_vec());
    let s = shard_of_key(key, shards);
    for _ in 0..16 {
        let grants = Arc::clone(&grants);
        let key = key.to_string();
        pool.submit(s, move |orch| {
            if orch.claim(&key, now, LEASE) == Claim::Run {
                grants.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    pool.join();
    assert_eq!(
        grants.load(Ordering::SeqCst),
        1,
        "lease steal after multi-shard recovery granted the key more than once"
    );
}

#[test]
fn replicated_completion_blocks_reexecution_after_home_shard_damage() {
    // complete a key, then destroy the home shard's journal tail — the
    // very record proving completion. The ring replica on the next
    // shard must still short-circuit the claim to Cached; anything else
    // re-executes a facility side effect.
    let t0 = SimInstant::ZERO;
    let shards = 4;
    let key = "scan_0042/alcf_recon_flow/exec@alcf";
    let mut fleet = ShardedOrchestrator::new("orch-dead", t0, shards, 1);
    assert_eq!(fleet.claim(key, t0, LEASE), Claim::Run);
    fleet.complete(key);
    let mut images = fleet.crash_images();

    let home = fleet.shard_of(key);
    let torn = images[home].len() - 3; // mid-frame: the completion record is lost
    images[home].truncate(torn);

    let now = t0 + SimDuration::from_secs(60);
    let (mut recovered, info) = ShardedOrchestrator::recover_fleet(&images, "orch-new", now, 1);
    assert_eq!(info.damaged_shards(), vec![home]);
    assert!(
        !recovered.shards()[home].idempotency.is_completed(key),
        "test is vacuous: home shard still remembers the completion"
    );
    assert_eq!(
        recovered.claim(key, now, LEASE),
        Claim::Cached,
        "duplicate grant: ring replica ignored after home-shard damage"
    );
}
