//! Bandwidth monitoring (the paper's Grafana dashboard substitute).
//!
//! "We have demonstrated the monitoring of Globus data transfer bandwidth
//! with Grafana" — this module records per-transfer throughput samples and
//! exposes the aggregates a dashboard would plot.

use als_simcore::{ByteSize, DataRate, OnlineStats, SimDuration, SimInstant};
use als_telemetry::{Counter, Histogram, Registry};

/// One completed-transfer observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSample {
    pub at: SimInstant,
    pub bytes: ByteSize,
    pub duration: SimDuration,
}

impl TransferSample {
    pub fn throughput(&self) -> DataRate {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            DataRate::ZERO
        } else {
            DataRate::from_bytes_per_sec(self.bytes.as_bytes() as f64 / secs)
        }
    }
}

/// Rolling bandwidth statistics.
#[derive(Debug, Default)]
pub struct BandwidthMonitor {
    samples: Vec<TransferSample>,
    gbps_stats: OnlineStats,
    total_bytes: ByteSize,
    metrics: Option<MonitorMetrics>,
}

/// Interned registry handles mirroring the monitor into the fleet
/// registry, so transfer throughput shows up on the same snapshot as
/// every other subsystem.
#[derive(Debug, Clone)]
struct MonitorMetrics {
    transfers: Counter,
    bytes: Counter,
    duration_us: Histogram,
    /// Per-transfer throughput in millibits-per-second × 10⁶ (mGbps),
    /// integer-quantized for the log-bucket histogram.
    gbps_milli: Histogram,
}

impl BandwidthMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach registry handles (`globus_transfers_total`,
    /// `globus_transfer_bytes_total`, `globus_transfer_duration_us`,
    /// `globus_transfer_gbps_milli`). Pre-attach samples are folded in,
    /// so late attachment loses nothing.
    pub fn instrument(&mut self, registry: &Registry) {
        let m = MonitorMetrics {
            transfers: registry.counter("globus_transfers_total", &[]),
            bytes: registry.counter("globus_transfer_bytes_total", &[]),
            duration_us: registry.histogram("globus_transfer_duration_us", &[]),
            gbps_milli: registry.histogram("globus_transfer_gbps_milli", &[]),
        };
        for s in &self.samples {
            Self::export(&m, s);
        }
        self.metrics = Some(m);
    }

    fn export(m: &MonitorMetrics, s: &TransferSample) {
        m.transfers.inc();
        m.bytes.add(s.bytes.as_bytes());
        m.duration_us.record(s.duration.as_micros());
        m.gbps_milli
            .record((s.throughput().as_gbit_per_sec() * 1e3).round().max(0.0) as u64);
    }

    /// Record a completed transfer.
    pub fn record(&mut self, at: SimInstant, bytes: ByteSize, duration: SimDuration) {
        let s = TransferSample {
            at,
            bytes,
            duration,
        };
        self.gbps_stats.push(s.throughput().as_gbit_per_sec());
        self.total_bytes += bytes;
        if let Some(m) = &self.metrics {
            Self::export(m, &s);
        }
        self.samples.push(s);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn total_bytes(&self) -> ByteSize {
        self.total_bytes
    }

    /// Mean per-transfer throughput.
    pub fn mean_gbps(&self) -> f64 {
        self.gbps_stats.mean()
    }

    pub fn peak_gbps(&self) -> f64 {
        self.gbps_stats.max()
    }

    /// Samples within a window, for plotting time series.
    pub fn window(&self, from: SimInstant, to: SimInstant) -> Vec<&TransferSample> {
        self.samples
            .iter()
            .filter(|s| s.at >= from && s.at <= to)
            .collect()
    }

    /// Aggregate bytes moved per `bucket` of simulated time, as a
    /// dashboard bar series: `(bucket start, bytes)`.
    pub fn histogram(&self, bucket: SimDuration) -> Vec<(SimInstant, ByteSize)> {
        if self.samples.is_empty() || bucket.is_zero() {
            return Vec::new();
        }
        let end = self.samples.iter().map(|s| s.at).max().expect("non-empty");
        let n_buckets = (end.as_micros() / bucket.as_micros() + 1) as usize;
        let mut out: Vec<(SimInstant, ByteSize)> = (0..n_buckets)
            .map(|i| {
                (
                    SimInstant::from_micros(i as u64 * bucket.as_micros()),
                    ByteSize::ZERO,
                )
            })
            .collect();
        for s in &self.samples {
            let idx = (s.at.as_micros() / bucket.as_micros()) as usize;
            out[idx].1 += s.bytes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let s = TransferSample {
            at: SimInstant::ZERO,
            bytes: ByteSize::from_gib(10),
            duration: SimDuration::from_secs(10),
        };
        // 1 GiB/s = 8.59 Gbps
        assert!((s.throughput().as_gbit_per_sec() - 8.589934592).abs() < 1e-6);
    }

    #[test]
    fn aggregates_accumulate() {
        let mut m = BandwidthMonitor::new();
        let t0 = SimInstant::ZERO;
        m.record(t0, ByteSize::from_gib(10), SimDuration::from_secs(10));
        m.record(
            t0 + SimDuration::from_mins(5),
            ByteSize::from_gib(20),
            SimDuration::from_secs(40),
        );
        assert_eq!(m.count(), 2);
        assert_eq!(m.total_bytes(), ByteSize::from_gib(30));
        assert!(m.peak_gbps() > m.mean_gbps() - 1e-12);
    }

    #[test]
    fn zero_duration_yields_zero_rate() {
        let s = TransferSample {
            at: SimInstant::ZERO,
            bytes: ByteSize::from_gib(1),
            duration: SimDuration::ZERO,
        };
        assert_eq!(s.throughput(), DataRate::ZERO);
    }

    #[test]
    fn window_filters_by_time() {
        let mut m = BandwidthMonitor::new();
        for i in 0..10u64 {
            m.record(
                SimInstant::ZERO + SimDuration::from_mins(i),
                ByteSize::from_gib(1),
                SimDuration::from_secs(5),
            );
        }
        let w = m.window(
            SimInstant::ZERO + SimDuration::from_mins(3),
            SimInstant::ZERO + SimDuration::from_mins(6),
        );
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn histogram_bins_bytes() {
        let mut m = BandwidthMonitor::new();
        m.record(
            SimInstant::ZERO,
            ByteSize::from_gib(1),
            SimDuration::from_secs(1),
        );
        m.record(
            SimInstant::ZERO + SimDuration::from_secs(30),
            ByteSize::from_gib(2),
            SimDuration::from_secs(1),
        );
        m.record(
            SimInstant::ZERO + SimDuration::from_secs(90),
            ByteSize::from_gib(4),
            SimDuration::from_secs(1),
        );
        let h = m.histogram(SimDuration::from_secs(60));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, ByteSize::from_gib(3));
        assert_eq!(h[1].1, ByteSize::from_gib(4));
    }

    #[test]
    fn monitor_folds_into_the_registry_with_backfill() {
        let registry = Registry::new();
        let mut m = BandwidthMonitor::new();
        // pre-attach sample: 10 GiB in 10 s ≈ 8.59 Gbps
        m.record(
            SimInstant::ZERO,
            ByteSize::from_gib(10),
            SimDuration::from_secs(10),
        );
        m.instrument(&registry);
        m.record(
            SimInstant::ZERO + SimDuration::from_mins(1),
            ByteSize::from_gib(20),
            SimDuration::from_secs(40),
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["globus_transfers_total"], 2);
        assert_eq!(
            snap.counters["globus_transfer_bytes_total"],
            ByteSize::from_gib(30).as_bytes()
        );
        let gbps = &snap.histograms["globus_transfer_gbps_milli"];
        assert_eq!(gbps.count, 2);
        assert_eq!(gbps.max, Some(8590), "8.59 Gbps quantized to milli-units");
        assert_eq!(
            snap.histograms["globus_transfer_duration_us"].max,
            Some(40_000_000)
        );
    }

    #[test]
    fn empty_monitor_is_calm() {
        let m = BandwidthMonitor::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean_gbps(), 0.0);
        assert!(m.histogram(SimDuration::from_secs(60)).is_empty());
    }
}
