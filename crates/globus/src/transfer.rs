//! Managed transfer tasks (Globus Transfer substitute).
//!
//! Tasks move bytes between registered endpoints over the [`als_netsim`]
//! topology. The service enforces a bounded number of concurrently active
//! tasks (extra submissions queue), optionally verifies checksums after
//! the bytes land, and retries failed verification. Endpoints can be
//! mis-permissioned, reproducing the production incident in §5.3: with
//! `fail_fast` off, a permission-denied task *hangs* in an active slot
//! until a long timeout, so a burst of bad tasks saturates the queue;
//! with `fail_fast` on it fails immediately and the queue keeps draining.

use als_netsim::{FlowId, SiteId, Topology};
use als_scidata::checksum::{crc32, Crc32};
use als_simcore::{ByteSize, DataRate, SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Identifier of a registered endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

/// Identifier of a transfer task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// Why a task failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailReason {
    /// Destination (or source) endpoint denied access — the §5.3 incident.
    PermissionDenied,
    /// Post-transfer checksum verification failed after all retries.
    ChecksumMismatch,
    /// Task gave up after hanging for the full hang timeout.
    HangTimeout,
}

/// Task lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Waiting for an active slot.
    Queued,
    /// Bytes in flight.
    Active,
    /// Stuck on a faulted endpoint, holding an active slot.
    Hung,
    Succeeded,
    Failed(FailReason),
    Cancelled,
}

impl TaskStatus {
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TaskStatus::Succeeded | TaskStatus::Failed(_) | TaskStatus::Cancelled
        )
    }
}

/// Per-task options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferOptions {
    /// Verify checksums after the bytes arrive (the paper enables this).
    /// On mismatch the service re-transfers exactly once automatically —
    /// a second mismatch is a real integrity incident, surfaced as
    /// [`FailReason::ChecksumMismatch`] for the orchestrator to handle.
    pub verify_checksum: bool,
    /// Fail immediately on permission errors instead of hanging — the
    /// remediation the paper adopted after the incident.
    pub fail_fast: bool,
}

impl Default for TransferOptions {
    fn default() -> Self {
        TransferOptions {
            verify_checksum: true,
            fail_fast: true,
        }
    }
}

/// Automatic re-transfers on checksum mismatch: exactly one.
const MAX_RETRANSFERS: u32 = 1;

/// Events surfaced to the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferEvent {
    Started {
        task: TaskId,
        at: SimInstant,
    },
    Succeeded {
        task: TaskId,
        at: SimInstant,
    },
    Failed {
        task: TaskId,
        at: SimInstant,
        reason: FailReason,
    },
    Retrying {
        task: TaskId,
        at: SimInstant,
        attempt: u32,
    },
}

#[derive(Debug, Clone)]
struct Endpoint {
    site: SiteId,
    /// When false, tasks touching this endpoint hit PermissionDenied.
    permitted: bool,
    /// Fault injection: the next `corrupt_count` transfers through this
    /// endpoint deliver corrupted data (checksum mismatch).
    corrupt_count: u32,
}

#[derive(Debug)]
struct Task {
    src: EndpointId,
    dst: EndpointId,
    size: ByteSize,
    opts: TransferOptions,
    status: TaskStatus,
    submitted: SimInstant,
    finished: Option<SimInstant>,
    /// Re-transfers performed after a checksum mismatch.
    attempt: u32,
    flow: Option<FlowId>,
    /// When a hung task gives up.
    hang_deadline: Option<SimInstant>,
    /// When checksum verification completes (if in that phase).
    verify_done: Option<SimInstant>,
    /// CRC-32 of the source payload, computed at submission — the
    /// reference digest the destination must reproduce.
    src_digest: u32,
    /// Did the last delivery pass through a corrupting endpoint?
    delivered_corrupt: bool,
    /// Caller-supplied label (the real Globus API's `label` field). A
    /// restarted orchestrator lists labelled tasks to adopt submissions
    /// its torn journal never heard about.
    label: Option<String>,
}

/// Deterministic stand-in for the file's bytes: the simulation doesn't
/// move real payloads, so checksums are computed over this sample, which
/// is unique per (task, size) and reproducible on both ends.
fn payload_sample(id: TaskId, size: ByteSize) -> [u8; 16] {
    let mut s = [0u8; 16];
    s[..8].copy_from_slice(&id.0.to_le_bytes());
    s[8..].copy_from_slice(&size.as_bytes().to_le_bytes());
    s
}

/// The digest the destination endpoint reads back after a delivery —
/// corruption flips a bit, exactly what CRC-32 exists to catch.
fn delivered_digest(id: TaskId, size: ByteSize, corrupt: bool) -> u32 {
    let mut sample = payload_sample(id, size);
    if corrupt {
        sample[0] ^= 0x01;
    }
    let mut c = Crc32::new();
    c.update(&sample);
    c.finalize()
}

/// The transfer service.
pub struct TransferService {
    topo: Topology,
    endpoints: BTreeMap<EndpointId, Endpoint>,
    tasks: BTreeMap<TaskId, Task>,
    /// Non-terminal, non-queued tasks — the only ones that can produce
    /// events. Keeps per-event work independent of total task history.
    live: std::collections::BTreeSet<TaskId>,
    queue: VecDeque<TaskId>,
    active: usize,
    max_concurrent: usize,
    hang_timeout: SimDuration,
    next_ep: u32,
    next_task: u64,
    /// Checksum throughput on each end (MD5-class over parallel streams).
    checksum_rate: DataRate,
}

impl TransferService {
    /// Create over a network topology. `max_concurrent` mirrors Globus's
    /// per-user concurrent-task limit.
    pub fn new(topo: Topology, max_concurrent: usize) -> Self {
        assert!(max_concurrent > 0);
        TransferService {
            topo,
            endpoints: BTreeMap::new(),
            tasks: BTreeMap::new(),
            live: std::collections::BTreeSet::new(),
            queue: VecDeque::new(),
            active: 0,
            max_concurrent,
            hang_timeout: SimDuration::from_mins(30),
            next_ep: 0,
            next_task: 0,
            checksum_rate: DataRate::from_gbit_per_sec(16.0),
        }
    }

    /// Override the hang timeout (tests use shorter values).
    pub fn set_hang_timeout(&mut self, d: SimDuration) {
        self.hang_timeout = d;
    }

    /// Register an endpoint at a site.
    pub fn register_endpoint(&mut self, site: SiteId) -> EndpointId {
        let id = EndpointId(self.next_ep);
        self.next_ep += 1;
        self.endpoints.insert(
            id,
            Endpoint {
                site,
                permitted: true,
                corrupt_count: 0,
            },
        );
        id
    }

    /// Fault injection: grant/revoke permission on an endpoint.
    pub fn set_permitted(&mut self, ep: EndpointId, permitted: bool) {
        self.endpoints.get_mut(&ep).expect("endpoint").permitted = permitted;
    }

    /// Fault injection: corrupt the next `n` transfers through `ep`.
    pub fn corrupt_next(&mut self, ep: EndpointId, n: u32) {
        self.endpoints.get_mut(&ep).expect("endpoint").corrupt_count = n;
    }

    /// Fault injection: degrade (or restore) every ESnet WAN segment to
    /// `factor` × nominal capacity — a link brownout. In-flight flows are
    /// settled at the old rate up to `now`, then continue degraded.
    pub fn set_wan_capacity_factor(&mut self, factor: f64, now: SimInstant) {
        for link in self.topo.wan_link_ids() {
            self.topo.net.set_capacity_factor(link, factor, now);
        }
    }

    /// The site an endpoint is registered at.
    pub fn endpoint_site(&self, ep: EndpointId) -> Option<SiteId> {
        self.endpoints.get(&ep).map(|e| e.site)
    }

    /// Estimated seconds to move `size` bytes from `src` to `dst` under
    /// the *current* link conditions: route latency + size over the
    /// bottleneck link's degraded capacity + the checksum read-back. The
    /// estimate ignores competing flows (a router cost input, not an
    /// oracle), so it stays cheap and side-effect free.
    pub fn estimate_transfer_seconds(&self, src: SiteId, dst: SiteId, size: ByteSize) -> f64 {
        if src == dst {
            return 0.0;
        }
        let Some(route) = self.topo.route(src, dst) else {
            return f64::INFINITY;
        };
        let mut bottleneck_bps = f64::INFINITY;
        for link in &route.links {
            let cap = self.topo.net.link(*link).capacity.as_gbit_per_sec()
                * 1e9
                * self.topo.net.capacity_factor(*link);
            bottleneck_bps = bottleneck_bps.min(cap);
        }
        if bottleneck_bps <= 0.0 {
            return f64::INFINITY;
        }
        let latency = self.topo.net.route_latency(&route).as_secs_f64();
        let wire = size.as_bytes() as f64 * 8.0 / bottleneck_bps;
        let verify = self
            .checksum_rate
            .transfer_time(size)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        latency + wire + verify
    }

    pub fn status(&self, task: TaskId) -> Option<TaskStatus> {
        self.tasks.get(&task).map(|t| t.status)
    }

    /// Wall time from submission to terminal state.
    pub fn task_duration(&self, task: TaskId) -> Option<SimDuration> {
        let t = self.tasks.get(&task)?;
        Some(t.finished?.duration_since(t.submitted))
    }

    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// All non-terminal tasks (queued, active, hung, or verifying) — the
    /// query a restarted orchestrator uses to re-attach in-flight work.
    pub fn live_tasks(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.queue.iter().copied().collect();
        ids.extend(self.live.iter().copied());
        ids.sort_unstable();
        ids
    }

    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Submit a transfer task.
    pub fn submit(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        size: ByteSize,
        opts: TransferOptions,
        now: SimInstant,
    ) -> TaskId {
        self.submit_labeled(src, dst, size, opts, now, None)
    }

    /// [`TransferService::submit`] with a caller-defined label attached
    /// to the task (mirroring the Globus API's `label` field). Labels
    /// survive at the facility across orchestrator crashes, so recovery
    /// can find submissions whose journal record was lost.
    pub fn submit_labeled(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        size: ByteSize,
        opts: TransferOptions,
        now: SimInstant,
        label: Option<String>,
    ) -> TaskId {
        assert!(self.endpoints.contains_key(&src), "unknown src endpoint");
        assert!(self.endpoints.contains_key(&dst), "unknown dst endpoint");
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(
            id,
            Task {
                src,
                dst,
                size,
                opts,
                status: TaskStatus::Queued,
                submitted: now,
                finished: None,
                attempt: 0,
                flow: None,
                hang_deadline: None,
                verify_done: None,
                src_digest: crc32(&payload_sample(id, size)),
                delivered_corrupt: false,
                label,
            },
        );
        self.queue.push_back(id);
        id
    }

    /// The label a task was submitted with, if any.
    pub fn task_label(&self, id: TaskId) -> Option<&str> {
        self.tasks.get(&id)?.label.as_deref()
    }

    /// Every labelled task in any state (the recovery sweep: compare
    /// against the journal's known handles to find orphans to adopt).
    pub fn tasks_labeled(&self) -> Vec<(TaskId, &str, TaskStatus)> {
        self.tasks
            .iter()
            .filter_map(|(&id, t)| t.label.as_deref().map(|l| (id, l, t.status)))
            .collect()
    }

    /// Cancel a task in any non-terminal state.
    pub fn cancel(&mut self, id: TaskId, now: SimInstant) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        match task.status {
            TaskStatus::Queued => {
                task.status = TaskStatus::Cancelled;
                task.finished = Some(now);
                self.queue.retain(|&q| q != id);
            }
            TaskStatus::Active | TaskStatus::Hung => {
                if let Some(flow) = task.flow.take() {
                    self.topo.net.abort(flow, now);
                }
                task.status = TaskStatus::Cancelled;
                task.finished = Some(now);
                self.active -= 1;
                self.live.remove(&id);
            }
            _ => {}
        }
    }

    /// Time of the next internal event (flow completion, verify finish,
    /// or hang expiry). The DES driver schedules a poll here.
    pub fn next_event_time(&mut self, now: SimInstant) -> Option<SimInstant> {
        let mut best: Option<SimInstant> = None;
        let mut consider = |t: SimInstant| {
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        if !self.queue.is_empty() && self.active < self.max_concurrent {
            consider(now);
        }
        if let Some((_, t)) = self.topo.net.next_completion(now) {
            consider(t);
        }
        for id in &self.live {
            let task = &self.tasks[id];
            if let Some(d) = task.hang_deadline {
                consider(d);
            }
            if let Some(v) = task.verify_done {
                consider(v);
            }
        }
        best
    }

    /// Advance to `now`, producing events in time order.
    pub fn advance_to(&mut self, now: SimInstant) -> Vec<TransferEvent> {
        let mut events = Vec::new();
        loop {
            // activate queued tasks while slots are free
            while self.active < self.max_concurrent {
                let Some(id) = self.queue.pop_front() else {
                    break;
                };
                events.extend(self.activate(id, self.activation_time(now)));
            }
            // find the earliest pending internal event at or before `now`
            let mut next: Option<(SimInstant, InternalEvent)> = None;
            let mut consider = |t: SimInstant, e: InternalEvent| {
                if next.is_none_or(|(bt, _)| t < bt) {
                    next = Some((t, e));
                }
            };
            if let Some((flow, t)) = self.topo.net.next_completion(now) {
                if t <= now {
                    if let Some(&id) = self
                        .live
                        .iter()
                        .find(|id| self.tasks[id].flow == Some(flow))
                    {
                        consider(t, InternalEvent::FlowDone(id, flow));
                    }
                }
            }
            for &id in &self.live {
                let task = &self.tasks[&id];
                if let Some(d) = task.hang_deadline {
                    if d <= now {
                        consider(d, InternalEvent::HangExpired(id));
                    }
                }
                if let Some(v) = task.verify_done {
                    if v <= now {
                        consider(v, InternalEvent::VerifyDone(id));
                    }
                }
            }
            let Some((t, ev)) = next else { break };
            match ev {
                InternalEvent::FlowDone(id, flow) => {
                    self.topo.net.complete(flow, t);
                    let corrupted = {
                        let task = self.tasks.get(&id).expect("task");
                        let dst = self.endpoints.get_mut(&task.dst).expect("ep");
                        if dst.corrupt_count > 0 {
                            dst.corrupt_count -= 1;
                            true
                        } else {
                            false
                        }
                    };
                    let task = self.tasks.get_mut(&id).expect("task");
                    task.flow = None;
                    if task.opts.verify_checksum {
                        // checksum both ends: payload read at checksum_rate
                        let verify = self
                            .checksum_rate
                            .transfer_time(task.size)
                            .expect("nonzero checksum rate");
                        task.verify_done = Some(t + verify);
                        // the verify step reads the delivered bytes back
                        task.delivered_corrupt = corrupted;
                    } else {
                        task.status = TaskStatus::Succeeded;
                        task.finished = Some(t);
                        self.active -= 1;
                        self.live.remove(&id);
                        events.push(TransferEvent::Succeeded { task: id, at: t });
                    }
                }
                InternalEvent::VerifyDone(id) => {
                    let task = self.tasks.get_mut(&id).expect("task");
                    task.verify_done = None;
                    let dst_digest = delivered_digest(id, task.size, task.delivered_corrupt);
                    task.delivered_corrupt = false;
                    if dst_digest != task.src_digest {
                        if task.attempt < MAX_RETRANSFERS {
                            task.attempt += 1;
                            let attempt = task.attempt;
                            let (src_site, dst_site, size) = self.task_route_info(id);
                            let task = self.tasks.get_mut(&id).expect("task");
                            let route = self
                                .topo
                                .route(src_site, dst_site)
                                .expect("distinct sites have routes");
                            task.flow = Some(self.topo.net.start_flow(route, size, t));
                            events.push(TransferEvent::Retrying {
                                task: id,
                                at: t,
                                attempt,
                            });
                        } else {
                            task.status = TaskStatus::Failed(FailReason::ChecksumMismatch);
                            task.finished = Some(t);
                            self.active -= 1;
                            self.live.remove(&id);
                            events.push(TransferEvent::Failed {
                                task: id,
                                at: t,
                                reason: FailReason::ChecksumMismatch,
                            });
                        }
                    } else {
                        task.status = TaskStatus::Succeeded;
                        task.finished = Some(t);
                        self.active -= 1;
                        self.live.remove(&id);
                        events.push(TransferEvent::Succeeded { task: id, at: t });
                    }
                }
                InternalEvent::HangExpired(id) => {
                    let task = self.tasks.get_mut(&id).expect("task");
                    task.hang_deadline = None;
                    task.status = TaskStatus::Failed(FailReason::HangTimeout);
                    task.finished = Some(t);
                    self.active -= 1;
                    self.live.remove(&id);
                    events.push(TransferEvent::Failed {
                        task: id,
                        at: t,
                        reason: FailReason::HangTimeout,
                    });
                }
            }
        }
        events
    }

    fn activation_time(&self, now: SimInstant) -> SimInstant {
        now
    }

    fn task_route_info(&self, id: TaskId) -> (SiteId, SiteId, ByteSize) {
        let task = self.tasks.get(&id).expect("task");
        (
            self.endpoints[&task.src].site,
            self.endpoints[&task.dst].site,
            task.size,
        )
    }

    fn activate(&mut self, id: TaskId, now: SimInstant) -> Vec<TransferEvent> {
        let mut events = Vec::new();
        let (permitted, fail_fast) = {
            let task = self.tasks.get(&id).expect("task");
            let src_ok = self.endpoints[&task.src].permitted;
            let dst_ok = self.endpoints[&task.dst].permitted;
            (src_ok && dst_ok, task.opts.fail_fast)
        };
        if !permitted {
            let task = self.tasks.get_mut(&id).expect("task");
            if fail_fast {
                task.status = TaskStatus::Failed(FailReason::PermissionDenied);
                task.finished = Some(now);
                events.push(TransferEvent::Failed {
                    task: id,
                    at: now,
                    reason: FailReason::PermissionDenied,
                });
            } else {
                // legacy behaviour: the task occupies a slot and hangs
                task.status = TaskStatus::Hung;
                task.hang_deadline = Some(now + self.hang_timeout);
                self.active += 1;
                self.live.insert(id);
                events.push(TransferEvent::Started { task: id, at: now });
            }
            return events;
        }
        let (src_site, dst_site, size) = self.task_route_info(id);
        if src_site == dst_site {
            // same-site "transfer" is a filesystem copy; model as instant
            // success at the service level (tiers charge their own time)
            let task = self.tasks.get_mut(&id).expect("task");
            task.status = TaskStatus::Succeeded;
            task.finished = Some(now);
            events.push(TransferEvent::Started { task: id, at: now });
            events.push(TransferEvent::Succeeded { task: id, at: now });
            return events;
        }
        let route = self.topo.route(src_site, dst_site).expect("route exists");
        let flow = self.topo.net.start_flow(route, size, now);
        let task = self.tasks.get_mut(&id).expect("task");
        task.status = TaskStatus::Active;
        task.flow = Some(flow);
        self.active += 1;
        self.live.insert(id);
        events.push(TransferEvent::Started { task: id, at: now });
        events
    }
}

#[derive(Debug, Clone, Copy)]
enum InternalEvent {
    FlowDone(TaskId, FlowId),
    VerifyDone(TaskId),
    HangExpired(TaskId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_netsim::esnet_topology;

    fn service(max_concurrent: usize) -> (TransferService, EndpointId, EndpointId, EndpointId) {
        let mut svc = TransferService::new(esnet_topology(), max_concurrent);
        let als = svc.register_endpoint(SiteId::Als);
        let nersc = svc.register_endpoint(SiteId::Nersc);
        let alcf = svc.register_endpoint(SiteId::Alcf);
        (svc, als, nersc, alcf)
    }

    fn drain(svc: &mut TransferService, mut now: SimInstant) -> (Vec<TransferEvent>, SimInstant) {
        let mut all = Vec::new();
        while let Some(t) = svc.next_event_time(now) {
            now = now.max(t);
            let evs = svc.advance_to(now);
            if evs.is_empty() && svc.next_event_time(now).is_none_or(|n| n <= now) {
                break;
            }
            all.extend(evs);
        }
        (all, now)
    }

    #[test]
    fn simple_transfer_succeeds_in_expected_time() {
        let (mut svc, als, nersc, _) = service(4);
        let t0 = SimInstant::ZERO;
        let id = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(25),
            TransferOptions::default(),
            t0,
        );
        let (events, _) = drain(&mut svc, t0);
        assert!(events
            .iter()
            .any(|e| matches!(e, TransferEvent::Succeeded { task, .. } if *task == id)));
        let d = svc.task_duration(id).unwrap().as_secs_f64();
        // 25 GiB at 10 Gbps ≈ 21.5 s + checksum (25 GiB at 16 Gbps ≈ 13.4 s)
        assert!((30.0..45.0).contains(&d), "duration {d}");
    }

    #[test]
    fn checksum_off_is_faster() {
        let (mut svc, als, nersc, _) = service(4);
        let t0 = SimInstant::ZERO;
        let with = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(10),
            TransferOptions::default(),
            t0,
        );
        let (_, end) = drain(&mut svc, t0);
        let without = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(10),
            TransferOptions {
                verify_checksum: false,
                ..Default::default()
            },
            end,
        );
        drain(&mut svc, end);
        assert!(svc.task_duration(without).unwrap() < svc.task_duration(with).unwrap());
    }

    #[test]
    fn corruption_triggers_retry_then_success() {
        let (mut svc, als, nersc, _) = service(4);
        let t0 = SimInstant::ZERO;
        svc.corrupt_next(nersc, 1);
        let id = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(5),
            TransferOptions::default(),
            t0,
        );
        let (events, _) = drain(&mut svc, t0);
        assert!(events
            .iter()
            .any(|e| matches!(e, TransferEvent::Retrying { task, attempt: 1, .. } if *task == id)));
        assert_eq!(svc.status(id), Some(TaskStatus::Succeeded));
    }

    #[test]
    fn persistent_corruption_fails_after_retries() {
        let (mut svc, als, nersc, _) = service(4);
        let t0 = SimInstant::ZERO;
        svc.corrupt_next(nersc, 100);
        let id = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(1),
            TransferOptions::default(),
            t0,
        );
        let (events, _) = drain(&mut svc, t0);
        assert!(events.iter().any(|e| matches!(
            e,
            TransferEvent::Failed { task, reason: FailReason::ChecksumMismatch, .. } if *task == id
        )));
        // exactly one automatic re-transfer before giving up
        let retries = events
            .iter()
            .filter(|e| matches!(e, TransferEvent::Retrying { task, .. } if *task == id))
            .count();
        assert_eq!(retries, 1);
    }

    #[test]
    fn digests_are_per_task_and_detect_corruption() {
        // the reference digests of distinct tasks differ, and a corrupted
        // delivery never reproduces the source digest
        let a = crc32(&payload_sample(TaskId(1), ByteSize::from_gib(5)));
        let b = crc32(&payload_sample(TaskId(2), ByteSize::from_gib(5)));
        let c = crc32(&payload_sample(TaskId(1), ByteSize::from_gib(6)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(delivered_digest(TaskId(1), ByteSize::from_gib(5), false), a);
        assert_ne!(delivered_digest(TaskId(1), ByteSize::from_gib(5), true), a);
    }

    #[test]
    fn permission_denied_fails_fast_when_configured() {
        let (mut svc, als, nersc, _) = service(2);
        let t0 = SimInstant::ZERO;
        svc.set_permitted(nersc, false);
        let id = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(1),
            TransferOptions::default(),
            t0,
        );
        let events = svc.advance_to(t0);
        assert!(events.iter().any(|e| matches!(
            e,
            TransferEvent::Failed { task, reason: FailReason::PermissionDenied, .. } if *task == id
        )));
        // slot freed immediately
        assert_eq!(svc.active_count(), 0);
    }

    #[test]
    fn legacy_mode_hangs_and_saturates_the_queue() {
        // the §5.3 incident: a burst of prune tasks against a
        // mis-permissioned endpoint, with fail_fast disabled
        let (mut svc, als, nersc, _) = service(2);
        svc.set_hang_timeout(SimDuration::from_mins(30));
        svc.set_permitted(nersc, false);
        let legacy = TransferOptions {
            fail_fast: false,
            ..Default::default()
        };
        let t0 = SimInstant::ZERO;
        for _ in 0..4 {
            svc.submit(als, nersc, ByteSize::from_mib(10), legacy, t0);
        }
        // a legitimate transfer submitted right after
        svc.set_permitted(nersc, false);
        let good_dst = svc.register_endpoint(SiteId::Alcf);
        let good = svc.submit(
            als,
            good_dst,
            ByteSize::from_gib(1),
            TransferOptions::default(),
            t0,
        );
        svc.advance_to(t0);
        // both slots hung; the good task cannot start
        assert_eq!(svc.active_count(), 2);
        assert_eq!(svc.status(good), Some(TaskStatus::Queued));
        // after the hang timeout the queue finally drains
        let late = t0 + SimDuration::from_mins(31);
        svc.advance_to(late);
        drain(&mut svc, late);
        assert_eq!(svc.status(good), Some(TaskStatus::Succeeded));
        // the good task was stuck for at least the hang timeout
        assert!(svc.task_duration(good).unwrap() >= SimDuration::from_mins(30));
    }

    #[test]
    fn cancel_queued_and_active() {
        let (mut svc, als, nersc, alcf) = service(1);
        let t0 = SimInstant::ZERO;
        let a = svc.submit(
            als,
            nersc,
            ByteSize::from_gib(10),
            TransferOptions::default(),
            t0,
        );
        let b = svc.submit(
            als,
            alcf,
            ByteSize::from_gib(10),
            TransferOptions::default(),
            t0,
        );
        svc.advance_to(t0);
        assert_eq!(svc.status(a), Some(TaskStatus::Active));
        svc.cancel(b, t0);
        assert_eq!(svc.status(b), Some(TaskStatus::Cancelled));
        let t1 = t0 + SimDuration::from_secs(2);
        svc.cancel(a, t1);
        assert_eq!(svc.status(a), Some(TaskStatus::Cancelled));
        assert_eq!(svc.active_count(), 0);
    }

    #[test]
    fn same_site_copy_is_service_level_instant() {
        let (mut svc, als, _, _) = service(2);
        let als2 = svc.register_endpoint(SiteId::Als);
        let t0 = SimInstant::ZERO;
        let id = svc.submit(
            als,
            als2,
            ByteSize::from_gib(5),
            TransferOptions::default(),
            t0,
        );
        svc.advance_to(t0);
        assert_eq!(svc.status(id), Some(TaskStatus::Succeeded));
    }

    #[test]
    fn transfer_estimate_tracks_size_and_brownouts() {
        let (mut svc, _, _, _) = service(2);
        let base =
            svc.estimate_transfer_seconds(SiteId::Als, SiteId::Nersc, ByteSize::from_gib(25));
        // 25 GiB at 10 Gbps ≈ 21.5 s wire + ~13.4 s checksum
        assert!((25.0..50.0).contains(&base), "{base}");
        assert!(
            svc.estimate_transfer_seconds(SiteId::Als, SiteId::Olcf, ByteSize::from_gib(25)) > base
        );
        assert_eq!(
            svc.estimate_transfer_seconds(SiteId::Als, SiteId::Als, ByteSize::from_gib(25)),
            0.0
        );
        // a brownout deep enough to drop the 100G hop below the 10G NIC
        // inflates the estimate; restoring capacity restores it
        svc.set_wan_capacity_factor(0.05, SimInstant::ZERO);
        let browned =
            svc.estimate_transfer_seconds(SiteId::Als, SiteId::Nersc, ByteSize::from_gib(25));
        assert!(browned > base * 1.5, "{browned} vs {base}");
        svc.set_wan_capacity_factor(1.0, SimInstant::ZERO + SimDuration::from_secs(1));
        let restored =
            svc.estimate_transfer_seconds(SiteId::Als, SiteId::Nersc, ByteSize::from_gib(25));
        assert!((restored - base).abs() < 1e-6);
    }

    #[test]
    fn concurrency_limit_queues_excess() {
        let (mut svc, als, nersc, _) = service(3);
        let t0 = SimInstant::ZERO;
        for _ in 0..5 {
            svc.submit(
                als,
                nersc,
                ByteSize::from_gib(5),
                TransferOptions::default(),
                t0,
            );
        }
        svc.advance_to(t0);
        assert_eq!(svc.active_count(), 3);
        assert_eq!(svc.queued_count(), 2);
    }
}
