//! # als-globus
//!
//! Substitutes for the two Globus services the paper's data movement layer
//! is built on:
//!
//! * [`transfer`] — managed third-party transfer tasks between registered
//!   endpoints with checksum verification, automatic retry, a bounded
//!   concurrent-task queue, and the failure modes behind the paper's §5.3
//!   incident (permission-denied tasks that *hang* and saturate the queue
//!   unless the client is configured to fail early);
//! * [`compute`] — function-as-a-service execution on pilot jobs that hold
//!   warm HPC nodes, with a demand queue for fast node acquisition (the
//!   ALCF/Polaris pattern that avoids batch-queue waits);
//! * [`monitor`] — per-task bandwidth metrics (the Grafana dashboard the
//!   paper demonstrates).

pub mod compute;
pub mod monitor;
pub mod transfer;

pub use compute::{ComputeEndpoint, ComputeEvent, ComputeTaskId, ComputeTaskState};
pub use monitor::BandwidthMonitor;
pub use transfer::{
    EndpointId, FailReason, TaskId, TaskStatus, TransferEvent, TransferOptions, TransferService,
};
