//! Globus Compute substitute: serverless functions on pilot jobs.
//!
//! The paper's ALCF adapter "implements reconstruction using a serverless
//! approach via Globus Compute, which uses a pilot-job model to maintain
//! compute nodes that can be reused when they are available, as well as a
//! demand queue on Polaris to reduce queue wait times ... providing
//! immediate execution without the overhead of traditional batch
//! scheduling." The model: an endpoint owns a pool of *warm* nodes; an
//! invocation dispatches onto a warm node with only function-dispatch
//! latency, or first acquires a node through the demand queue (fast) /
//! batch queue (slow). Idle warm nodes are released after a timeout.

use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a submitted function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComputeTaskId(pub u64);

/// Invocation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeTaskState {
    /// Waiting for a node.
    Pending,
    Running,
    Completed,
    Cancelled,
    /// Lost to an endpoint outage (fault injection).
    Failed,
}

/// Events from time advancement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeEvent {
    Started { task: ComputeTaskId, at: SimInstant },
    Finished { task: ComputeTaskId, at: SimInstant },
    Failed { task: ComputeTaskId, at: SimInstant },
}

/// Node-acquisition policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcquisitionMode {
    /// Polaris demand queue: node in ~1 minute.
    DemandQueue,
    /// Traditional batch queue: node in tens of minutes.
    Batch,
}

impl AcquisitionMode {
    /// Time to obtain a fresh node.
    pub fn acquisition_latency(&self) -> SimDuration {
        match self {
            AcquisitionMode::DemandQueue => SimDuration::from_secs(60),
            AcquisitionMode::Batch => SimDuration::from_mins(25),
        }
    }
}

#[derive(Debug)]
struct Invocation {
    runtime: SimDuration,
    state: ComputeTaskState,
    submitted: SimInstant,
    started: Option<SimInstant>,
    finished: Option<SimInstant>,
    /// When this pending invocation's node acquisition completes.
    node_ready: Option<SimInstant>,
    /// Caller-supplied label; survives at the facility across
    /// orchestrator crashes so recovery can adopt orphaned invocations.
    label: Option<String>,
}

/// A Globus Compute endpoint bound to one HPC cluster.
#[derive(Debug)]
pub struct ComputeEndpoint {
    mode: AcquisitionMode,
    max_nodes: usize,
    /// Warm nodes currently held, with the time each became idle (`None`
    /// while busy).
    warm_nodes: Vec<Option<SimInstant>>,
    idle_timeout: SimDuration,
    dispatch_latency: SimDuration,
    tasks: BTreeMap<ComputeTaskId, Invocation>,
    /// Pending + running invocations (terminal ones produce no events).
    live: std::collections::BTreeSet<ComputeTaskId>,
    next_id: u64,
    /// Endpoint outage flag: while down, new invocations fail on arrival.
    down: bool,
}

impl ComputeEndpoint {
    /// New endpoint holding at most `max_nodes` pilot nodes.
    pub fn new(mode: AcquisitionMode, max_nodes: usize) -> Self {
        assert!(max_nodes > 0);
        ComputeEndpoint {
            mode,
            max_nodes,
            warm_nodes: Vec::new(),
            idle_timeout: SimDuration::from_mins(10),
            dispatch_latency: SimDuration::from_millis(800),
            tasks: BTreeMap::new(),
            live: std::collections::BTreeSet::new(),
            next_id: 0,
            down: false,
        }
    }

    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Take the endpoint down (or bring it back). Going down kills every
    /// live invocation — the pilot jobs die with the endpoint — and
    /// releases the warm-node pool. Returns the failure events.
    pub fn set_down(&mut self, down: bool, now: SimInstant) -> Vec<ComputeEvent> {
        self.down = down;
        let mut events = Vec::new();
        if down {
            let live: Vec<ComputeTaskId> = self.live.iter().copied().collect();
            for id in live {
                let t = self.tasks.get_mut(&id).expect("live task exists");
                t.state = ComputeTaskState::Failed;
                t.finished = Some(now);
                t.node_ready = None;
                self.live.remove(&id);
                events.push(ComputeEvent::Failed { task: id, at: now });
            }
            self.warm_nodes.clear();
        }
        events
    }

    pub fn mode(&self) -> AcquisitionMode {
        self.mode
    }

    /// Nodes currently held (busy + idle).
    pub fn warm_node_count(&self) -> usize {
        self.warm_nodes.len()
    }

    pub fn state(&self, id: ComputeTaskId) -> Option<ComputeTaskState> {
        self.tasks.get(&id).map(|t| t.state)
    }

    /// All pending or running invocations — the query a restarted
    /// orchestrator uses to re-attach in-flight work.
    pub fn live_tasks(&self) -> Vec<ComputeTaskId> {
        self.live.iter().copied().collect()
    }

    /// Queue wait (submit → start).
    pub fn queue_wait(&self, id: ComputeTaskId) -> Option<SimDuration> {
        let t = self.tasks.get(&id)?;
        Some(t.started?.duration_since(t.submitted))
    }

    /// Submit a function invocation with known service time. While the
    /// endpoint is down the task is accepted but immediately Failed —
    /// callers observe the failure via `state()`.
    pub fn invoke(&mut self, runtime: SimDuration, now: SimInstant) -> ComputeTaskId {
        self.invoke_labeled(runtime, now, None)
    }

    /// [`ComputeEndpoint::invoke`] with a caller-defined label attached.
    /// Labels survive at the facility across orchestrator crashes, so
    /// recovery can find invocations whose journal record was lost.
    pub fn invoke_labeled(
        &mut self,
        runtime: SimDuration,
        now: SimInstant,
        label: Option<String>,
    ) -> ComputeTaskId {
        let id = ComputeTaskId(self.next_id);
        self.next_id += 1;
        if self.down {
            self.tasks.insert(
                id,
                Invocation {
                    runtime,
                    state: ComputeTaskState::Failed,
                    submitted: now,
                    started: None,
                    finished: Some(now),
                    node_ready: None,
                    label,
                },
            );
            return id;
        }
        // choose path: reuse an idle warm node, or acquire a new one
        let node_ready = if self.take_idle_node() {
            Some(now + self.dispatch_latency)
        } else if self.warm_nodes.len() < self.max_nodes {
            self.warm_nodes.push(None); // reserve the incoming node as busy
            Some(now + self.mode.acquisition_latency() + self.dispatch_latency)
        } else {
            None // all nodes busy: wait for one to free
        };
        self.tasks.insert(
            id,
            Invocation {
                runtime,
                state: ComputeTaskState::Pending,
                submitted: now,
                started: None,
                finished: None,
                node_ready,
                label,
            },
        );
        self.live.insert(id);
        id
    }

    /// The label an invocation was submitted with, if any.
    pub fn task_label(&self, id: ComputeTaskId) -> Option<&str> {
        self.tasks.get(&id)?.label.as_deref()
    }

    /// Every labelled invocation in any state (the recovery sweep:
    /// compare against the journal's known handles to find orphans).
    pub fn tasks_labeled(&self) -> Vec<(ComputeTaskId, &str, ComputeTaskState)> {
        self.tasks
            .iter()
            .filter_map(|(&id, t)| t.label.as_deref().map(|l| (id, l, t.state)))
            .collect()
    }

    /// Cancel a pending or running invocation.
    pub fn cancel(&mut self, id: ComputeTaskId, now: SimInstant) {
        if let Some(t) = self.tasks.get_mut(&id) {
            match t.state {
                ComputeTaskState::Pending | ComputeTaskState::Running => {
                    let was_running = t.state == ComputeTaskState::Running;
                    t.state = ComputeTaskState::Cancelled;
                    t.finished = Some(now);
                    t.node_ready = None;
                    self.live.remove(&id);
                    if was_running {
                        self.release_node_to_idle(now);
                    }
                }
                _ => {}
            }
        }
    }

    fn take_idle_node(&mut self) -> bool {
        for slot in self.warm_nodes.iter_mut() {
            if slot.is_some() {
                *slot = None; // mark busy
                return true;
            }
        }
        false
    }

    fn release_node_to_idle(&mut self, now: SimInstant) {
        for slot in self.warm_nodes.iter_mut() {
            if slot.is_none() {
                *slot = Some(now);
                return;
            }
        }
    }

    /// Next internal event time: a pending start, a running finish, or an
    /// idle node expiring.
    pub fn next_event_time(&self) -> Option<SimInstant> {
        let mut best: Option<SimInstant> = None;
        let mut consider = |t: SimInstant| {
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        for id in &self.live {
            let t = &self.tasks[id];
            match t.state {
                ComputeTaskState::Pending => {
                    if let Some(r) = t.node_ready {
                        consider(r);
                    }
                }
                ComputeTaskState::Running => {
                    if let (Some(s), r) = (t.started, t.runtime) {
                        consider(s + r);
                    }
                }
                _ => {}
            }
        }
        for idle_since in self.warm_nodes.iter().flatten() {
            consider(*idle_since + self.idle_timeout);
        }
        best
    }

    /// Advance to `now`, producing start/finish events in order.
    pub fn advance_to(&mut self, now: SimInstant) -> Vec<ComputeEvent> {
        let mut events = Vec::new();
        loop {
            // earliest actionable event ≤ now
            #[derive(Clone, Copy)]
            enum Ev {
                Start(ComputeTaskId),
                Finish(ComputeTaskId),
                IdleExpire(usize),
            }
            let mut next: Option<(SimInstant, Ev)> = None;
            let consider = |t: SimInstant, e: Ev, next: &mut Option<(SimInstant, Ev)>| {
                if t <= now && next.is_none_or(|(bt, _)| t < bt) {
                    *next = Some((t, e));
                }
            };
            for &id in &self.live {
                let t = &self.tasks[&id];
                match t.state {
                    ComputeTaskState::Pending => {
                        if let Some(r) = t.node_ready {
                            consider(r, Ev::Start(id), &mut next);
                        }
                    }
                    ComputeTaskState::Running => {
                        let end = t.started.expect("running has start") + t.runtime;
                        consider(end, Ev::Finish(id), &mut next);
                    }
                    _ => {}
                }
            }
            for (i, slot) in self.warm_nodes.iter().enumerate() {
                if let Some(idle_since) = slot {
                    consider(
                        *idle_since + self.idle_timeout,
                        Ev::IdleExpire(i),
                        &mut next,
                    );
                }
            }
            let Some((t, ev)) = next else { break };
            match ev {
                Ev::Start(id) => {
                    let task = self.tasks.get_mut(&id).expect("task");
                    task.state = ComputeTaskState::Running;
                    task.started = Some(t);
                    task.node_ready = None;
                    events.push(ComputeEvent::Started { task: id, at: t });
                }
                Ev::Finish(id) => {
                    let task = self.tasks.get_mut(&id).expect("task");
                    task.state = ComputeTaskState::Completed;
                    task.finished = Some(t);
                    self.live.remove(&id);
                    events.push(ComputeEvent::Finished { task: id, at: t });
                    self.release_node_to_idle(t);
                    // hand the node to the oldest pending task without one
                    if let Some(&pid) = self
                        .live
                        .iter()
                        .filter(|id| {
                            let p = &self.tasks[id];
                            p.state == ComputeTaskState::Pending && p.node_ready.is_none()
                        })
                        .min_by_key(|id| self.tasks[id].submitted)
                    {
                        if self.take_idle_node() {
                            let p = self.tasks.get_mut(&pid).expect("pending task");
                            p.node_ready = Some(t + self.dispatch_latency);
                        }
                    }
                }
                Ev::IdleExpire(i) => {
                    // release the pilot node back to the facility
                    self.warm_nodes.remove(i);
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ep: &mut ComputeEndpoint, mut now: SimInstant) -> (Vec<ComputeEvent>, SimInstant) {
        let mut all = Vec::new();
        while let Some(t) = ep.next_event_time() {
            now = now.max(t);
            all.extend(ep.advance_to(now));
        }
        (all, now)
    }

    #[test]
    fn cold_start_pays_acquisition_latency() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 2);
        let t0 = SimInstant::ZERO;
        let id = ep.invoke(SimDuration::from_mins(15), t0);
        let (events, _) = drain(&mut ep, t0);
        assert!(matches!(events[0], ComputeEvent::Started { task, .. } if task == id));
        let wait = ep.queue_wait(id).unwrap().as_secs_f64();
        assert!((60.0..62.0).contains(&wait), "wait {wait}");
    }

    #[test]
    fn warm_node_reuse_is_nearly_instant() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 1);
        let t0 = SimInstant::ZERO;
        let a = ep.invoke(SimDuration::from_mins(10), t0);
        // step only until `a` completes so the warm node has not idled out
        let mut end = t0;
        while ep.state(a) != Some(ComputeTaskState::Completed) {
            end = ep.next_event_time().expect("pending events");
            ep.advance_to(end);
        }
        // second invocation while the node is still warm
        let b = ep.invoke(SimDuration::from_mins(10), end);
        ep.advance_to(end + SimDuration::from_secs(2));
        assert_eq!(ep.state(b), Some(ComputeTaskState::Running));
        let wait = ep.queue_wait(b).unwrap().as_secs_f64();
        assert!(wait < 2.0, "warm dispatch wait {wait}");
    }

    #[test]
    fn batch_mode_is_much_slower_to_first_task() {
        let mut demand = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 1);
        let mut batch = ComputeEndpoint::new(AcquisitionMode::Batch, 1);
        let t0 = SimInstant::ZERO;
        let d = demand.invoke(SimDuration::from_mins(5), t0);
        let b = batch.invoke(SimDuration::from_mins(5), t0);
        drain(&mut demand, t0);
        drain(&mut batch, t0);
        let wd = demand.queue_wait(d).unwrap();
        let wb = batch.queue_wait(b).unwrap();
        assert!(
            wb.as_secs_f64() > 10.0 * wd.as_secs_f64(),
            "batch {wb} vs demand {wd}"
        );
    }

    #[test]
    fn tasks_queue_when_all_nodes_busy() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 1);
        let t0 = SimInstant::ZERO;
        let a = ep.invoke(SimDuration::from_mins(10), t0);
        let b = ep.invoke(SimDuration::from_mins(10), t0);
        let (events, _) = drain(&mut ep, t0);
        assert_eq!(ep.state(a), Some(ComputeTaskState::Completed));
        assert_eq!(ep.state(b), Some(ComputeTaskState::Completed));
        // b started only after a finished
        let a_finish = events
            .iter()
            .find_map(|e| match e {
                ComputeEvent::Finished { task, at } if *task == a => Some(*at),
                _ => None,
            })
            .unwrap();
        let b_start = events
            .iter()
            .find_map(|e| match e {
                ComputeEvent::Started { task, at } if *task == b => Some(*at),
                _ => None,
            })
            .unwrap();
        assert!(b_start >= a_finish);
    }

    #[test]
    fn idle_nodes_are_released_after_timeout() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 2);
        let t0 = SimInstant::ZERO;
        ep.invoke(SimDuration::from_mins(1), t0);
        let (_, end) = drain(&mut ep, t0);
        // drain consumed the idle-expiry event too: node pool empty again
        assert_eq!(ep.warm_node_count(), 0);
        // a fresh invocation must re-acquire
        let c = ep.invoke(SimDuration::from_mins(1), end);
        drain(&mut ep, end);
        assert!(ep.queue_wait(c).unwrap().as_secs_f64() >= 60.0);
    }

    #[test]
    fn endpoint_outage_fails_live_tasks_and_new_invocations() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 2);
        let t0 = SimInstant::ZERO;
        let running = ep.invoke(SimDuration::from_mins(30), t0);
        ep.advance_to(t0 + SimDuration::from_mins(2));
        assert_eq!(ep.state(running), Some(ComputeTaskState::Running));

        let t1 = t0 + SimDuration::from_mins(5);
        let events = ep.set_down(true, t1);
        assert!(events.contains(&ComputeEvent::Failed {
            task: running,
            at: t1
        }));
        assert_eq!(ep.state(running), Some(ComputeTaskState::Failed));
        assert_eq!(ep.warm_node_count(), 0, "pilot nodes die with the endpoint");

        // invocations during the outage fail on arrival, with no events
        let dead = ep.invoke(SimDuration::from_mins(5), t1);
        assert_eq!(ep.state(dead), Some(ComputeTaskState::Failed));
        assert!(ep.next_event_time().is_none());

        // recovery: fresh invocations run normally (cold start again)
        let t2 = t1 + SimDuration::from_mins(10);
        assert!(ep.set_down(false, t2).is_empty());
        let revived = ep.invoke(SimDuration::from_mins(5), t2);
        while let Some(t) = ep.next_event_time() {
            ep.advance_to(t);
        }
        assert_eq!(ep.state(revived), Some(ComputeTaskState::Completed));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut ep = ComputeEndpoint::new(AcquisitionMode::DemandQueue, 1);
        let t0 = SimInstant::ZERO;
        let a = ep.invoke(SimDuration::from_mins(30), t0);
        let b = ep.invoke(SimDuration::from_mins(30), t0);
        ep.advance_to(t0 + SimDuration::from_mins(2));
        assert_eq!(ep.state(a), Some(ComputeTaskState::Running));
        ep.cancel(b, t0 + SimDuration::from_mins(2));
        assert_eq!(ep.state(b), Some(ComputeTaskState::Cancelled));
        ep.cancel(a, t0 + SimDuration::from_mins(3));
        assert_eq!(ep.state(a), Some(ComputeTaskState::Cancelled));
    }
}
