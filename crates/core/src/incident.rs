//! S4: the §5.3 production incident, reproduced.
//!
//! "In one incident, a burst of concurrent Globus Transfer 'prune'
//! requests hit a permission denied error, leaving a slew of jobs hanging
//! and saturating the queue. To avoid issues like these, we refactored
//! our flows to fail early, and try to automatically cancel jobs on
//! remote systems."
//!
//! The experiment: fire a burst of prune (delete) transfers against an
//! endpoint whose permissions broke, while legitimate scan transfers keep
//! arriving. Measure how long the legitimate traffic is stalled under the
//! legacy behaviour (hang until timeout) vs fail-early.

use als_globus::transfer::{TransferOptions, TransferService};
use als_netsim::{esnet_topology, SiteId};
use als_simcore::{ByteSize, SimDuration, SimInstant};
use serde::Serialize;

/// Outcome of one incident scenario.
#[derive(Debug, Clone, Serialize)]
pub struct IncidentReport {
    pub fail_fast: bool,
    /// How many prune requests were fired.
    pub prune_burst: usize,
    /// Transfer-queue concurrency limit.
    pub max_concurrent: usize,
    /// Mean completion time of the legitimate scan transfers (s); `None`
    /// when no scan transfer completed at all.
    pub mean_scan_transfer_s: Option<f64>,
    /// Worst-case completion time (s); `None` when nothing completed.
    pub max_scan_transfer_s: Option<f64>,
    /// How many legitimate transfers finished within 5 minutes.
    pub scans_on_time: usize,
    pub scans_total: usize,
}

/// Run the incident scenario.
///
/// `fail_fast = false` reproduces the incident; `true` is the post-mortem
/// remediation the paper adopted.
pub fn run_incident(fail_fast: bool, prune_burst: usize, seed: u64) -> IncidentReport {
    let _ = seed; // scenario is deterministic; kept for API symmetry
    let max_concurrent = 4;
    let mut svc = TransferService::new(esnet_topology(), max_concurrent);
    let als = svc.register_endpoint(SiteId::Als);
    let nersc = svc.register_endpoint(SiteId::Nersc);
    // the endpoint the prune flow targets, with broken permissions
    let prune_target = svc.register_endpoint(SiteId::Nersc);
    svc.set_permitted(prune_target, false);
    svc.set_hang_timeout(SimDuration::from_mins(30));

    let opts = TransferOptions {
        fail_fast,
        ..Default::default()
    };
    let t0 = SimInstant::ZERO;

    // the prune burst arrives first (a scheduled pruning flow fanning out)
    for _ in 0..prune_burst {
        svc.submit(als, prune_target, ByteSize::from_mib(1), opts, t0);
    }
    // legitimate scan transfers right behind it
    let scans: Vec<_> = (0..6)
        .map(|i| {
            svc.submit(
                als,
                nersc,
                ByteSize::from_gib(25),
                opts,
                t0 + SimDuration::from_secs(10 * (i + 1)),
            )
        })
        .collect();

    // drain the service
    let mut now = t0;
    while let Some(t) = svc.next_event_time(now) {
        let next = t.max(now);
        let made_progress = !svc.advance_to(next).is_empty();
        if next == now && !made_progress {
            break;
        }
        now = next;
    }

    let durations: Vec<f64> = scans
        .iter()
        .filter_map(|&id| svc.task_duration(id))
        .map(|d| d.as_secs_f64())
        .collect();
    let scans_total = scans.len();
    assert_eq!(
        durations.len(),
        scans_total,
        "every scan transfer must reach a terminal state with a duration"
    );
    let on_time = durations.iter().filter(|&&d| d < 300.0).count();
    IncidentReport {
        fail_fast,
        prune_burst,
        max_concurrent,
        mean_scan_transfer_s: if durations.is_empty() {
            None
        } else {
            Some(durations.iter().sum::<f64>() / durations.len() as f64)
        },
        max_scan_transfer_s: durations
            .iter()
            .fold(None, |m, &d| Some(m.map_or(d, |m: f64| m.max(d)))),
        scans_on_time: on_time,
        scans_total,
    }
}

/// Run both scenarios for side-by-side comparison.
pub fn incident_comparison(prune_burst: usize, seed: u64) -> (IncidentReport, IncidentReport) {
    (
        run_incident(false, prune_burst, seed),
        run_incident(true, prune_burst, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_mode_saturates_the_queue() {
        let r = run_incident(false, 8, 1);
        // hung prune tasks hold all slots for the 30-minute timeout:
        // legitimate transfers stall past any reasonable deadline
        let mean = r.mean_scan_transfer_s.expect("all scans terminal");
        assert!(
            mean > 1500.0,
            "mean scan transfer {mean} s should show saturation"
        );
        assert_eq!(r.scans_on_time, 0);
    }

    #[test]
    fn fail_fast_keeps_traffic_flowing() {
        let r = run_incident(true, 8, 1);
        // failed prunes release their slots immediately; 25 GiB at a
        // shared 10 Gbps finishes within a couple of minutes each
        let mean = r.mean_scan_transfer_s.expect("all scans terminal");
        assert!(mean < 300.0, "mean scan transfer {mean} s");
        assert!(r.max_scan_transfer_s.unwrap() >= mean);
        assert!(r.scans_on_time >= r.scans_total - 1);
    }

    #[test]
    fn remediation_dominates_across_burst_sizes() {
        for burst in [4, 8, 16] {
            let (legacy, fixed) = incident_comparison(burst, 2);
            let (f, l) = (
                fixed.mean_scan_transfer_s.unwrap(),
                legacy.mean_scan_transfer_s.unwrap(),
            );
            assert!(f < l / 3.0, "burst {burst}: fixed {f} vs legacy {l}");
        }
    }
}
