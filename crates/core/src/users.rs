//! Table 1: the beamline user archetypes that drove the design.

use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct UserArchetype {
    pub name: &'static str,
    pub description: &'static str,
    /// Which parts of the system this archetype touches day to day.
    pub touchpoints: &'static [&'static str],
    /// Approximate population at the facility.
    pub population: &'static str,
}

/// The three archetypes from Table 1.
pub fn user_archetypes() -> [UserArchetype; 3] {
    [
        UserArchetype {
            name: "Visiting User",
            description: "Short, on-site scheduled beamtime; requires remote data access; \
                          focused on rapid data acquisition under constrained timeframes",
            touchpoints: &[
                "beamline control software",
                "streaming web app",
                "ImageJ previews",
                "web volume viewer",
                "JupyterLab",
            ],
            population: "thousands of annual users (novices and experts)",
        },
        UserArchetype {
            name: "Staff Beamline Scientist",
            description: "Endstation expert (hardware, software, analysis); provides guidance \
                          to users; ensures experimental quality and system uptime",
            touchpoints: &[
                "acquisition services",
                "flow dashboards",
                "metadata catalogue",
                "storage tiers",
            ],
            population: "1-2 per beamline",
        },
        UserArchetype {
            name: "Software Engineer",
            description: "Develops and maintains scalable infrastructure, compute and \
                          visualization services",
            touchpoints: &[
                "orchestration layer",
                "facility adapters",
                "CI/CD + container registry",
                "run database / logs",
            ],
            population: "shared across beamlines",
        },
    ]
}

/// Render Table 1 as fixed-width text (for the `experiments table1` run).
pub fn table1_text() -> String {
    let mut out = String::from("Table 1: Beamline User Archetypes\n");
    for a in user_archetypes() {
        out.push_str(&format!(
            "\n{:<25} {}\n{:<25} population: {}\n{:<25} touchpoints: {}\n",
            a.name,
            a.description,
            "",
            a.population,
            "",
            a.touchpoints.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_archetypes_match_the_paper() {
        let a = user_archetypes();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].name, "Visiting User");
        assert_eq!(a[1].name, "Staff Beamline Scientist");
        assert_eq!(a[2].name, "Software Engineer");
    }

    #[test]
    fn table_text_mentions_all_archetypes() {
        let t = table1_text();
        for a in user_archetypes() {
            assert!(t.contains(a.name));
        }
    }
}
