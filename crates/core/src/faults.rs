//! Deterministic fault plans for the multi-facility simulation.
//!
//! The paper's §5.3 recounts real incidents during beamtime: a NERSC
//! scheduler outage that stranded reconstruction jobs, auth-session
//! expiries, and degraded wide-area transfers. A [`FaultPlan`] encodes
//! such incidents as timed windows that [`crate::sim::FacilitySim`]
//! replays exactly — the same seed and plan always produce the same
//! campaign, which is what makes the resilience experiments (and their
//! with/without-failover comparisons) meaningful.

use als_simcore::{SimDuration, SimInstant, SimRng};
use serde::{Deserialize, Serialize};

/// What breaks during a [`FaultWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// NERSC scheduler outage: the partition drains, running ALS jobs are
    /// killed, heartbeats stop. The DTN stays up, so transfers land and
    /// their jobs strand in the queue (the paper's incident shape).
    NerscOutage,
    /// ALCF compute-endpoint outage: live Globus Compute invocations fail
    /// and new ones are rejected; heartbeats stop.
    AlcfOutage,
    /// OLCF scheduler outage: Frontier's batch partition drains, running
    /// ALS jobs are killed, heartbeats stop. Same shape as the NERSC
    /// incident, at the third facility.
    OlcfOutage,
    /// ESnet brownout: every WAN segment runs at `capacity_factor` ×
    /// nominal bandwidth.
    EsnetBrownout { capacity_factor: f64 },
    /// SFAPI identity provider down: tokens are revoked and re-auth fails.
    SfApiAuthExpiry,
    /// Checksum-corruption burst on the facility DTNs: the next `burst`
    /// transfers through each HPC endpoint fail verification.
    TransferCorruption { burst: u32 },
}

/// One timed fault: `kind` holds over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start: SimInstant,
    pub end: SimInstant,
    pub kind: FaultKind,
}

impl FaultWindow {
    pub fn new(start: SimInstant, end: SimInstant, kind: FaultKind) -> Self {
        assert!(end > start, "fault window must have positive length");
        if let FaultKind::EsnetBrownout { capacity_factor } = kind {
            assert!(
                (0.01..=1.0).contains(&capacity_factor),
                "brownout factor {capacity_factor} outside [0.01, 1.0]"
            );
        }
        FaultWindow { start, end, kind }
    }

    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// Does this window cover `t`?
    pub fn contains(&self, t: SimInstant) -> bool {
        t >= self.start && t < self.end
    }
}

/// What the crash does to the durable journal images beyond killing the
/// process. A sharded orchestrator persists one WAL partition per shard;
/// the interesting failure modes are *asymmetric* — one partition's
/// device tears or rots while the rest survive intact.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum CrashDamage {
    /// Clean power cut: pending group-commit frames die with the
    /// process, but every durable image survives byte-for-byte.
    #[default]
    None,
    /// The crash raced a group-commit flush on one shard:
    /// `keep_milli`/1000 of the in-flight write reached the device,
    /// leaving a torn frame at that shard's tail.
    MidGroupCommit { shard: usize, keep_milli: u32 },
    /// One shard's journal lost its last `drop_bytes` bytes (a write the
    /// device acknowledged but never committed).
    ShardTorn { shard: usize, drop_bytes: usize },
    /// One byte flipped `offset_back` bytes from the end of one shard's
    /// journal (bit rot / partial-sector damage caught by the CRC).
    ShardCorrupt { shard: usize, offset_back: usize },
}

impl CrashDamage {
    /// The shard this damage targets, if any. Stored indices may exceed
    /// the fleet size of a particular configuration — callers reduce
    /// modulo their shard count so one plan drives any fleet width.
    pub fn target_shard(&self) -> Option<usize> {
        match self {
            CrashDamage::None => None,
            CrashDamage::MidGroupCommit { shard, .. }
            | CrashDamage::ShardTorn { shard, .. }
            | CrashDamage::ShardCorrupt { shard, .. } => Some(*shard),
        }
    }
}

/// The orchestrator process dies at `at` and a new incarnation comes up
/// `restart_after` later. Unlike facility faults, this kills the
/// *coordinator*: in-memory flow state is lost (unless journaled),
/// facility-side jobs and transfers keep running unattended. `damage`
/// optionally wounds one shard's durable journal on the way down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorCrash {
    pub at: SimInstant,
    pub restart_after: SimDuration,
    pub damage: CrashDamage,
}

impl OrchestratorCrash {
    pub fn new(at: SimInstant, restart_after: SimDuration) -> Self {
        assert!(
            restart_after > SimDuration::ZERO,
            "restart must come after the crash"
        );
        OrchestratorCrash {
            at,
            restart_after,
            damage: CrashDamage::None,
        }
    }

    /// Builder: wound a shard's journal as part of this crash.
    pub fn with_damage(mut self, damage: CrashDamage) -> Self {
        self.damage = damage;
        self
    }

    pub fn restart_at(&self) -> SimInstant {
        self.at + self.restart_after
    }
}

/// A full fault schedule for one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Timed incident windows, replayed verbatim.
    pub windows: Vec<FaultWindow>,
    /// Probability that any individual compute job/invocation fails at
    /// completion (transient node-level failures outside any window).
    pub job_failure_prob: f64,
    /// Orchestrator deaths, replayed verbatim.
    pub orchestrator_crashes: Vec<OrchestratorCrash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: a healthy campaign.
    pub fn none() -> Self {
        FaultPlan {
            windows: Vec::new(),
            job_failure_prob: 0.0,
            orchestrator_crashes: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
            && self.job_failure_prob == 0.0
            && self.orchestrator_crashes.is_empty()
    }

    /// Builder: add a window.
    pub fn with_window(mut self, w: FaultWindow) -> Self {
        assert!(
            (0.0..=1.0).contains(&self.job_failure_prob),
            "probability out of range"
        );
        self.windows.push(w);
        self
    }

    /// Builder: set the background per-job failure probability.
    pub fn with_job_failure_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.job_failure_prob = p;
        self
    }

    /// Builder: kill the orchestrator at `at`, restart `restart_after`
    /// later.
    pub fn with_orchestrator_crash(mut self, at: SimInstant, restart_after: SimDuration) -> Self {
        self.orchestrator_crashes
            .push(OrchestratorCrash::new(at, restart_after));
        self
    }

    /// Generate a random-but-reproducible "fault storm" over `[0,
    /// horizon)`. `intensity` in `[0, 1]` scales how much of the horizon
    /// is under some fault and the background job-failure rate. The same
    /// `(seed, horizon, intensity)` always yields the same plan.
    pub fn storm(seed: u64, horizon: SimDuration, intensity: f64) -> Self {
        assert!((0.0..=1.0).contains(&intensity), "intensity out of range");
        let mut rng = SimRng::seeded(seed ^ 0x000F_A175);
        let horizon_s = horizon.as_secs_f64();
        // up to ~6 windows at full intensity
        let n_windows = (intensity * 6.0).round() as usize;
        let mut plan = FaultPlan::none().with_job_failure_prob(0.08 * intensity);
        for i in 0..n_windows {
            // each window lasts 2–10% of the horizon, scaled by intensity
            let len_s = horizon_s * rng.uniform(0.02, 0.10) * (0.5 + 0.5 * intensity);
            let start_s = rng.uniform(0.0, (horizon_s - len_s).max(1.0));
            let start = SimInstant::ZERO + SimDuration::from_secs_f64(start_s);
            let end = start + SimDuration::from_secs_f64(len_s.max(1.0));
            let kind = match i % 5 {
                0 => FaultKind::NerscOutage,
                1 => FaultKind::AlcfOutage,
                2 => FaultKind::EsnetBrownout {
                    capacity_factor: rng.uniform(0.1, 0.5),
                },
                3 => FaultKind::SfApiAuthExpiry,
                _ => FaultKind::TransferCorruption {
                    burst: rng.uniform_u64(1, 4) as u32,
                },
            };
            plan.windows.push(FaultWindow::new(start, end, kind));
        }
        plan
    }

    /// The R3 shard-chaos schedule: the crash-storm cadence (three
    /// orchestrator deaths with 450 s restarts) where every crash also
    /// wounds one journal shard — a torn group-commit flush, a truncated
    /// tail, or a flipped byte — chosen deterministically from `seed`.
    /// Shard indices are drawn in `[0, shards)`; running the same plan at
    /// a smaller fleet width reduces them modulo that width, so sharded
    /// and unsharded configurations face the same storm.
    pub fn shard_chaos(seed: u64, shards: usize) -> Self {
        assert!(shards > 0, "chaos needs at least one shard");
        let mut rng = SimRng::seeded(seed ^ 0x0005_4A2D_C805);
        let mut plan = FaultPlan::none();
        for (i, at_s) in [1500u64, 3600, 5700].into_iter().enumerate() {
            let shard = rng.uniform_u64(0, shards as u64) as usize;
            let damage = match i % 3 {
                0 => CrashDamage::MidGroupCommit {
                    shard,
                    keep_milli: rng.uniform_u64(100, 900) as u32,
                },
                1 => CrashDamage::ShardTorn {
                    shard,
                    drop_bytes: rng.uniform_u64(20, 160) as usize,
                },
                _ => CrashDamage::ShardCorrupt {
                    shard,
                    offset_back: rng.uniform_u64(5, 120) as usize,
                },
            };
            plan.orchestrator_crashes.push(
                OrchestratorCrash::new(
                    SimInstant::ZERO + SimDuration::from_secs(at_s),
                    SimDuration::from_secs(450),
                )
                .with_damage(damage),
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn window_containment_is_half_open() {
        let w = FaultWindow::new(secs(10), secs(20), FaultKind::NerscOutage);
        assert!(!w.contains(secs(9)));
        assert!(w.contains(secs(10)));
        assert!(w.contains(secs(19)));
        assert!(!w.contains(secs(20)));
        assert_eq!(w.duration(), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_is_rejected() {
        FaultWindow::new(secs(10), secs(10), FaultKind::NerscOutage);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn total_blackout_brownout_is_rejected() {
        FaultWindow::new(
            secs(0),
            secs(10),
            FaultKind::EsnetBrownout {
                capacity_factor: 0.0,
            },
        );
    }

    #[test]
    fn storm_is_deterministic_and_scales_with_intensity() {
        let h = SimDuration::from_hours(4);
        let a = FaultPlan::storm(7, h, 0.8);
        let b = FaultPlan::storm(7, h, 0.8);
        assert_eq!(a, b, "same inputs, same plan");
        let c = FaultPlan::storm(8, h, 0.8);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(FaultPlan::storm(7, h, 0.0).windows.len(), 0);
        assert!(a.windows.len() >= 4);
        assert!(a.job_failure_prob > 0.0);
        for w in &a.windows {
            assert!(w.end.as_secs_f64() <= h.as_secs_f64() * 1.1);
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::none().with_job_failure_prob(0.1).is_empty());
        assert!(!FaultPlan::none()
            .with_orchestrator_crash(secs(100), SimDuration::from_secs(60))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "restart must come after")]
    fn instant_restart_is_rejected() {
        OrchestratorCrash::new(secs(100), SimDuration::ZERO);
    }

    #[test]
    fn crashes_default_to_clean_power_cuts() {
        let c = OrchestratorCrash::new(secs(100), SimDuration::from_secs(60));
        assert_eq!(c.damage, CrashDamage::None);
        assert_eq!(c.damage.target_shard(), None);
        let wounded = c.with_damage(CrashDamage::ShardTorn {
            shard: 3,
            drop_bytes: 40,
        });
        assert_eq!(wounded.damage.target_shard(), Some(3));
        assert_eq!(wounded.at, c.at, "damage does not move the crash");
    }

    #[test]
    fn shard_chaos_is_deterministic_and_covers_every_damage_kind() {
        let a = FaultPlan::shard_chaos(23, 8);
        let b = FaultPlan::shard_chaos(23, 8);
        assert_eq!(a, b, "same seed, same chaos");
        assert_ne!(a, FaultPlan::shard_chaos(24, 8), "seed steers the chaos");
        assert_eq!(a.orchestrator_crashes.len(), 3);
        for c in &a.orchestrator_crashes {
            let shard = c.damage.target_shard().expect("every crash wounds a shard");
            assert!(shard < 8);
        }
        // the schedule cycles through all three asymmetric damage kinds
        assert!(matches!(
            a.orchestrator_crashes[0].damage,
            CrashDamage::MidGroupCommit { .. }
        ));
        assert!(matches!(
            a.orchestrator_crashes[1].damage,
            CrashDamage::ShardTorn { .. }
        ));
        assert!(matches!(
            a.orchestrator_crashes[2].damage,
            CrashDamage::ShardCorrupt { .. }
        ));
        // a single-shard fleet reduces every target to shard 0
        for c in &FaultPlan::shard_chaos(23, 1).orchestrator_crashes {
            assert_eq!(c.damage.target_shard(), Some(0));
        }
    }
}
