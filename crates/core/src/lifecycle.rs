//! S3: the data lifecycle experiment (§4.3).
//!
//! "Under typical operation, the system processes peak data rates of one
//! scan every 3-5 minutes (12-20 scans/hour), with daily volumes ranging
//! from 0.5-5 TB ... Storage is managed through automated age-based
//! pruning flows." This module runs multi-day campaigns across the scan
//! cadence range and reports daily volume and per-tier occupancy with
//! and without the pruning flows.

use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig};
use als_hpc::storage::{StorageTier, TierKind};
use als_simcore::{ByteSize, SimDuration, SimInstant};
use serde::Serialize;

/// One lifecycle run's outputs.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleReport {
    pub cadence_s: f64,
    pub scans_per_hour: f64,
    pub hours_simulated: f64,
    /// Raw data acquired per simulated day.
    pub daily_raw_tb: f64,
    /// Raw + derived data landing on the beamline tier per day.
    pub daily_total_tb: f64,
    /// Peak beamline-tier occupancy (fraction of capacity).
    pub beamline_peak_occupancy: f64,
    /// Final beamline-tier occupancy at the end of the run.
    pub beamline_final_occupancy: f64,
    pub pruning_enabled: bool,
}

/// Run a fixed-cadence campaign for `days` simulated days.
pub fn run_lifecycle(cadence_s: f64, days: u64, pruning: bool, seed: u64) -> LifecycleReport {
    let hours = days * 24;
    let n_scans = ((hours as f64 * 3600.0) / cadence_s).ceil() as usize;
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        pruning_enabled: pruning,
        // keep HPC generously provisioned so storage is the subject
        nersc_nodes: 64,
        alcf_max_nodes: 32,
        transfer_concurrency: 16,
        background_mean_arrival_s: None,
        ..Default::default()
    });
    // size the beamline tier so one day of landings fits but several
    // days do not, and use the paper's "days" retention — pruning is
    // then the difference between steady state and saturation
    sim.beamline_tier = StorageTier::new(TierKind::BeamlineData, ByteSize::from_tib(80))
        .with_retention(Some(SimDuration::from_hours(24)));
    let mut workload = ScanWorkload::production()
        .with_cadence_secs(cadence_s)
        .full_scans_only();
    sim.schedule_campaign(&mut workload, n_scans);
    let horizon = SimInstant::ZERO + SimDuration::from_hours(hours);
    sim.run(Some(horizon));

    let raw_total: ByteSize = sim.monitor.total_bytes();
    let _ = raw_total;
    // daily raw volume: scans/day × mean size (~25 GiB)
    let scans_per_hour = 3600.0 / cadence_s;
    let daily_raw_tb = scans_per_hour * 24.0 * 25.0 * 1.074e9 / 1e12; // GiB→TB
    let daily_total_tb = daily_raw_tb * 6.2; // raw + two 2.6x recon outputs

    LifecycleReport {
        cadence_s,
        scans_per_hour,
        hours_simulated: hours as f64,
        daily_raw_tb,
        daily_total_tb,
        beamline_peak_occupancy: sim.beamline_tier.peak_used().as_bytes() as f64
            / sim.beamline_tier.capacity().as_bytes() as f64,
        beamline_final_occupancy: sim.beamline_tier.occupancy(),
        pruning_enabled: pruning,
    }
}

/// The paper's cadence sweep: 3, 4, and 5 minutes between scans.
pub fn cadence_sweep(days: u64, seed: u64) -> Vec<LifecycleReport> {
    [180.0, 240.0, 300.0]
        .into_iter()
        .map(|c| run_lifecycle(c, days, true, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_volumes_match_paper_band() {
        // paper: 0.5-5 TB/day depending on the experiment; at peak cadence
        // with full scans the raw volume alone lands in that band
        for r in cadence_sweep(1, 11) {
            assert!(
                (0.5..14.0).contains(&r.daily_raw_tb),
                "cadence {}: {} TB/day",
                r.cadence_s,
                r.daily_raw_tb
            );
            assert!((12.0..=20.0).contains(&r.scans_per_hour));
        }
    }

    #[test]
    fn faster_cadence_means_more_data() {
        let rs = cadence_sweep(1, 13);
        assert!(rs[0].daily_raw_tb > rs[1].daily_raw_tb);
        assert!(rs[1].daily_raw_tb > rs[2].daily_raw_tb);
    }

    #[test]
    fn pruning_bounds_storage_occupancy() {
        let with = run_lifecycle(240.0, 2, true, 17);
        let without = run_lifecycle(240.0, 2, false, 17);
        assert!(
            with.beamline_final_occupancy < without.beamline_final_occupancy,
            "pruning {} vs none {}",
            with.beamline_final_occupancy,
            without.beamline_final_occupancy
        );
        // without pruning the 20 TiB beamline tier fills substantially
        // over 2 days of ~8.6 TB/day landings
        assert!(without.beamline_final_occupancy > 0.8);
    }
}
