//! Observability experiment (R5): the unified telemetry spine under
//! fire.
//!
//! R4 proved the router keeps a campaign alive through rolling
//! multi-facility outages; R3 proved the sharded journal survives
//! coordinator crashes. R5 asks the question both left open: *can you
//! see what happened?* It replays the R4 rolling-outage schedule with a
//! mid-campaign coordinator crash on top, and demands that the telemetry
//! spine — flow-scoped trace spans journaled next to orchestrator state,
//! plus the fleet metrics registry — reconstructs the campaign's story
//! exactly:
//!
//! * **per-scan timelines** — every lifecycle stage (ingest → transfer →
//!   queue-wait → recon → back-transfer → catalog) as a span tagged with
//!   the facility that served it, redirect chains linked parent→child,
//!   router decisions attached as notes;
//! * **the Table-2 report** — min/p50/p90/max per (facility, stage) over
//!   every closed span, with exact nearest-rank quantiles;
//! * **crash-identical reconstruction** — a verifier incarnation that
//!   replays nothing but the shard journals must rebuild the *same*
//!   trace store and therefore the byte-identical report the live
//!   coordinator holds;
//! * **the accounting identity** — per scan,
//!   `stage_sum − overlap + idle = end_to_end`, so the timeline's pieces
//!   genuinely tile the scan's life.

use crate::faults::FaultPlan;
use crate::routing::rolling_outage_plan;
use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig};
use als_facility::RouterMode;
use als_orchestrator::ShardedOrchestrator;
use als_simcore::{SimDuration, SimInstant};
use als_telemetry::{TelemetryReport, TraceStore};
use serde::Serialize;

/// When the coordinator dies (mid-campaign: after the NERSC outage
/// opens, while redirected work is in flight) and how long the restart
/// takes.
pub const CRASH_AT_S: u64 = 3600;
pub const CRASH_RESTART_S: u64 = 120;

/// Everything the R5 experiment measures.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityReport {
    pub scans: usize,
    pub seed: u64,
    pub completed_branches: usize,
    pub crash_count: usize,
    pub recovery_count: usize,
    pub failover_count: usize,
    /// Scans with at least one trace span.
    pub traced_scans: usize,
    /// Spans still open once the campaign drained (should be 0).
    pub open_spans: usize,
    /// Spans carrying a redirect parent link.
    pub redirect_links: usize,
    /// Spans carrying a router-decision note.
    pub routed_notes: usize,
    /// Per scan: `stage_sum − overlap + idle == end_to_end` (µs-exact).
    pub accounting_identity_holds: bool,
    /// A verifier that replays only the shard journals rebuilds the
    /// same trace store (and therefore the same report).
    pub crash_reconstruction_identical: bool,
    /// The Table-2-style per-(facility, stage) latency distribution.
    pub table: TelemetryReport,
}

/// One scan's rendered timeline plus the identity terms behind it.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineSample {
    pub scan: String,
    pub end_to_end_s: f64,
    pub covered_s: f64,
    pub stage_sum_s: f64,
    pub overlap_s: f64,
    pub idle_s: f64,
    pub rendered: String,
}

/// The full R5 bundle: the measured report, a timeline worth printing
/// (a scan that lived through a redirect, when one exists), and the
/// registry exposition snapshots.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityBundle {
    pub report: ObservabilityReport,
    pub timeline: Option<TimelineSample>,
    pub metrics_json: String,
    pub prometheus_text: String,
}

/// The R5 fault schedule: the R4 rolling outages plus a coordinator
/// crash while the fleet is already degraded.
pub fn observability_plan() -> FaultPlan {
    rolling_outage_plan().with_orchestrator_crash(
        SimInstant::ZERO + SimDuration::from_secs(CRASH_AT_S),
        SimDuration::from_secs(CRASH_RESTART_S),
    )
}

/// Run the R5 campaign and return the drained simulator.
pub fn run_observability_sim(n_scans: usize, seed: u64) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: observability_plan(),
        failover_enabled: true,
        olcf_enabled: true,
        router_mode: RouterMode::CostAware,
        durable_recovery: true,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

/// Does the accounting identity hold for every traced scan, exactly,
/// on the integer-microsecond clock?
pub fn accounting_identity_holds(traces: &TraceStore) -> bool {
    traces.scans().all(|t| {
        let Some(e2e) = t.end_to_end() else {
            return true; // no closed spans, nothing to account for
        };
        let lhs = t.stage_sum().as_micros() + t.idle().as_micros();
        lhs - t.overlap().as_micros() == e2e.as_micros()
    })
}

/// Prove crash-identical reconstruction: flush the live journals, hand
/// the durable bytes to a fresh verifier incarnation, and compare its
/// replayed trace store (and report) against the live one.
pub fn verify_crash_reconstruction(sim: &mut FacilitySim) -> (bool, TraceStore) {
    sim.orch.commit_all();
    let live = sim.traces();
    let images = sim.orch.crash_images();
    let (verifier, _info) = ShardedOrchestrator::recover_fleet(
        &images,
        "r5-verifier",
        sim.now(),
        sim.cfg.group_commit_batch,
    );
    let rebuilt = verifier.merged_traces();
    let identical = rebuilt == live && rebuilt.report() == live.report();
    (identical, rebuilt)
}

/// Pick the scan whose timeline tells the best story: the one with the
/// most redirect links, falling back to the first traced scan.
fn sample_scan(traces: &TraceStore) -> Option<String> {
    traces
        .scans()
        .max_by_key(|t| {
            (
                t.spans.iter().filter(|s| s.parent.is_some()).count(),
                std::cmp::Reverse(t.scan.clone()),
            )
        })
        .map(|t| t.scan.clone())
}

/// Run R5 end to end and aggregate everything the experiment reports.
pub fn run_observability(n_scans: usize, seed: u64) -> ObservabilityBundle {
    let mut sim = run_observability_sim(n_scans, seed);
    let (identical, _) = verify_crash_reconstruction(&mut sim);
    let traces = sim.traces();

    let mut open_spans = 0usize;
    let mut redirect_links = 0usize;
    let mut routed_notes = 0usize;
    for t in traces.scans() {
        for s in &t.spans {
            if !s.is_closed() {
                open_spans += 1;
            }
            if s.parent.is_some() {
                redirect_links += 1;
            }
            routed_notes += s.notes.iter().filter(|n| n.key == "route").count();
        }
    }

    let timeline = sample_scan(&traces).and_then(|name| {
        let t = traces.scan(&name)?;
        Some(TimelineSample {
            scan: name.clone(),
            end_to_end_s: t.end_to_end().unwrap_or(SimDuration::ZERO).as_secs_f64(),
            covered_s: t.covered().as_secs_f64(),
            stage_sum_s: t.stage_sum().as_secs_f64(),
            overlap_s: t.overlap().as_secs_f64(),
            idle_s: t.idle().as_secs_f64(),
            rendered: traces.timeline(&name)?,
        })
    });

    let report = ObservabilityReport {
        scans: n_scans,
        seed,
        completed_branches: sim.branches_completed(),
        crash_count: sim.crash_count,
        recovery_count: sim.recovery_count,
        failover_count: sim.failover_count,
        traced_scans: traces.scan_count(),
        open_spans,
        redirect_links,
        routed_notes,
        accounting_identity_holds: accounting_identity_holds(&traces),
        crash_reconstruction_identical: identical,
        table: traces.report(),
    };
    ObservabilityBundle {
        report,
        timeline,
        metrics_json: sim.registry.snapshot().to_json(),
        prometheus_text: sim.registry.snapshot().prometheus_text(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_telemetry::Stage;

    fn small_bundle() -> ObservabilityBundle {
        run_observability(10, 832)
    }

    #[test]
    fn r5_campaign_survives_and_traces_every_scan() {
        let b = small_bundle();
        assert_eq!(b.report.crash_count, 1);
        assert_eq!(b.report.recovery_count, 1);
        assert!(b.report.failover_count > 0, "rolling outages must redirect");
        assert_eq!(b.report.traced_scans, 10);
        assert!(
            b.report.completed_branches >= 18,
            "campaign mostly completes"
        );
        assert_eq!(
            b.report.open_spans, 0,
            "a drained campaign closes every span"
        );
    }

    #[test]
    fn r5_report_reconstructs_identically_after_crash() {
        let b = small_bundle();
        assert!(b.report.crash_reconstruction_identical);
        assert!(b.report.accounting_identity_holds);
    }

    #[test]
    fn r5_timeline_and_table_carry_the_campaign_story() {
        let b = small_bundle();
        let t = b.timeline.expect("at least one traced scan");
        assert!(t.rendered.contains("end-to-end"));
        assert!(b.report.redirect_links > 0, "redirect chains are linked");
        assert!(b.report.routed_notes > 0, "router decisions ride the trace");
        // the table has rows for the stages every scan passes through
        for stage in [Stage::Ingest, Stage::Transfer, Stage::Catalog] {
            assert!(
                b.report.table.rows.iter().any(|r| r.stage == stage),
                "missing {} rows",
                stage.name()
            );
        }
        // recon ran at more than one facility under the rolling outages
        let recon_sites = b
            .report
            .table
            .rows
            .iter()
            .filter(|r| r.stage == Stage::Recon)
            .count();
        assert!(recon_sites >= 2, "recon should have run at >= 2 facilities");
    }

    #[test]
    fn r5_registry_exports_the_fleet_spine() {
        let b = small_bundle();
        for needle in [
            "orch_recoveries_total",
            "router_decisions_total",
            "journal_",
        ] {
            assert!(
                b.metrics_json.contains(needle) || b.prometheus_text.contains(needle),
                "registry snapshot missing {needle}"
            );
        }
    }
}
