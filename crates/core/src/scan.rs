//! The scan workload model (§4.3).
//!
//! "Each 3-minute scan usually produces 20–30 GB of raw images ... Raw
//! file sizes range from a few MB to hundreds of GB ... the system
//! processes peak data rates of one scan every 3-5 minutes." Cropped test
//! scans (a few MB) and full scientific scans (20–30 GB) form a strongly
//! bimodal size distribution, which is exactly what produces the wide
//! ranges in Table 2.

use als_simcore::{ByteSize, SimDuration, SimRng, WorkloadDist};
use als_tomo::throughput::ScanDims;
use serde::{Deserialize, Serialize};

/// Identifier of a scan within a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScanId(pub u32);

/// One acquisition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scan {
    pub id: ScanId,
    pub name: String,
    /// Raw file size.
    pub size: ByteSize,
    /// Acquisition wall time (beam on target).
    pub acquisition: SimDuration,
}

impl Scan {
    /// Reconstruction output volume size: f32 volume of
    /// `rows × cols × cols` vs u16 raw of `angles × rows × cols`.
    /// For the paper's reference scan that ratio is ≈ 2.6× (20 GB raw →
    /// ~50 GB volume); it shrinks for cropped scans, but 2.6 is a good
    /// single-shape approximation.
    pub fn recon_output_size(&self) -> ByteSize {
        self.size * 2.6
    }

    /// Detector dimensions consistent with this file size, assuming the
    /// reference aspect ratio (1969 × 2160 × 2560 at ~20.3 GiB).
    pub fn dims(&self) -> ScanDims {
        let reference = ScanDims::paper_reference();
        let ref_bytes = reference.raw_bytes().as_bytes() as f64;
        let f = (self.size.as_bytes() as f64 / ref_bytes).cbrt();
        reference.scaled(f)
    }

    /// Is this a cropped test scan (vs a full scientific scan)?
    pub fn is_cropped_test(&self) -> bool {
        self.size < ByteSize::from_gib(1)
    }
}

/// Generates the campaign's scan stream.
#[derive(Debug, Clone)]
pub struct ScanWorkload {
    sizes: WorkloadDist,
    /// Gap between consecutive scan starts (seconds).
    cadence_s: WorkloadDist,
    next_id: u32,
}

impl ScanWorkload {
    /// The production workload: bimodal sizes, one scan every 3–5 min.
    pub fn production() -> ScanWorkload {
        ScanWorkload {
            sizes: WorkloadDist::beamline_scan_sizes(),
            cadence_s: WorkloadDist::Uniform {
                lo: 180.0,
                hi: 300.0,
            },
            next_id: 0,
        }
    }

    /// A workload with a fixed cadence (for the lifecycle sweep).
    pub fn with_cadence_secs(mut self, secs: f64) -> ScanWorkload {
        self.cadence_s = WorkloadDist::Constant(secs);
        self
    }

    /// Only full-size scans (for worst-case storage sizing).
    pub fn full_scans_only(mut self) -> ScanWorkload {
        self.sizes = WorkloadDist::Normal {
            mean: 25.0,
            sd: 4.0,
        };
        self
    }

    /// Draw the next scan plus the delay before the one after it starts.
    pub fn next_scan(&mut self, rng: &mut SimRng) -> (Scan, SimDuration) {
        let id = ScanId(self.next_id);
        self.next_id += 1;
        let size = ByteSize::from_gib_f64(self.sizes.sample_clamped(rng, 0.002, 120.0));
        // acquisition: "3-minute scan", shorter for cropped tests
        let acquisition = if size < ByteSize::from_gib(1) {
            SimDuration::from_secs_f64(rng.uniform(20.0, 60.0))
        } else {
            SimDuration::from_secs_f64(rng.uniform(150.0, 210.0))
        };
        let gap = SimDuration::from_secs_f64(self.cadence_s.sample_clamped(rng, 30.0, 3600.0));
        (
            Scan {
                id,
                name: format!("20260704_{:06}_scan", id.0),
                size,
                acquisition,
            },
            gap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_workload_is_bimodal() {
        let mut w = ScanWorkload::production();
        let mut rng = SimRng::seeded(1);
        let scans: Vec<Scan> = (0..500).map(|_| w.next_scan(&mut rng).0).collect();
        let cropped = scans.iter().filter(|s| s.is_cropped_test()).count();
        let full = scans
            .iter()
            .filter(|s| s.size > ByteSize::from_gib(15))
            .count();
        assert!(
            (0.1..0.35).contains(&(cropped as f64 / 500.0)),
            "cropped {cropped}"
        );
        assert!(full as f64 / 500.0 > 0.6, "full {full}");
        // ids are unique and sequential
        for (i, s) in scans.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
        }
    }

    #[test]
    fn cadence_respects_paper_rates() {
        // 3-5 min cadence → 12-20 scans/hour
        let mut w = ScanWorkload::production();
        let mut rng = SimRng::seeded(2);
        let mean_gap: f64 = (0..200)
            .map(|_| w.next_scan(&mut rng).1.as_secs_f64())
            .sum::<f64>()
            / 200.0;
        let per_hour = 3600.0 / mean_gap;
        assert!((12.0..20.0).contains(&per_hour), "scans/hour {per_hour}");
    }

    #[test]
    fn recon_output_matches_paper_ratio() {
        let scan = Scan {
            id: ScanId(0),
            name: "x".into(),
            size: ByteSize::from_gib(20),
            acquisition: SimDuration::from_mins(3),
        };
        let out = scan.recon_output_size().as_gib_f64();
        // ~20 GB raw → ~50 GB volume
        assert!((48.0..56.0).contains(&out), "output {out}");
    }

    #[test]
    fn dims_scale_with_size() {
        let small = Scan {
            id: ScanId(0),
            name: "s".into(),
            size: ByteSize::from_mib(10),
            acquisition: SimDuration::from_secs(30),
        };
        let big = Scan {
            id: ScanId(1),
            name: "b".into(),
            size: ByteSize::from_gib(20),
            acquisition: SimDuration::from_mins(3),
        };
        assert!(small.dims().det_cols < big.dims().det_cols);
        // the big scan's dims should be near the paper reference
        let d = big.dims();
        assert!((d.det_cols as f64 - 2560.0).abs() / 2560.0 < 0.1, "{d:?}");
    }
}
