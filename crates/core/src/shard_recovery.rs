//! Shard-chaos experiment (R3): fleet-wide crash recovery with damaged
//! journal partitions.
//!
//! R2 establishes that a write-ahead journal lets a crashed coordinator
//! resume without duplicating facility work — but it assumes the journal
//! bytes come back intact. R3 drops that assumption: the orchestrator
//! runs sharded across N journal partitions with group-commit batching,
//! and every crash in the schedule additionally wounds one shard's
//! on-disk image (a write torn mid-group-commit, a truncated tail, or a
//! flipped byte). The campaign must still deliver every branch with zero
//! duplicated side-effecting steps, and — the isolation claim — only
//! flows living on the wounded shard may need evidence-based healing
//! (label adoption, staging-worker re-detection, catalogue evidence);
//! everything else recovers by plain replay.
//!
//! The same storm is run at several shard counts, so the table doubles
//! as a blast-radius curve: more shards → a smaller fraction of the
//! campaign exposed to any single damaged partition.

use crate::faults::FaultPlan;
use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig};
use serde::Serialize;

/// Aggregated results of one shard-chaos campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardChaosOutcome {
    pub shards: usize,
    pub scans: usize,
    pub branches_total: usize,
    pub branches_completed: usize,
    pub completion_rate: f64,
    /// Side-effecting steps initiated twice at a facility (must be 0).
    pub duplicate_side_effects: usize,
    pub crashes: usize,
    pub recoveries: usize,
    /// In-flight ops re-attached from surviving journal records.
    pub reattached_ops: usize,
    /// Ops adopted from facility labels because their submission record
    /// was destroyed with a damaged shard tail.
    pub adopted_orphan_ops: usize,
    /// Scans that needed any evidence-based healing.
    pub degraded_scans: usize,
    /// Distinct shards wounded across the storm.
    pub damaged_shards: usize,
    /// Blast-radius invariant: every degraded scan lives on a damaged
    /// shard.
    pub damage_isolated: bool,
}

/// The full R3 report (what `experiments shard_recovery` prints).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardChaosReport {
    pub rows: Vec<ShardChaosOutcome>,
}

/// Run one shard-chaos campaign and return the drained simulator: the
/// R2 crash-storm schedule, with each crash additionally damaging one
/// shard image (kind cycling torn-group-commit → truncated tail →
/// corrupt byte).
pub fn run_shard_chaos_sim(n_scans: usize, seed: u64, shards: usize) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: FaultPlan::shard_chaos(seed, shards),
        durable_recovery: true,
        shard_count: shards,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

/// Aggregate a drained simulator into an outcome row.
pub fn shard_chaos_outcome(sim: &FacilitySim, scans: usize) -> ShardChaosOutcome {
    let total = scans * 2;
    let completed = sim.branches_completed();
    ShardChaosOutcome {
        shards: sim.cfg.shard_count,
        scans,
        branches_total: total,
        branches_completed: completed,
        completion_rate: if total > 0 {
            completed as f64 / total as f64
        } else {
            0.0
        },
        duplicate_side_effects: sim.duplicate_side_effects,
        crashes: sim.crash_count,
        recoveries: sim.recovery_count,
        reattached_ops: sim.reattached_ops,
        adopted_orphan_ops: sim.adopted_orphan_ops,
        degraded_scans: sim.degraded_scans.len(),
        damaged_shards: sim.damaged_shards_seen.len(),
        damage_isolated: sim.damage_isolated(),
    }
}

/// The R3 experiment: the same chaos storm at increasing shard counts.
pub fn shard_chaos_experiment(n_scans: usize, seed: u64) -> ShardChaosReport {
    let rows = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let sim = run_shard_chaos_sim(n_scans, seed, shards);
            shard_chaos_outcome(&sim, n_scans)
        })
        .collect();
    ShardChaosReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_storm_completes_without_duplicates() {
        for shards in [1usize, 4] {
            let sim = run_shard_chaos_sim(10, 7, shards);
            let o = shard_chaos_outcome(&sim, 10);
            assert_eq!(o.crashes, 3, "{shards} shards");
            assert_eq!(o.recoveries, 3, "{shards} shards");
            assert_eq!(
                o.duplicate_side_effects, 0,
                "{shards} shards duplicated work"
            );
            assert_eq!(
                (o.branches_completed, o.branches_total),
                (20, 20),
                "{shards} shards lost branches"
            );
        }
    }

    #[test]
    fn damage_degrades_only_the_wounded_shards() {
        let sim = run_shard_chaos_sim(10, 7, 4);
        let o = shard_chaos_outcome(&sim, 10);
        assert!(o.damage_isolated, "healing leaked past damaged shards");
        // three crashes wound at most three distinct partitions
        assert!(o.damaged_shards <= 3, "{} shards damaged", o.damaged_shards);
    }

    #[test]
    fn chaos_experiment_is_deterministic() {
        let a = shard_chaos_experiment(6, 11);
        let b = shard_chaos_experiment(6, 11);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 4);
    }
}
