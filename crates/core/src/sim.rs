//! The multi-facility discrete-event simulation.
//!
//! This is the paper's Figure 3 as an executable model: the acquisition
//! layer emits scans; the orchestration layer runs the `new_file_832`,
//! `nersc_recon_flow`, and `alcf_recon_flow` state machines; the movement
//! layer is the Globus transfer service over the ESnet topology; the
//! compute layer is SFAPI/Slurm (realtime QOS) at NERSC and Globus
//! Compute pilot jobs at ALCF; the access layer is the storage tiers +
//! catalogue the results land in. Every flow run is recorded in the
//! Prefect-substitute engine, which is what the Table 2 report queries.

use crate::scan::{Scan, ScanId, ScanWorkload};
use als_catalog::{raw_scan_dataset, recon_dataset, Catalog, DatasetPid, InstrumentMetadata};
use als_globus::compute::{AcquisitionMode, ComputeEndpoint, ComputeEvent, ComputeTaskId};
use als_globus::transfer::{
    EndpointId, TaskId, TransferEvent, TransferOptions, TransferService,
};
use als_globus::BandwidthMonitor;
use als_hpc::scheduler::{JobEvent, JobId, JobRequest, JobState, Qos};
use als_hpc::sfapi::{SfApiClient, SfApiServer};
use als_hpc::storage::{StorageTier, TierKind};
use als_netsim::{esnet_topology_with_nics, SiteId};
use als_orchestrator::engine::{FlowEngine, FlowRunId, FlowState, TaskState};
use als_orchestrator::limits::ConcurrencyLimits;
use als_orchestrator::schedule::Schedule;
use als_simcore::{ByteSize, EventQueue, SimDuration, SimInstant, SimRng};
use std::collections::BTreeMap;

/// Names of the three production flows (Table 2's rows).
pub const FLOW_NEW_FILE: &str = "new_file_832";
pub const FLOW_NERSC: &str = "nersc_recon_flow";
pub const FLOW_ALCF: &str = "alcf_recon_flow";

/// Simulation configuration (the ablation knobs live here).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Fail transfers immediately on permission errors (§5.3 remediation).
    pub fail_fast: bool,
    /// QOS for NERSC reconstruction jobs (paper: `realtime`).
    pub nersc_qos: Qos,
    /// ALCF node acquisition (paper: demand queue via Globus Compute).
    pub alcf_mode: AcquisitionMode,
    /// Verify checksums on Globus transfers (paper: enabled).
    pub verify_checksums: bool,
    /// Concurrent Globus transfer tasks.
    pub transfer_concurrency: usize,
    /// Nodes in the NERSC realtime partition slice.
    pub nersc_nodes: usize,
    /// Max pilot nodes the ALCF endpoint may hold.
    pub alcf_max_nodes: usize,
    /// Mean seconds between competing (non-ALS) NERSC job arrivals;
    /// `None` disables background load.
    pub background_mean_arrival_s: Option<f64>,
    /// Run the daily pruning flows.
    pub pruning_enabled: bool,
    /// Number of beamline servers feeding the pipeline (each brings its
    /// own 10 Gbps NIC — the §6 multi-beamline rollout).
    pub beamline_count: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 832,
            fail_fast: true,
            nersc_qos: Qos::Realtime,
            alcf_mode: AcquisitionMode::DemandQueue,
            verify_checksums: true,
            transfer_concurrency: 4,
            nersc_nodes: 8,
            alcf_max_nodes: 4,
            background_mean_arrival_s: Some(360.0),
            pruning_enabled: true,
            beamline_count: 1,
        }
    }
}

/// Which recon branch a transfer/job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    Nersc,
    Alcf,
}

/// Which transfer leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    ToHpc,
    Back,
}

/// Events driving the simulation.
#[derive(Debug, Clone)]
enum Ev {
    /// A scan begins acquiring.
    ScanStart(ScanId),
    /// The file writer finished saving the scan.
    ScanSaved(ScanId),
    /// `new_file_832` completed (staging + metadata ingestion done).
    NewFileDone(ScanId),
    /// Poll the Globus transfer service.
    PollTransfers,
    /// Poll the NERSC scheduler.
    PollNersc,
    /// Poll the ALCF compute endpoint.
    PollAlcf,
    /// Daily pruning flows fire.
    PruneTick,
    /// A competing (non-ALS) job arrives at NERSC.
    BackgroundArrival,
}

/// Calibration constants for the paper-scale cost models. Centralized so
/// the Table 2 calibration has one knob panel.
pub mod calib {
    /// new_file_832: fixed metadata-ingestion cost (s).
    pub const NEWFILE_INGEST_S: f64 = 4.0;
    /// new_file_832: median of the orchestration-jitter lognormal (s).
    pub const NEWFILE_JITTER_MED_S: f64 = 25.0;
    /// new_file_832: sigma of the jitter lognormal.
    pub const NEWFILE_JITTER_SIGMA: f64 = 1.5;
    /// new_file_832: jitter clamp (s).
    pub const NEWFILE_JITTER_MAX_S: f64 = 640.0;

    /// NERSC job: fixed startup (container, darks/flats, COR search) (s).
    pub const NERSC_JOB_FIXED_S: f64 = 200.0;
    /// NERSC job: reconstruction seconds per raw GiB (preprocessing +
    /// iterative solve + TIFF/Zarr writes on a 128-core node).
    pub const NERSC_RECON_S_PER_GIB: f64 = 52.0;

    /// ALCF function: median of the fixed-overhead lognormal (endpoint
    /// polling, function serialization, Eagle staging) (s).
    pub const ALCF_FIXED_MED_S: f64 = 560.0;
    /// ALCF function: sigma of the fixed-overhead lognormal.
    pub const ALCF_FIXED_SIGMA: f64 = 0.22;
    /// ALCF function: reconstruction seconds per raw GiB (GPU-assisted).
    pub const ALCF_RECON_S_PER_GIB: f64 = 13.0;

    /// Walltime margin over the expected runtime.
    pub const WALLTIME_MARGIN: f64 = 2.0;
}

/// The simulation state.
pub struct FacilitySim {
    pub cfg: SimConfig,
    queue: EventQueue<Ev>,
    rng: SimRng,
    pub engine: FlowEngine,
    pub limits: ConcurrencyLimits,
    pub catalog: Catalog,
    pub monitor: BandwidthMonitor,

    transfer: TransferService,
    ep_als: EndpointId,
    ep_nersc: EndpointId,
    ep_alcf: EndpointId,

    nersc: SfApiServer,
    nersc_client: SfApiClient,
    alcf: ComputeEndpoint,

    pub beamline_tier: StorageTier,
    pub cfs_tier: StorageTier,
    pub eagle_tier: StorageTier,
    pub hpss_tier: StorageTier,

    prune_schedule: Schedule,

    scans: BTreeMap<ScanId, Scan>,
    newfile_runs: BTreeMap<ScanId, FlowRunId>,
    branch_runs: BTreeMap<(ScanId, u8), FlowRunId>,
    transfer_map: BTreeMap<TaskId, (ScanId, Branch, Leg)>,
    job_map: BTreeMap<JobId, ScanId>,
    compute_map: BTreeMap<ComputeTaskId, ScanId>,
    raw_pids: BTreeMap<ScanId, DatasetPid>,

    /// Completed end-to-end scans (both branches finished).
    pub completed_scans: usize,
}

fn branch_key(b: Branch) -> u8 {
    match b {
        Branch::Nersc => 0,
        Branch::Alcf => 1,
    }
}

impl FacilitySim {
    pub fn new(cfg: SimConfig) -> Self {
        let mut transfer = TransferService::new(
            esnet_topology_with_nics(cfg.beamline_count.max(1)),
            cfg.transfer_concurrency,
        );
        let ep_als = transfer.register_endpoint(SiteId::Als);
        let ep_nersc = transfer.register_endpoint(SiteId::Nersc);
        let ep_alcf = transfer.register_endpoint(SiteId::Alcf);
        let rng = SimRng::seeded(cfg.seed);
        FacilitySim {
            queue: EventQueue::new(),
            rng,
            engine: FlowEngine::new(),
            limits: ConcurrencyLimits::production(),
            catalog: Catalog::new(),
            monitor: BandwidthMonitor::new(),
            transfer,
            ep_als,
            ep_nersc,
            ep_alcf,
            nersc: SfApiServer::new(cfg.nersc_nodes),
            nersc_client: SfApiClient::new("als"),
            alcf: ComputeEndpoint::new(cfg.alcf_mode, cfg.alcf_max_nodes),
            beamline_tier: StorageTier::new(TierKind::BeamlineData, ByteSize::from_tib(20)),
            cfs_tier: StorageTier::new(TierKind::Cfs, ByteSize::from_tib(500)),
            eagle_tier: StorageTier::new(TierKind::Eagle, ByteSize::from_tib(100)),
            hpss_tier: StorageTier::new(TierKind::Hpss, ByteSize::from_tib(10_000)),
            prune_schedule: Schedule::daily_pruning(SimInstant::ZERO),
            scans: BTreeMap::new(),
            newfile_runs: BTreeMap::new(),
            branch_runs: BTreeMap::new(),
            transfer_map: BTreeMap::new(),
            job_map: BTreeMap::new(),
            compute_map: BTreeMap::new(),
            raw_pids: BTreeMap::new(),
            completed_scans: 0,
            cfg,
        }
    }

    pub fn now(&self) -> SimInstant {
        self.queue.now()
    }

    /// Queue up `n` scans from a workload, with background load and
    /// pruning schedules armed.
    pub fn schedule_campaign(&mut self, workload: &mut ScanWorkload, n: usize) {
        let mut t = SimInstant::ZERO + SimDuration::from_secs(10);
        for _ in 0..n {
            let (scan, gap) = workload.next_scan(&mut self.rng);
            let id = scan.id;
            self.scans.insert(id, scan);
            self.queue.schedule_at(t, Ev::ScanStart(id));
            t += gap;
        }
        // competing NERSC load exists only for the campaign window —
        // pre-generated so the event queue drains when the work is done
        if let Some(mean) = self.cfg.background_mean_arrival_s {
            let mut bg = SimInstant::ZERO + SimDuration::from_secs_f64(self.rng.exponential(mean));
            while bg < t {
                self.queue.schedule_at(bg, Ev::BackgroundArrival);
                bg += SimDuration::from_secs_f64(self.rng.exponential(mean));
            }
        }
        if self.cfg.pruning_enabled {
            // pruning runs daily while scans are still being acquired
            while self.prune_schedule.next_fire() < t {
                let fire = self.prune_schedule.next_fire();
                self.queue.schedule_at(fire, Ev::PruneTick);
                self.prune_schedule.due(fire);
            }
        }
    }

    /// Run until no events remain (or an optional horizon passes).
    pub fn run(&mut self, horizon: Option<SimInstant>) {
        while let Some(t) = self.queue.peek_time() {
            if horizon.is_some_and(|h| t > h) {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.handle(now, ev);
        }
    }

    fn transfer_opts(&self) -> TransferOptions {
        TransferOptions {
            verify_checksum: self.cfg.verify_checksums,
            max_retries: 2,
            fail_fast: self.cfg.fail_fast,
        }
    }

    fn schedule_transfer_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.transfer.next_event_time(now) {
            self.queue.schedule_at(t.max(now), Ev::PollTransfers);
        }
    }

    fn schedule_nersc_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.nersc.scheduler().next_event_time() {
            self.queue.schedule_at(t.max(now), Ev::PollNersc);
        }
    }

    fn schedule_alcf_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.alcf.next_event_time() {
            self.queue.schedule_at(t.max(now), Ev::PollAlcf);
        }
    }

    fn handle(&mut self, now: SimInstant, ev: Ev) {
        match ev {
            Ev::ScanStart(id) => self.on_scan_start(now, id),
            Ev::ScanSaved(id) => self.on_scan_saved(now, id),
            Ev::NewFileDone(id) => self.on_new_file_done(now, id),
            Ev::PollTransfers => self.on_poll_transfers(now),
            Ev::PollNersc => self.on_poll_nersc(now),
            Ev::PollAlcf => self.on_poll_alcf(now),
            Ev::PruneTick => self.on_prune(now),
            Ev::BackgroundArrival => self.on_background(now),
        }
    }

    fn on_scan_start(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        // acquisition + the file writer flushing frames to beamline disk
        let write_time = self.beamline_tier.io_time(scan.size);
        self.queue
            .schedule_at(now + scan.acquisition + write_time, Ev::ScanSaved(id));
    }

    fn on_scan_saved(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        // store the raw file on the beamline data tier
        if self
            .beamline_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .is_err()
        {
            // beamline disk full: the flow fails outright (what the
            // pruning flows exist to prevent)
            let run = self.engine.create_run(FLOW_NEW_FILE, now);
            self.engine.start_run(run, now);
            self.engine.finish_run(run, FlowState::Failed, now);
            return;
        }
        // new_file_832: data movement between beamline servers + SciCat
        // ingestion + orchestration latency
        let run = self.engine.create_run(FLOW_NEW_FILE, now);
        self.engine.set_parameter(run, "scan", &scan.name);
        self.engine
            .set_parameter(run, "size_gib", &format!("{:.3}", scan.size.as_gib_f64()));
        self.engine.start_run(run, now);
        self.newfile_runs.insert(id, run);
        let staging = self.beamline_tier.io_time(scan.size);
        let jitter = SimDuration::from_secs_f64(
            self.rng
                .lognormal_med(calib::NEWFILE_JITTER_MED_S, calib::NEWFILE_JITTER_SIGMA)
                .clamp(1.0, calib::NEWFILE_JITTER_MAX_S),
        );
        let ingest = SimDuration::from_secs_f64(calib::NEWFILE_INGEST_S);
        let task = self
            .engine
            .start_task(run, "stage_and_ingest", Some(&format!("{}/ingest", scan.name)), now);
        let done = now + staging + ingest + jitter;
        self.engine
            .finish_task(run, task, TaskState::Completed, done, None);
        self.queue.schedule_at(done, Ev::NewFileDone(id));
    }

    fn on_new_file_done(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        if let Some(run) = self.newfile_runs.get(&id) {
            self.engine.finish_run(*run, FlowState::Completed, now);
        }
        // catalogue the raw dataset
        let dims = scan.dims();
        let raw = raw_scan_dataset(
            &scan.name,
            "beamline-user",
            now,
            scan.size,
            InstrumentMetadata {
                beamline: "8.3.2".into(),
                n_angles: dims.n_angles,
                detector_rows: dims.det_rows,
                detector_cols: dims.det_cols,
                pixel_size_um: 0.65,
                exposure_ms: 30.0,
            },
        );
        let raw_pid = raw.pid.clone();
        self.catalog.ingest(raw).ok();
        self.raw_pids.insert(id, raw_pid);

        // launch both file-based branches in parallel
        for branch in [Branch::Nersc, Branch::Alcf] {
            let flow_name = match branch {
                Branch::Nersc => FLOW_NERSC,
                Branch::Alcf => FLOW_ALCF,
            };
            let run = self.engine.create_run(flow_name, now);
            self.engine.set_parameter(run, "scan", &scan.name);
            self.engine.start_run(run, now);
            self.branch_runs.insert((id, branch_key(branch)), run);
            let dst = match branch {
                Branch::Nersc => self.ep_nersc,
                Branch::Alcf => self.ep_alcf,
            };
            let opts = self.transfer_opts();
            let task = self.transfer.submit(self.ep_als, dst, scan.size, opts, now);
            self.transfer_map.insert(task, (id, branch, Leg::ToHpc));
            let t = self
                .engine
                .start_task(run, "globus_copy_to_hpc", Some(&format!("{}/{flow_name}/copy", scan.name)), now);
            debug_assert_eq!(t, 0);
        }
        self.schedule_transfer_poll(now);
    }

    fn on_poll_transfers(&mut self, now: SimInstant) {
        let events = self.transfer.advance_to(now);
        for ev in events {
            match ev {
                TransferEvent::Succeeded { task, at } => {
                    let Some((id, branch, leg)) = self.transfer_map.remove(&task) else {
                        continue;
                    };
                    let scan = self.scans.get(&id).expect("scan exists").clone();
                    let size = match leg {
                        Leg::ToHpc => scan.size,
                        Leg::Back => scan.recon_output_size(),
                    };
                    if let Some(d) = self.transfer.task_duration(task) {
                        self.monitor.record(at, size, d);
                    }
                    match (branch, leg) {
                        (Branch::Nersc, Leg::ToHpc) => self.nersc_job_submit(at, id),
                        (Branch::Alcf, Leg::ToHpc) => self.alcf_invoke(at, id),
                        (_, Leg::Back) => self.finish_branch(at, id, branch, true),
                    }
                }
                TransferEvent::Failed { task, at, .. } => {
                    if let Some((id, branch, _)) = self.transfer_map.remove(&task) {
                        self.finish_branch(at, id, branch, false);
                    }
                }
                TransferEvent::Started { .. } | TransferEvent::Retrying { .. } => {}
            }
        }
        self.schedule_transfer_poll(now);
    }

    /// NERSC: stage to CFS, submit the realtime Slurm job through SFAPI.
    fn nersc_job_submit(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.cfs_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .ok();
        let gib = scan.size.as_gib_f64();
        // inside the job: copy CFS→pscratch, reconstruct, write TIFF+Zarr
        let stage = self.cfs_tier.io_time(scan.size);
        let recon = SimDuration::from_secs_f64(
            calib::NERSC_JOB_FIXED_S + calib::NERSC_RECON_S_PER_GIB * gib,
        );
        let runtime = stage + recon;
        let req = JobRequest {
            name: format!("recon_{}", scan.name),
            qos: self.cfg.nersc_qos,
            nodes: 1,
            runtime,
            walltime_limit: SimDuration::from_secs_f64(
                runtime.as_secs_f64() * calib::WALLTIME_MARGIN + 900.0,
            ),
        };
        match self.nersc_client.submit(&mut self.nersc, req, now) {
            Ok((job, _events)) => {
                self.job_map.insert(job, id);
                if let Some(&run) = self.branch_runs.get(&(id, branch_key(Branch::Nersc))) {
                    self.engine.start_task(
                        run,
                        "sfapi_slurm_job",
                        Some(&format!("{}/nersc/job", scan.name)),
                        now,
                    );
                }
                self.schedule_nersc_poll(now);
            }
            Err(_) => self.finish_branch(now, id, Branch::Nersc, false),
        }
    }

    /// ALCF: stage to Eagle, dispatch the reconstruction function via
    /// Globus Compute.
    fn alcf_invoke(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.eagle_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .ok();
        let gib = scan.size.as_gib_f64();
        let fixed = self
            .rng
            .lognormal_med(calib::ALCF_FIXED_MED_S, calib::ALCF_FIXED_SIGMA)
            .clamp(300.0, 1500.0);
        let runtime =
            SimDuration::from_secs_f64(fixed + calib::ALCF_RECON_S_PER_GIB * gib);
        let task = self.alcf.invoke(runtime, now);
        self.compute_map.insert(task, id);
        if let Some(&run) = self.branch_runs.get(&(id, branch_key(Branch::Alcf))) {
            self.engine.start_task(
                run,
                "globus_compute_recon",
                Some(&format!("{}/alcf/fn", scan.name)),
                now,
            );
        }
        self.schedule_alcf_poll(now);
    }

    fn on_poll_nersc(&mut self, now: SimInstant) {
        let events = self.nersc.scheduler_mut().advance_to(now);
        for ev in events {
            if let JobEvent::Finished { id: job, at, state } = ev {
                let Some(scan_id) = self.job_map.remove(&job) else {
                    continue; // background job
                };
                if state == JobState::Completed {
                    self.start_back_transfer(at, scan_id, Branch::Nersc);
                } else {
                    self.finish_branch(at, scan_id, Branch::Nersc, false);
                }
            }
        }
        self.schedule_nersc_poll(now);
    }

    fn on_poll_alcf(&mut self, now: SimInstant) {
        let events = self.alcf.advance_to(now);
        for ev in events {
            if let ComputeEvent::Finished { task, at } = ev {
                if let Some(scan_id) = self.compute_map.remove(&task) {
                    self.start_back_transfer(at, scan_id, Branch::Alcf);
                }
            }
        }
        self.schedule_alcf_poll(now);
    }

    /// Move the reconstruction products back to the beamline data server.
    fn start_back_transfer(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let src = match branch {
            Branch::Nersc => self.ep_nersc,
            Branch::Alcf => self.ep_alcf,
        };
        let opts = self.transfer_opts();
        let task = self
            .transfer
            .submit(src, self.ep_als, scan.recon_output_size(), opts, now);
        self.transfer_map.insert(task, (id, branch, Leg::Back));
        if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
            self.engine
                .start_task(run, "globus_copy_back", None, now);
        }
        self.schedule_transfer_poll(now);
    }

    /// Terminal transition for one branch of one scan.
    fn finish_branch(&mut self, now: SimInstant, id: ScanId, branch: Branch, ok: bool) {
        let Some(run) = self.branch_runs.get(&(id, branch_key(branch))).copied() else {
            return;
        };
        let scan = self.scans.get(&id).expect("scan exists").clone();
        if ok {
            // register the derived dataset with provenance to the raw scan
            if let Some(raw_pid) = self.raw_pids.get(&id) {
                let facility = match branch {
                    Branch::Nersc => "nersc",
                    Branch::Alcf => "alcf",
                };
                self.catalog
                    .ingest(recon_dataset(
                        &scan.name,
                        facility,
                        raw_pid,
                        now,
                        scan.recon_output_size(),
                    ))
                    .ok();
            }
            self.beamline_tier
                .put(
                    &format!(
                        "{}_recon_{}",
                        scan.name,
                        match branch {
                            Branch::Nersc => "nersc",
                            Branch::Alcf => "alcf",
                        }
                    ),
                    scan.recon_output_size(),
                    now,
                )
                .ok();
            self.engine.finish_run(run, FlowState::Completed, now);
            self.completed_scans += 1;
        } else {
            self.engine.finish_run(run, FlowState::Failed, now);
        }
    }

    fn on_prune(&mut self, now: SimInstant) {
        self.beamline_tier.prune(now);
        self.cfs_tier.prune(now);
        self.eagle_tier.prune(now);
    }

    fn on_background(&mut self, now: SimInstant) {
        // a competing regular-QOS job from another NERSC user
        let runtime = SimDuration::from_secs_f64(self.rng.lognormal_med(1200.0, 0.5).clamp(120.0, 7200.0));
        let nodes = 1 + self.rng.uniform_u64(0, 2) as usize;
        let req = JobRequest {
            name: "background".into(),
            qos: Qos::Regular,
            nodes: nodes.min(self.cfg.nersc_nodes),
            runtime,
            walltime_limit: runtime * 2.0,
        };
        self.nersc.scheduler_mut().submit(req, now);
        self.schedule_nersc_poll(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(n: usize, seed: u64) -> FacilitySim {
        let mut sim = FacilitySim::new(SimConfig {
            seed,
            ..Default::default()
        });
        let mut workload = ScanWorkload::production();
        sim.schedule_campaign(&mut workload, n);
        sim.run(None);
        sim
    }

    #[test]
    fn every_scan_produces_three_flow_runs() {
        let sim = run_small(5, 1);
        let q = sim.engine.query();
        assert_eq!(q.runs_of(FLOW_NEW_FILE).len(), 5);
        assert_eq!(q.runs_of(FLOW_NERSC).len(), 5);
        assert_eq!(q.runs_of(FLOW_ALCF).len(), 5);
    }

    #[test]
    fn all_flows_complete_in_a_healthy_campaign() {
        let sim = run_small(8, 2);
        let q = sim.engine.query();
        for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
            assert_eq!(
                q.success_rate(flow),
                Some(1.0),
                "{flow} should fully succeed"
            );
        }
        assert_eq!(sim.completed_scans, 16); // both branches × 8 scans
    }

    #[test]
    fn catalog_gets_raw_and_derived_datasets() {
        let sim = run_small(4, 3);
        // 4 raw + up to 8 recon datasets
        assert_eq!(sim.catalog.len(), 4 + 8);
        // provenance: each raw has two derived children
        let raws: Vec<_> = sim.catalog.search("scan").into_iter()
            .filter(|d| matches!(d.kind, als_catalog::DatasetKind::Raw))
            .map(|d| d.pid.clone())
            .collect();
        assert_eq!(raws.len(), 4);
        for pid in raws {
            assert_eq!(sim.catalog.derived_chain(&pid).len(), 2);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_small(6, 42);
        let b = run_small(6, 42);
        let qa = a.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        let qb = b.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        assert_eq!(qa, qb);
        let c = run_small(6, 43);
        let qc = c.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        assert_ne!(qa, qc);
    }

    #[test]
    fn flow_durations_are_in_plausible_bands() {
        let sim = run_small(12, 7);
        let q = sim.engine.query();
        let nf = q.table2_summary(FLOW_NEW_FILE, 100).unwrap();
        assert!(nf.median > 10.0 && nf.median < 300.0, "new_file med {}", nf.median);
        let nersc = q.table2_summary(FLOW_NERSC, 100).unwrap();
        assert!(
            nersc.median > 600.0 && nersc.median < 3000.0,
            "nersc med {}",
            nersc.median
        );
        let alcf = q.table2_summary(FLOW_ALCF, 100).unwrap();
        assert!(
            alcf.median > 500.0 && alcf.median < 2500.0,
            "alcf med {}",
            alcf.median
        );
    }

    #[test]
    fn beamline_tier_accumulates_raw_and_recon_files() {
        let sim = run_small(3, 9);
        // 3 raw + 6 recon outputs
        assert_eq!(sim.beamline_tier.file_count(), 9);
    }
}
