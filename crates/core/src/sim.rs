//! The multi-facility discrete-event simulation.
//!
//! This is the paper's Figure 3 as an executable model: the acquisition
//! layer emits scans; the orchestration layer runs the `new_file_832`,
//! `nersc_recon_flow`, and `alcf_recon_flow` state machines; the movement
//! layer is the Globus transfer service over the ESnet topology; the
//! compute layer is a fleet of pluggable [`FacilityController`] backends
//! — SFAPI/Slurm (realtime QOS) at NERSC, Globus Compute pilot jobs at
//! ALCF, and batch Slurm with long queue holds at OLCF; the access layer
//! is the storage tiers + catalogue the results land in. Every flow run
//! is recorded in the Prefect-substitute engine, which is what the
//! Table 2 report queries.
//!
//! Branch placement is delegated to the cost-aware [`Router`]: every
//! branch has a home facility, and under rolling outages the router
//! re-targets it — possibly more than once — to the cheapest admissible
//! site by queue wait × estimated transfer time, cancelling work
//! stranded at abandoned sites and re-admitting recovered facilities
//! through dedicated probe jobs.

use crate::faults::{CrashDamage, FaultKind, FaultPlan};
use crate::scan::{Scan, ScanId, ScanWorkload};
use als_catalog::{raw_scan_dataset, recon_dataset, Catalog, DatasetPid, InstrumentMetadata};
use als_facility::{
    AlcfController, CandidateView, Facility, FacilityController, FacilityFault, FacilityTask,
    NerscController, OlcfController, Router, RouterConfig, RouterMode, SubmitSpec, PROBE_PREFIX,
    RECON_PREFIX,
};
use als_globus::compute::AcquisitionMode;
use als_globus::transfer::{EndpointId, TaskId, TransferEvent, TransferOptions, TransferService};
use als_globus::BandwidthMonitor;
use als_hpc::circuit::{BreakerConfig, CircuitBreaker};
use als_hpc::health::{Environment, HealthMonitor};
use als_hpc::scheduler::Qos;
use als_hpc::storage::{StorageTier, TierKind};
use als_netsim::{esnet_topology_with_nics, SiteId};
use als_orchestrator::engine::{FlowEngine, FlowRunId, FlowState, TaskState};
use als_orchestrator::schedule::Schedule;
use als_orchestrator::{
    shard_of_key, transfer_fate, Claim, ExternalKind, OpFate, ShardedOrchestrator,
};
use als_simcore::{ByteSize, EventQueue, SimDuration, SimInstant, SimRng};
use als_telemetry::{Registry, SpanId, SpanOutcome, Stage, TraceEvent, TraceStore};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Names of the three production flows (Table 2's rows).
pub const FLOW_NEW_FILE: &str = "new_file_832";
pub const FLOW_NERSC: &str = "nersc_recon_flow";
pub const FLOW_ALCF: &str = "alcf_recon_flow";

/// Simulation configuration (the ablation knobs live here).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Fail transfers immediately on permission errors (§5.3 remediation).
    pub fail_fast: bool,
    /// QOS for NERSC reconstruction jobs (paper: `realtime`). Router
    /// health probes ride the same QOS so a recovered facility is
    /// re-admitted promptly even behind a background-job backlog.
    pub nersc_qos: Qos,
    /// ALCF node acquisition (paper: demand queue via Globus Compute).
    pub alcf_mode: AcquisitionMode,
    /// Verify checksums on Globus transfers (paper: enabled).
    pub verify_checksums: bool,
    /// Concurrent Globus transfer tasks.
    pub transfer_concurrency: usize,
    /// Nodes in the NERSC realtime partition slice.
    pub nersc_nodes: usize,
    /// Max pilot nodes the ALCF endpoint may hold.
    pub alcf_max_nodes: usize,
    /// Whether the OLCF batch facility participates in the fleet.
    pub olcf_enabled: bool,
    /// Nodes in the OLCF batch partition slice.
    pub olcf_nodes: usize,
    /// Mean seconds between competing (non-ALS) NERSC job arrivals;
    /// `None` disables background load.
    pub background_mean_arrival_s: Option<f64>,
    /// Run the daily pruning flows.
    pub pruning_enabled: bool,
    /// Number of beamline servers feeding the pipeline (each brings its
    /// own 10 Gbps NIC — the §6 multi-beamline rollout).
    pub beamline_count: usize,
    /// Deterministic fault schedule replayed during the campaign
    /// (default: none — a healthy campaign).
    pub faults: FaultPlan,
    /// Route recon branches away from an unhealthy facility (circuit
    /// breakers + redirects, the §5.3 remediation). With an empty fault
    /// plan this changes nothing.
    pub failover_enabled: bool,
    /// Routing policy: legacy one-shot failover or cost-aware N-way.
    pub router_mode: RouterMode,
    /// Persist the orchestrator's write-ahead journal and recover from it
    /// after a crash. When `false`, a crashed orchestrator restarts empty
    /// and falls back to rescanning facility state (the measured
    /// baseline for the recovery experiment).
    pub durable_recovery: bool,
    /// Journal partitions the orchestrator shards its state across.
    /// Keys for one scan land on one shard, so a damaged shard degrades
    /// only that shard's flows.
    pub shard_count: usize,
    /// Group-commit batch per shard journal: records buffered per
    /// durable write. `<= 1` writes through on every record.
    pub group_commit_batch: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 832,
            fail_fast: true,
            nersc_qos: Qos::Realtime,
            alcf_mode: AcquisitionMode::DemandQueue,
            verify_checksums: true,
            transfer_concurrency: 4,
            nersc_nodes: 8,
            alcf_max_nodes: 4,
            olcf_enabled: true,
            olcf_nodes: 16,
            background_mean_arrival_s: Some(360.0),
            pruning_enabled: true,
            beamline_count: 1,
            faults: FaultPlan::none(),
            failover_enabled: true,
            router_mode: RouterMode::CostAware,
            durable_recovery: true,
            shard_count: 4,
            group_commit_batch: 32,
        }
    }
}

/// Which recon branch a flow run belongs to (its *home* identity; the
/// executing facility may differ after a redirect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    Nersc,
    Alcf,
}

/// Which transfer leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    ToHpc,
    Back,
}

/// Events driving the simulation.
#[derive(Debug, Clone)]
enum Ev {
    /// A scan begins acquiring.
    ScanStart(ScanId),
    /// The file writer finished saving the scan.
    ScanSaved(ScanId),
    /// `new_file_832` completed (staging + metadata ingestion done). The
    /// second field is the orchestrator epoch that scheduled it: events
    /// queued by a dead incarnation are ignored by its successor.
    NewFileDone(ScanId, u32),
    /// Poll the Globus transfer service.
    PollTransfers,
    /// Poll the facility with this [`Facility::key`].
    PollFac(u8),
    /// Daily pruning flows fire.
    PruneTick,
    /// A competing (non-ALS) job arrives at NERSC.
    BackgroundArrival,
    /// The `i`-th fault window of the plan opens.
    FaultStart(usize),
    /// The `i`-th fault window of the plan closes.
    FaultEnd(usize),
    /// Facilities emit heartbeats; the router checks for staleness.
    HealthTick,
    /// Deadline for a facility operation (facility-qualified handle): if
    /// still live, it is stranded behind an outage — cancel it remotely
    /// and re-route.
    OpDeadline(u64),
    /// The `i`-th orchestrator crash of the plan: the coordinator process
    /// dies, losing all in-memory state.
    CrashStart(usize),
    /// A new orchestrator incarnation comes up for crash `i`.
    CrashEnd(usize),
}

/// Re-attach context journaled with every external operation, enough for
/// a recovered incarnation to rebuild its dispatch tables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct OpCtx {
    scan: u32,
    /// Flow branch served (0 = NERSC flow, 1 = ALCF flow).
    branch: u8,
    /// Transfer leg (0 = to HPC, 1 = back); 0 for jobs/invocations.
    leg: u8,
    /// Facility actually executing ([`Facility::key`]).
    fac: u8,
}

/// Calibration constants for the paper-scale cost models. Centralized so
/// the Table 2 calibration has one knob panel.
pub mod calib {
    /// new_file_832: fixed metadata-ingestion cost (s).
    pub const NEWFILE_INGEST_S: f64 = 4.0;
    /// new_file_832: median of the orchestration-jitter lognormal (s).
    pub const NEWFILE_JITTER_MED_S: f64 = 25.0;
    /// new_file_832: sigma of the jitter lognormal.
    pub const NEWFILE_JITTER_SIGMA: f64 = 1.5;
    /// new_file_832: jitter clamp (s).
    pub const NEWFILE_JITTER_MAX_S: f64 = 640.0;

    /// NERSC job: fixed startup (container, darks/flats, COR search) (s).
    pub const NERSC_JOB_FIXED_S: f64 = 200.0;
    /// NERSC job: reconstruction seconds per raw GiB (preprocessing +
    /// iterative solve + TIFF/Zarr writes on a 128-core node).
    pub const NERSC_RECON_S_PER_GIB: f64 = 52.0;

    /// ALCF function: median of the fixed-overhead lognormal (endpoint
    /// polling, function serialization, Eagle staging) (s).
    pub const ALCF_FIXED_MED_S: f64 = 560.0;
    /// ALCF function: sigma of the fixed-overhead lognormal.
    pub const ALCF_FIXED_SIGMA: f64 = 0.22;
    /// ALCF function: reconstruction seconds per raw GiB (GPU-assisted).
    pub const ALCF_RECON_S_PER_GIB: f64 = 13.0;

    /// OLCF job: fixed startup on a Frontier batch node (s) — the
    /// 15-minute queue hold is separate, applied by the controller.
    pub const OLCF_JOB_FIXED_S: f64 = 420.0;
    /// OLCF job: reconstruction seconds per raw GiB.
    pub const OLCF_RECON_S_PER_GIB: f64 = 18.0;

    /// Walltime margin over the expected runtime.
    pub const WALLTIME_MARGIN: f64 = 2.0;
}

/// The simulation state.
pub struct FacilitySim {
    pub cfg: SimConfig,
    queue: EventQueue<Ev>,
    rng: SimRng,
    /// The durable orchestrator core, sharded across journal partitions:
    /// flow engine + idempotency store + concurrency limits, every
    /// mutation write-ahead journaled on the owning shard.
    pub orch: ShardedOrchestrator,
    pub catalog: Catalog,
    pub monitor: BandwidthMonitor,

    transfer: TransferService,
    ep_als: EndpointId,
    ep_nersc: EndpointId,
    ep_alcf: EndpointId,
    ep_olcf: EndpointId,

    /// The facility fleet, behind the [`FacilityController`] seam.
    facs: Vec<Box<dyn FacilityController>>,

    pub beamline_tier: StorageTier,
    pub cfs_tier: StorageTier,
    pub eagle_tier: StorageTier,
    pub orion_tier: StorageTier,
    pub hpss_tier: StorageTier,

    prune_schedule: Schedule,

    scans: BTreeMap<ScanId, Scan>,
    newfile_runs: BTreeMap<ScanId, FlowRunId>,
    branch_runs: BTreeMap<(ScanId, u8), FlowRunId>,
    /// Live transfers → (scan, flow branch, leg, executing facility the
    /// HPC-side endpoint belongs to).
    transfer_map: BTreeMap<TaskId, (ScanId, Branch, Leg, Facility)>,
    /// Live facility operations (facility-qualified handles) → the
    /// (scan, *flow* branch) they serve. After a redirect an ALCF-branch
    /// flow may execute at NERSC or OLCF, so the value is the branch
    /// identity, not the facility — the facility is in the handle.
    op_map: BTreeMap<u64, (ScanId, Branch)>,
    raw_pids: BTreeMap<ScanId, DatasetPid>,

    /// Facility actually executing each flow branch (differs from the
    /// branch's home facility after a redirect).
    exec_site: BTreeMap<(ScanId, u8), Facility>,
    /// Per-branch redirect history: `(facility, recoveries-at-
    /// abandonment)` pairs, in abandonment order. Bounds hops and kills
    /// A→B→A ping-pong within one health epoch (see [`Router::select`]).
    route_history: BTreeMap<(ScanId, u8), Vec<(Facility, u32)>>,
    /// Facility heartbeats (§5.3).
    pub health: HealthMonitor,
    /// The N-way router: per-facility breakers, probe lifecycle, and the
    /// audit log of every placement decision.
    pub router: Router,
    /// Facilities whose heartbeats an outage is suppressing.
    hb_suppressed: BTreeSet<Facility>,
    /// In-flight router health probes (facility-qualified handles).
    probe_ops: BTreeMap<u64, Facility>,
    probe_seq: u64,

    /// Completed end-to-end scans (both branches finished).
    pub completed_scans: usize,
    /// Branch redirects performed.
    pub failover_count: usize,
    /// Jobs/invocations cancelled remotely after missing their deadline
    /// or being swept from an abandoned facility.
    pub remote_cancel_count: usize,

    /// Orchestrator incarnation counter; bumped at every restart so stale
    /// events queued by a dead incarnation can be recognised and dropped.
    epoch: u32,
    /// The coordinator process is currently dead.
    orchestrator_down: bool,
    /// Per-shard journal bytes that survive a crash (durable mode only),
    /// after any configured [`CrashDamage`] has been applied.
    persisted_wal: Option<Vec<Vec<u8>>>,
    /// Scans saved while the coordinator was dead, ingested at restart.
    backlog: Vec<ScanId>,
    /// Branches already counted in `completed_scans` (guards against
    /// double-counting when a rescan re-completes pre-crash work).
    branch_completed: BTreeSet<(ScanId, u8)>,
    /// Side-effect ledger (measurement infrastructure, outside the
    /// simulated orchestrator): key → finished. A second `begin` on a key
    /// that was already initiated is duplicated facility work.
    ledger: BTreeMap<String, bool>,
    /// When each scan started acquiring (for end-to-end latency).
    scan_started: BTreeMap<ScanId, SimInstant>,
    /// End-to-end scan-start → branch-completion latencies (s).
    pub branch_latencies: Vec<f64>,
    /// Side-effecting steps initiated twice (the recovery experiment's
    /// duplicate-work metric).
    pub duplicate_side_effects: usize,
    /// Orchestrator crashes suffered.
    pub crash_count: usize,
    /// Successful journal recoveries performed.
    pub recovery_count: usize,
    /// External operations re-attached from the journal after a restart.
    pub reattached_ops: usize,
    /// Live facility jobs cancelled because the journal disowned them.
    pub orphan_cancel_count: usize,

    /// Beamline-side staging workers in flight: scan → when the worker
    /// finishes. The worker is facility infrastructure, not coordinator
    /// state — it survives coordinator crashes and finishes its job
    /// whether or not the journal remembers asking.
    ingest_worker: BTreeMap<ScanId, SimInstant>,
    /// Facility operations adopted at recovery because the journal lost
    /// their submission record (damaged shards only).
    pub adopted_orphan_ops: usize,

    /// The fleet-wide metrics registry: the orchestrator shards, the
    /// router, the bandwidth monitor, and the sim itself all export into
    /// this one spine. Shared so callers (experiments, benches) can
    /// snapshot it while the sim runs.
    pub registry: Arc<Registry>,
    /// Span-id allocator. Monotone across restarts: a durable recovery
    /// resumes it above the highest journaled id.
    next_span: SpanId,
    /// Open ingest spans by scan.
    ingest_spans: BTreeMap<ScanId, SpanId>,
    /// Open transfer/back-transfer spans by Globus task.
    transfer_spans: BTreeMap<TaskId, SpanId>,
    /// Open queue-wait spans by facility op: `(span, submitted-at,
    /// expected in-job runtime)` — the runtime splits queue-wait from
    /// recon when the op resolves.
    op_spans: BTreeMap<u64, (SpanId, SimInstant, SimDuration)>,
    /// Span a branch's last failure closed, consumed as the `parent`
    /// link of the replacement span the redirect opens.
    redirect_parent: BTreeMap<(ScanId, u8), SpanId>,
    /// Router decision audit (`RouteDecision::note_value`) waiting to be
    /// attached as a Note on the branch's next transfer span.
    pending_route_note: BTreeMap<(ScanId, u8), String>,
    /// Scans that needed evidence-based healing (label adoption, staging
    /// worker re-detection, catalogue evidence) because journal records
    /// were destroyed — the blast radius of shard damage.
    pub degraded_scans: BTreeSet<u32>,
    /// Shards whose journals were damaged across all crashes suffered.
    pub damaged_shards_seen: BTreeSet<usize>,
}

fn branch_key(b: Branch) -> u8 {
    match b {
        Branch::Nersc => 0,
        Branch::Alcf => 1,
    }
}

/// The branch's *name* — used for flow naming and product files, which
/// stay keyed to the home identity even when a redirect ran the work
/// elsewhere.
fn branch_name(b: Branch) -> &'static str {
    match b {
        Branch::Nersc => "nersc",
        Branch::Alcf => "alcf",
    }
}

/// The branch's home facility.
fn home_fac(b: Branch) -> Facility {
    match b {
        Branch::Nersc => Facility::Nersc,
        Branch::Alcf => Facility::Alcf,
    }
}

fn flow_of(b: Branch) -> &'static str {
    match b {
        Branch::Nersc => FLOW_NERSC,
        Branch::Alcf => FLOW_ALCF,
    }
}

fn branch_from_key(k: u8) -> Branch {
    if k == 0 {
        Branch::Nersc
    } else {
        Branch::Alcf
    }
}

/// Facility heartbeat cadence (and how stale one may get before the
/// router trips the facility's breaker).
const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_secs(60);
const HEARTBEAT_FRESHNESS: SimDuration = SimDuration::from_secs(180);
/// Idempotency-claim lease: long enough to cover any single step, short
/// enough that a wedged holder eventually loses the key.
const CLAIM_LEASE: SimDuration = SimDuration::from_secs(6 * 3600);
/// Router health-probe shape: a tiny single-node canary job.
const PROBE_RUNTIME: SimDuration = SimDuration::from_secs(60);
const PROBE_WALLTIME: SimDuration = SimDuration::from_secs(600);

impl FacilitySim {
    pub fn new(cfg: SimConfig) -> Self {
        let mut transfer = TransferService::new(
            esnet_topology_with_nics(cfg.beamline_count.max(1)),
            cfg.transfer_concurrency,
        );
        let ep_als = transfer.register_endpoint(SiteId::Als);
        let ep_nersc = transfer.register_endpoint(SiteId::Nersc);
        let ep_alcf = transfer.register_endpoint(SiteId::Alcf);
        let ep_olcf = transfer.register_endpoint(SiteId::Olcf);
        let rng = SimRng::seeded(cfg.seed);
        let mut facs: Vec<Box<dyn FacilityController>> = vec![
            Box::new(NerscController::new(cfg.nersc_nodes)),
            Box::new(AlcfController::new(cfg.alcf_mode, cfg.alcf_max_nodes)),
        ];
        if cfg.olcf_enabled {
            facs.push(Box::new(OlcfController::new(cfg.olcf_nodes)));
        }
        let mut health = HealthMonitor::new();
        for c in &facs {
            health.register(
                c.facility().name(),
                Environment::Production,
                HEARTBEAT_FRESHNESS,
            );
        }
        let enabled: Vec<Facility> = facs.iter().map(|c| c.facility()).collect();
        let mut router = Router::new(
            RouterConfig {
                mode: cfg.router_mode,
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: SimDuration::from_mins(10),
                },
                ..RouterConfig::default()
            },
            &enabled,
        );
        // one registry spine for the whole fleet: shard journals, the
        // router, the WAN monitor, and the sim's own spans/counters
        let registry = Arc::new(Registry::new());
        let mut orch = ShardedOrchestrator::production(
            "orch-0",
            SimInstant::ZERO,
            cfg.shard_count.max(1),
            cfg.group_commit_batch,
        );
        orch.instrument(&registry);
        router.instrument(&registry);
        let mut monitor = BandwidthMonitor::new();
        monitor.instrument(&registry);
        FacilitySim {
            queue: EventQueue::new(),
            rng,
            orch,
            catalog: Catalog::new(),
            monitor,
            transfer,
            ep_als,
            ep_nersc,
            ep_alcf,
            ep_olcf,
            facs,
            beamline_tier: StorageTier::new(TierKind::BeamlineData, ByteSize::from_tib(20)),
            cfs_tier: StorageTier::new(TierKind::Cfs, ByteSize::from_tib(500)),
            eagle_tier: StorageTier::new(TierKind::Eagle, ByteSize::from_tib(100)),
            orion_tier: StorageTier::new(TierKind::Orion, ByteSize::from_tib(700)),
            hpss_tier: StorageTier::new(TierKind::Hpss, ByteSize::from_tib(10_000)),
            prune_schedule: Schedule::daily_pruning(SimInstant::ZERO),
            scans: BTreeMap::new(),
            newfile_runs: BTreeMap::new(),
            branch_runs: BTreeMap::new(),
            transfer_map: BTreeMap::new(),
            op_map: BTreeMap::new(),
            raw_pids: BTreeMap::new(),
            exec_site: BTreeMap::new(),
            route_history: BTreeMap::new(),
            health,
            router,
            hb_suppressed: BTreeSet::new(),
            probe_ops: BTreeMap::new(),
            probe_seq: 0,
            completed_scans: 0,
            failover_count: 0,
            remote_cancel_count: 0,
            epoch: 0,
            orchestrator_down: false,
            persisted_wal: None,
            backlog: Vec::new(),
            branch_completed: BTreeSet::new(),
            ledger: BTreeMap::new(),
            scan_started: BTreeMap::new(),
            branch_latencies: Vec::new(),
            duplicate_side_effects: 0,
            crash_count: 0,
            recovery_count: 0,
            reattached_ops: 0,
            orphan_cancel_count: 0,
            ingest_worker: BTreeMap::new(),
            adopted_orphan_ops: 0,
            degraded_scans: BTreeSet::new(),
            damaged_shards_seen: BTreeSet::new(),
            registry,
            next_span: 0,
            ingest_spans: BTreeMap::new(),
            transfer_spans: BTreeMap::new(),
            op_spans: BTreeMap::new(),
            redirect_parent: BTreeMap::new(),
            pending_route_note: BTreeMap::new(),
            cfg,
        }
    }

    /// The fleet-wide trace store: every journaled span event merged
    /// across shards. In durable mode this is exactly what a recovered
    /// incarnation would rebuild from the WAL.
    pub fn traces(&self) -> TraceStore {
        self.orch.merged_traces()
    }

    // ---- flow-scoped trace spans (journaled next to orchestrator
    // state, so recovery replays them) ----

    fn span_start(
        &mut self,
        now: SimInstant,
        scan: &str,
        stage: Stage,
        facility: &str,
        parent: Option<SpanId>,
    ) -> SpanId {
        let span = self.next_span;
        self.next_span += 1;
        self.orch.record_span(
            scan,
            TraceEvent::Start {
                scan: scan.to_string(),
                span,
                parent,
                stage,
                facility: facility.to_string(),
                at: now,
            },
        );
        span
    }

    fn span_end(&mut self, now: SimInstant, scan: &str, span: SpanId, outcome: SpanOutcome) {
        self.orch.record_span(
            scan,
            TraceEvent::End {
                scan: scan.to_string(),
                span,
                at: now,
                outcome,
            },
        );
    }

    fn span_note(&mut self, now: SimInstant, scan: &str, span: SpanId, key: &str, value: &str) {
        self.orch.record_span(
            scan,
            TraceEvent::Note {
                scan: scan.to_string(),
                span,
                at: now,
                key: key.to_string(),
                value: value.to_string(),
            },
        );
    }

    /// Close the queue-wait span of a resolved facility op. On success
    /// the in-job runtime journaled at submit time splits the interval:
    /// queue-wait ends (and a synthesized recon span starts) at
    /// `at - runtime`. Returns the closed span so failure paths can
    /// thread it as the redirect parent.
    fn resolve_op_span(
        &mut self,
        op: u64,
        scan: &str,
        at: SimInstant,
        outcome: SpanOutcome,
    ) -> Option<SpanId> {
        let (span, submitted, runtime) = self.op_spans.remove(&op)?;
        if outcome == SpanOutcome::Ok {
            let qend = submitted.max(at - runtime);
            self.span_end(qend, scan, span, SpanOutcome::Ok);
            let fac = Facility::decode_op(op)
                .map(|(f, _)| f.name())
                .unwrap_or("unknown");
            let recon = self.span_start(qend, scan, Stage::Recon, fac, None);
            self.span_end(at, scan, recon, SpanOutcome::Ok);
        } else {
            self.span_end(at, scan, span, outcome);
        }
        Some(span)
    }

    pub fn now(&self) -> SimInstant {
        self.queue.now()
    }

    /// The live incarnation's flow-run database (the Table 2 source),
    /// merged across shards into one owned engine.
    pub fn engine(&self) -> FlowEngine {
        self.orch.merged_engine()
    }

    /// Which journal shard a scan's keys and runs live on.
    pub fn shard_of_scan(&self, name: &str) -> usize {
        shard_of_key(name, self.orch.shard_count())
    }

    /// Does the shard-damage blast radius hold? Every scan that needed
    /// evidence-based healing (rather than plain journal replay) must
    /// live on a shard whose journal was actually damaged.
    pub fn damage_isolated(&self) -> bool {
        self.degraded_scans.iter().all(|&s| {
            self.scans.get(&ScanId(s)).is_some_and(|scan| {
                self.damaged_shards_seen
                    .contains(&self.shard_of_scan(&scan.name))
            })
        })
    }

    /// Recon branches that physically delivered their product back to the
    /// beamline (counted at the sim level, so it survives orchestrator
    /// crashes in both durable and baseline modes).
    pub fn branches_completed(&self) -> usize {
        self.branch_completed.len()
    }

    /// The facility's circuit breaker (owned by the router).
    pub fn breaker(&self, f: Facility) -> &CircuitBreaker {
        self.router.breaker(f)
    }

    /// The most facilities any single branch abandoned during the
    /// campaign (0 = nothing ever re-routed; 2 = some branch degraded
    /// through two sites, e.g. NERSC → ALCF → OLCF).
    pub fn max_route_hops(&self) -> usize {
        self.route_history
            .values()
            .map(|v| v.len())
            .max()
            .unwrap_or(0)
    }

    /// Live reconstruction operations across the whole fleet (stranded-
    /// work audit: zero once a campaign has drained).
    pub fn live_recon_ops(&self) -> usize {
        self.facs
            .iter()
            .map(|c| {
                c.labeled_ops()
                    .iter()
                    .filter(|(op, _)| c.op_fate(*op) == OpFate::Live)
                    .count()
            })
            .sum()
    }

    /// Facility operations the orchestrator still considers open.
    pub fn open_exec_ops(&self) -> usize {
        self.op_map.len()
    }

    // ---- facility fleet access ----

    fn fac(&self, f: Facility) -> &dyn FacilityController {
        self.facs
            .iter()
            .find(|c| c.facility() == f)
            .expect("facility enabled")
            .as_ref()
    }

    fn fac_mut(&mut self, f: Facility) -> &mut dyn FacilityController {
        self.facs
            .iter_mut()
            .find(|c| c.facility() == f)
            .expect("facility enabled")
            .as_mut()
    }

    fn fac_endpoint(&self, f: Facility) -> EndpointId {
        match f {
            Facility::Nersc => self.ep_nersc,
            Facility::Alcf => self.ep_alcf,
            Facility::Olcf => self.ep_olcf,
        }
    }

    /// Is the health/heartbeat machinery live this run? (Heartbeat ticks
    /// are only scheduled for fault-injected campaigns with failover.)
    fn health_armed(&self) -> bool {
        self.cfg.failover_enabled && !self.cfg.faults.is_empty()
    }

    // ---- idempotency keys (facility-qualified: a redirect is a fresh
    // claim, not a duplicate of the original site's work) ----

    fn scan_name(&self, id: ScanId) -> String {
        self.scans.get(&id).expect("scan exists").name.clone()
    }

    fn ingest_key(&self, id: ScanId) -> String {
        format!("{}/ingest", self.scan_name(id))
    }

    fn copy_key(&self, id: ScanId, branch: Branch, fac: Facility) -> String {
        format!(
            "{}/{}/copy@{}",
            self.scan_name(id),
            flow_of(branch),
            fac.name()
        )
    }

    fn exec_key(&self, id: ScanId, branch: Branch, fac: Facility) -> String {
        format!(
            "{}/{}/exec@{}",
            self.scan_name(id),
            flow_of(branch),
            fac.name()
        )
    }

    fn back_key(&self, id: ScanId, branch: Branch, fac: Facility) -> String {
        format!(
            "{}/{}/back@{}",
            self.scan_name(id),
            flow_of(branch),
            fac.name()
        )
    }

    fn op_ctx(&self, id: ScanId, branch: Branch, leg: Leg, fac: Facility) -> String {
        let ctx = OpCtx {
            scan: id.0,
            branch: branch_key(branch),
            leg: match leg {
                Leg::ToHpc => 0,
                Leg::Back => 1,
            },
            fac: fac.key(),
        };
        serde_json::to_string(&ctx).expect("ctx serializes")
    }

    // ---- the side-effect ledger (duplicate-work measurement) ----

    fn ledger_begin(&mut self, key: &str) {
        if self.ledger.contains_key(key) {
            self.duplicate_side_effects += 1;
        }
        self.ledger.insert(key.to_string(), false);
    }

    fn ledger_done(&mut self, key: &str) {
        self.ledger.insert(key.to_string(), true);
    }

    fn ledger_abort(&mut self, key: &str) {
        // a genuine failure releases the key: retrying it is recovery
        // work, not duplicated work
        self.ledger.remove(key);
    }

    /// Queue up `n` scans from a workload, with background load and
    /// pruning schedules armed.
    pub fn schedule_campaign(&mut self, workload: &mut ScanWorkload, n: usize) {
        let mut t = SimInstant::ZERO + SimDuration::from_secs(10);
        for _ in 0..n {
            let (scan, gap) = workload.next_scan(&mut self.rng);
            let id = scan.id;
            self.scans.insert(id, scan);
            self.queue.schedule_at(t, Ev::ScanStart(id));
            t += gap;
        }
        // competing NERSC load exists only for the campaign window —
        // pre-generated so the event queue drains when the work is done
        if let Some(mean) = self.cfg.background_mean_arrival_s {
            let mut bg = SimInstant::ZERO + SimDuration::from_secs_f64(self.rng.exponential(mean));
            while bg < t {
                self.queue.schedule_at(bg, Ev::BackgroundArrival);
                bg += SimDuration::from_secs_f64(self.rng.exponential(mean));
            }
        }
        if self.cfg.pruning_enabled {
            // pruning runs daily while scans are still being acquired
            while self.prune_schedule.next_fire() < t {
                let fire = self.prune_schedule.next_fire();
                self.queue.schedule_at(fire, Ev::PruneTick);
                self.prune_schedule.due(fire);
            }
        }
        // arm the fault plan + the heartbeat/health machinery (windows
        // and heartbeats are pre-scheduled so the event queue stays
        // finite and the campaign drains)
        let faults = self.cfg.faults.clone();
        for (i, w) in faults.windows.iter().enumerate() {
            self.queue.schedule_at(w.start, Ev::FaultStart(i));
            self.queue.schedule_at(w.end, Ev::FaultEnd(i));
        }
        for (i, c) in faults.orchestrator_crashes.iter().enumerate() {
            self.queue.schedule_at(c.at, Ev::CrashStart(i));
            self.queue.schedule_at(c.restart_at(), Ev::CrashEnd(i));
        }
        if self.health_armed() {
            let mut horizon = t + SimDuration::from_hours(3);
            for w in &faults.windows {
                horizon = horizon.max(w.end + SimDuration::from_hours(2));
            }
            for c in &faults.orchestrator_crashes {
                horizon = horizon.max(c.restart_at() + SimDuration::from_hours(2));
            }
            let mut ht = SimInstant::ZERO;
            while ht < horizon {
                self.queue.schedule_at(ht, Ev::HealthTick);
                ht += HEARTBEAT_PERIOD;
            }
        }
    }

    /// Run until no events remain (or an optional horizon passes).
    pub fn run(&mut self, horizon: Option<SimInstant>) {
        while let Some(t) = self.queue.peek_time() {
            if horizon.is_some_and(|h| t > h) {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.handle(now, ev);
        }
    }

    fn transfer_opts(&self) -> TransferOptions {
        TransferOptions {
            verify_checksum: self.cfg.verify_checksums,
            fail_fast: self.cfg.fail_fast,
        }
    }

    // Poll scheduling clamps to the queue clock, not the handler's event
    // time: when a restart drains events buffered during the dead window,
    // facility timestamps lie in the past.

    fn schedule_transfer_poll(&mut self) {
        let now = self.queue.now();
        if let Some(t) = self.transfer.next_event_time(now) {
            self.queue.schedule_at(t.max(now), Ev::PollTransfers);
        }
    }

    fn schedule_fac_poll(&mut self, f: Facility) {
        let now = self.queue.now();
        if let Some(t) = self.fac(f).next_event_time() {
            self.queue.schedule_at(t.max(now), Ev::PollFac(f.key()));
        }
    }

    fn handle(&mut self, now: SimInstant, ev: Ev) {
        match ev {
            Ev::ScanStart(id) => self.on_scan_start(now, id),
            Ev::ScanSaved(id) => self.on_scan_saved(now, id),
            Ev::NewFileDone(id, epoch) => self.on_new_file_done(now, id, epoch),
            Ev::PollTransfers => self.on_poll_transfers(now),
            Ev::PollFac(k) => self.on_poll_fac(now, k),
            Ev::PruneTick => self.on_prune(now),
            Ev::BackgroundArrival => self.on_background(now),
            Ev::FaultStart(i) => self.on_fault_start(now, i),
            Ev::FaultEnd(i) => self.on_fault_end(now, i),
            Ev::HealthTick => self.on_health_tick(now),
            Ev::OpDeadline(op) => self.on_op_deadline(now, op),
            Ev::CrashStart(i) => self.on_crash_start(now, i),
            Ev::CrashEnd(i) => self.on_crash_end(now, i),
        }
    }

    fn on_scan_start(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.scan_started.insert(id, now);
        // acquisition + the file writer flushing frames to beamline disk
        let write_time = self.beamline_tier.io_time(scan.size);
        self.queue
            .schedule_at(now + scan.acquisition + write_time, Ev::ScanSaved(id));
    }

    fn on_scan_saved(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        // store the raw file on the beamline data tier: the file writer
        // is beamline-side and keeps running through coordinator deaths
        if self
            .beamline_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .is_err()
        {
            // beamline disk full: the flow fails outright (what the
            // pruning flows exist to prevent)
            if !self.orchestrator_down {
                let run = self.orch.create_run(FLOW_NEW_FILE, &scan.name, now);
                self.orch.start_run(run, now);
                self.orch.finish_run(run, FlowState::Failed, now);
            }
            return;
        }
        if self.orchestrator_down {
            // nobody is watching the filesystem; the restart ingests it
            self.backlog.push(id);
            return;
        }
        self.start_new_file(now, id);
    }

    /// new_file_832: claim the ingest key, then model data movement
    /// between beamline servers + SciCat ingestion + orchestration
    /// latency.
    fn start_new_file(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let key = self.ingest_key(id);
        match self.orch.claim(&key, now, CLAIM_LEASE) {
            Claim::Cached => {
                // ingestion already happened in a previous incarnation;
                // go straight to launching the branches
                self.queue.schedule_at(now, Ev::NewFileDone(id, self.epoch));
                return;
            }
            Claim::Busy => return,
            Claim::Run => {}
        }
        self.ledger_begin(&key);
        let span = self.span_start(now, &scan.name, Stage::Ingest, "als", None);
        self.ingest_spans.insert(id, span);
        let run = self.orch.create_run(FLOW_NEW_FILE, &scan.name, now);
        self.orch.set_parameter(run, "scan", &scan.name);
        self.orch
            .set_parameter(run, "size_gib", &format!("{:.3}", scan.size.as_gib_f64()));
        self.orch.start_run(run, now);
        self.newfile_runs.insert(id, run);
        let staging = self.beamline_tier.io_time(scan.size);
        let jitter = SimDuration::from_secs_f64(
            self.rng
                .lognormal_med(calib::NEWFILE_JITTER_MED_S, calib::NEWFILE_JITTER_SIGMA)
                .clamp(1.0, calib::NEWFILE_JITTER_MAX_S),
        );
        let ingest = SimDuration::from_secs_f64(calib::NEWFILE_INGEST_S);
        let task = self
            .orch
            .start_task(run, "stage_and_ingest", Some(&key), now);
        let done = now + staging + ingest + jitter;
        self.orch
            .finish_task(run, task, TaskState::Completed, done, None);
        // the staging worker is beamline infrastructure: it outlives
        // coordinator crashes and reports completion regardless
        self.ingest_worker.insert(id, done);
        self.queue
            .schedule_at(done, Ev::NewFileDone(id, self.epoch));
        // commit barrier: the claim, run, and worker hand-off must be
        // durable before the beamline-side work exists
        self.orch.commit_key(&key);
    }

    fn on_new_file_done(&mut self, now: SimInstant, id: ScanId, epoch: u32) {
        if self.orchestrator_down || epoch != self.epoch {
            return; // scheduled by a dead incarnation
        }
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.ingest_worker.remove(&id);
        if let Some(span) = self.ingest_spans.remove(&id) {
            self.span_end(now, &scan.name, span, SpanOutcome::Ok);
        }
        if let Some(&run) = self.newfile_runs.get(&id) {
            if self.orch.run(run).is_some_and(|r| !r.state.is_terminal()) {
                self.orch.finish_run(run, FlowState::Completed, now);
            }
        }
        let key = self.ingest_key(id);
        self.orch.complete(&key);
        self.ledger_done(&key);
        // durability point: losing the completion would force a
        // re-ingest on the next recovery
        self.orch.commit_key(&key);
        // catalogue the raw dataset (idempotent: the PID survives crashes
        // in the catalogue itself)
        if !self.raw_pids.contains_key(&id) {
            let dims = scan.dims();
            let raw = raw_scan_dataset(
                &scan.name,
                "beamline-user",
                now,
                scan.size,
                InstrumentMetadata {
                    beamline: "8.3.2".into(),
                    n_angles: dims.n_angles,
                    detector_rows: dims.det_rows,
                    detector_cols: dims.det_cols,
                    pixel_size_um: 0.65,
                    exposure_ms: 30.0,
                },
            );
            let raw_pid = raw.pid.clone();
            self.catalog.ingest(raw).ok();
            self.raw_pids.insert(id, raw_pid);
        }

        // launch both file-based branches in parallel
        for branch in [Branch::Nersc, Branch::Alcf] {
            self.launch_branch(now, id, branch);
        }
    }

    /// Ensure a branch flow run exists and drive it through the
    /// claim-gated step cascade (copy → exec → back).
    fn launch_branch(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let bk = branch_key(branch);
        if let Some(&run) = self.branch_runs.get(&(id, bk)) {
            if self.orch.run(run).is_some_and(|r| r.state.is_terminal()) {
                return;
            }
        } else {
            let scan = self.scans.get(&id).expect("scan exists").clone();
            let run = self.orch.create_run(flow_of(branch), &scan.name, now);
            self.orch.set_parameter(run, "scan", &scan.name);
            self.orch.start_run(run, now);
            self.branch_runs.insert((id, bk), run);
        }
        if !self.exec_site.contains_key(&(id, bk)) {
            // route around unhealthy facilities at launch time: the raw
            // data goes straight to whatever site the router picks
            self.choose_exec_site(now, id, branch);
        }
        self.step_copy(now, id, branch);
    }

    /// Step 1: ship the raw data to the executing facility.
    fn step_copy(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let bk = branch_key(branch);
        let exec = self
            .exec_site
            .get(&(id, bk))
            .copied()
            .unwrap_or(home_fac(branch));
        let key = self.copy_key(id, branch, exec);
        match self.orch.claim(&key, now, CLAIM_LEASE) {
            Claim::Cached => return self.step_exec(now, id, branch),
            Claim::Busy => return,
            Claim::Run => {}
        }
        self.ledger_begin(&key);
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let dst = self.fac_endpoint(exec);
        let opts = self.transfer_opts();
        let ctx = self.op_ctx(id, branch, Leg::ToHpc, exec);
        let task =
            self.transfer
                .submit_labeled(self.ep_als, dst, scan.size, opts, now, Some(ctx.clone()));
        self.transfer_map
            .insert(task, (id, branch, Leg::ToHpc, exec));
        let parent = self.redirect_parent.remove(&(id, bk));
        let span = self.span_start(now, &scan.name, Stage::Transfer, exec.name(), parent);
        self.transfer_spans.insert(task, span);
        if let Some(note) = self.pending_route_note.remove(&(id, bk)) {
            self.span_note(now, &scan.name, span, "route", &note);
        }
        if let Some(&run) = self.branch_runs.get(&(id, bk)) {
            self.orch
                .start_task(run, "globus_copy_to_hpc", Some(&key), now);
            self.orch
                .external_submitted(ExternalKind::Transfer, task.0, run, &ctx);
        }
        self.schedule_transfer_poll();
    }

    /// Step 2: execute the reconstruction at whichever facility the
    /// branch is routed to.
    fn step_exec(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let exec = self
            .exec_site
            .get(&(id, branch_key(branch)))
            .copied()
            .unwrap_or(home_fac(branch));
        self.facility_submit(now, id, branch, exec);
    }

    /// The router's scoring input: one view per enabled facility, from
    /// the controller's health snapshot and the WAN capacity estimate.
    fn candidate_views(&self, now: SimInstant, id: ScanId) -> Vec<CandidateView> {
        let size = self.scans.get(&id).expect("scan exists").size;
        let armed = self.health_armed();
        self.facs
            .iter()
            .map(|c| {
                let f = c.facility();
                let st = c.health(now);
                CandidateView {
                    facility: f,
                    est_wait_s: if st.accepting {
                        st.est_wait_s
                    } else {
                        f64::INFINITY
                    },
                    est_transfer_s: self.transfer.estimate_transfer_seconds(
                        SiteId::Als,
                        f.site(),
                        size,
                    ),
                    heartbeat_stale: armed && self.health.heartbeat_stale(f.name(), now),
                }
            })
            .collect()
    }

    /// Record a redirect on the branch's flow run: the `failover`
    /// parameter names the current target (provenance + recovery), the
    /// `route` parameter carries the whole path, and failure-driven
    /// redirects additionally log a `failover_redirect` task.
    fn record_route(
        &mut self,
        now: SimInstant,
        id: ScanId,
        branch: Branch,
        target: Facility,
        with_task: bool,
    ) {
        let bk = branch_key(branch);
        let Some(&run) = self.branch_runs.get(&(id, bk)) else {
            return;
        };
        self.orch.set_parameter(run, "failover", target.name());
        let mut path: Vec<&str> = self
            .route_history
            .get(&(id, bk))
            .map(|h| h.iter().map(|(f, _)| f.name()).collect())
            .unwrap_or_default();
        path.push(target.name());
        self.orch.set_parameter(run, "route", &path.join(">"));
        if with_task {
            self.orch.start_task(run, "failover_redirect", None, now);
        }
    }

    /// Pick the facility that will execute a newly launched flow branch:
    /// its home facility unless the router finds it inadmissible and a
    /// cheaper healthy site exists.
    fn choose_exec_site(&mut self, now: SimInstant, id: ScanId, branch: Branch) -> Facility {
        let bk = branch_key(branch);
        let home = home_fac(branch);
        let mut exec = home;
        if self.cfg.failover_enabled {
            let cands = self.candidate_views(now, id);
            let visited = self
                .route_history
                .get(&(id, bk))
                .cloned()
                .unwrap_or_default();
            if let Some(target) = self.router.select(home, &visited, &cands, now) {
                if let Some(d) = self.router.decisions().last() {
                    // satellite: the decision audit rides the trace as a
                    // Note on the branch's next transfer span
                    self.pending_route_note.insert((id, bk), d.note_value());
                }
                if target != home {
                    let rec = self.router.recoveries(home);
                    self.route_history
                        .entry((id, bk))
                        .or_default()
                        .push((home, rec));
                    self.failover_count += 1;
                    self.record_route(now, id, branch, target, false);
                }
                exec = target;
            }
            // no admissible facility: fall back to home — the submit
            // will fail there and the failure path owns what happens next
        }
        self.exec_site.insert((id, bk), exec);
        exec
    }

    fn on_poll_transfers(&mut self, now: SimInstant) {
        if self.orchestrator_down {
            return; // events stay buffered in the service until restart
        }
        let events = self.transfer.advance_to(now);
        for ev in events {
            match ev {
                TransferEvent::Succeeded { task, at } => {
                    let Some((id, branch, leg, fac)) = self.transfer_map.remove(&task) else {
                        continue;
                    };
                    // buffered completions from the dead window are
                    // harvested at restart time, not back-dated
                    let at = at.max(now);
                    self.orch.external_resolved(ExternalKind::Transfer, task.0);
                    let scan = self.scans.get(&id).expect("scan exists").clone();
                    let size = match leg {
                        Leg::ToHpc => scan.size,
                        Leg::Back => scan.recon_output_size(),
                    };
                    if let Some(d) = self.transfer.task_duration(task) {
                        self.monitor.record(at, size, d);
                    }
                    if let Some(span) = self.transfer_spans.remove(&task) {
                        self.span_end(at, &scan.name, span, SpanOutcome::Ok);
                    }
                    match leg {
                        Leg::ToHpc => {
                            let key = self.copy_key(id, branch, fac);
                            self.orch.complete(&key);
                            self.ledger_done(&key);
                            // durability point: the resolve + completion
                            // must not split across a group-commit batch
                            // (losing only the completion would force a
                            // duplicate transfer after recovery)
                            self.orch.commit_key(&key);
                            self.step_exec(at, id, branch);
                        }
                        Leg::Back => {
                            let key = self.back_key(id, branch, fac);
                            self.orch.complete(&key);
                            self.ledger_done(&key);
                            self.orch.commit_key(&key);
                            self.finish_branch(at, id, branch, true);
                        }
                    }
                }
                TransferEvent::Failed { task, at, .. } => {
                    if let Some((id, branch, leg, fac)) = self.transfer_map.remove(&task) {
                        let at = at.max(now);
                        self.orch.external_resolved(ExternalKind::Transfer, task.0);
                        let key = match leg {
                            Leg::ToHpc => self.copy_key(id, branch, fac),
                            Leg::Back => self.back_key(id, branch, fac),
                        };
                        self.orch.release(&key);
                        self.ledger_abort(&key);
                        if let Some(span) = self.transfer_spans.remove(&task) {
                            let name = self.scan_name(id);
                            self.span_end(at, &name, span, SpanOutcome::Failed);
                            self.redirect_parent.insert((id, branch_key(branch)), span);
                        }
                        self.branch_failed(at, id, branch);
                    }
                }
                TransferEvent::Started { .. } | TransferEvent::Retrying { .. } => {}
            }
        }
        self.schedule_transfer_poll();
    }

    /// Should deadline watchdogs be armed? Only in fault-injected runs —
    /// a healthy campaign never needs remote cancellation. (Armed even
    /// with failover disabled: cancelling stranded work is the baseline
    /// operator behavior; rerouting it is the remediation under test.)
    fn deadlines_armed(&self) -> bool {
        !self.cfg.faults.is_empty()
    }

    /// Submit the reconstruction for one branch at one facility through
    /// the [`FacilityController`] seam. `branch` is the *flow* branch
    /// being served; `exec` is where the work actually runs.
    fn facility_submit(&mut self, now: SimInstant, id: ScanId, branch: Branch, exec: Facility) {
        let key = self.exec_key(id, branch, exec);
        match self.orch.claim(&key, now, CLAIM_LEASE) {
            Claim::Cached => return self.step_back(now, id, branch),
            Claim::Busy => return,
            Claim::Run => {}
        }
        self.ledger_begin(&key);
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let gib = scan.size.as_gib_f64();
        // the in-job service time, per facility personality: stage from
        // the site filesystem, reconstruct, write products
        let runtime = match exec {
            Facility::Nersc => {
                self.cfs_tier
                    .put(&format!("{}.h5", scan.name), scan.size, now)
                    .ok();
                let stage = self.cfs_tier.io_time(scan.size);
                stage
                    + SimDuration::from_secs_f64(
                        calib::NERSC_JOB_FIXED_S + calib::NERSC_RECON_S_PER_GIB * gib,
                    )
            }
            Facility::Alcf => {
                self.eagle_tier
                    .put(&format!("{}.h5", scan.name), scan.size, now)
                    .ok();
                let fixed = self
                    .rng
                    .lognormal_med(calib::ALCF_FIXED_MED_S, calib::ALCF_FIXED_SIGMA)
                    .clamp(300.0, 1500.0);
                SimDuration::from_secs_f64(fixed + calib::ALCF_RECON_S_PER_GIB * gib)
            }
            Facility::Olcf => {
                self.orion_tier
                    .put(&format!("{}.h5", scan.name), scan.size, now)
                    .ok();
                let stage = self.orion_tier.io_time(scan.size);
                stage
                    + SimDuration::from_secs_f64(
                        calib::OLCF_JOB_FIXED_S + calib::OLCF_RECON_S_PER_GIB * gib,
                    )
            }
        };
        let walltime =
            SimDuration::from_secs_f64(runtime.as_secs_f64() * calib::WALLTIME_MARGIN + 900.0);
        // the op name carries the re-attach context so a recovering
        // coordinator can adopt work its journal never heard about
        let ctx = self.op_ctx(id, branch, Leg::ToHpc, exec);
        let spec = SubmitSpec {
            name: format!("{}{}|{}", RECON_PREFIX, scan.name, ctx),
            task: FacilityTask::Reconstruct,
            runtime,
            walltime,
            qos: self.cfg.nersc_qos,
            nodes: 1,
        };
        let kind = self.fac(exec).external_kind();
        let task_name = self.fac(exec).exec_task_name();
        let armed = self.deadlines_armed();
        match self.fac_mut(exec).reconstruct(&spec, now) {
            Ok(sub) => {
                self.op_map.insert(sub.op, (id, branch));
                let parent = self.redirect_parent.remove(&(id, branch_key(branch)));
                let span = self.span_start(now, &scan.name, Stage::QueueWait, exec.name(), parent);
                self.op_spans.insert(sub.op, (span, now, runtime));
                if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
                    self.orch.start_task(run, task_name, Some(&key), now);
                    self.orch.external_submitted(kind, sub.op, run, &ctx);
                }
                if armed {
                    self.queue.schedule_at(sub.deadline, Ev::OpDeadline(sub.op));
                }
                self.schedule_fac_poll(exec);
            }
            Err(_) => {
                self.orch.release(&key);
                self.ledger_abort(&key);
                self.branch_failed(now, id, branch);
            }
        }
    }

    /// Does this completion get converted to a transient failure by the
    /// plan's background job-failure probability? (The rng is consulted
    /// only when the probability is non-zero, preserving the healthy-run
    /// random streams.)
    fn rolls_transient_failure(&mut self) -> bool {
        let p = self.cfg.faults.job_failure_prob;
        p > 0.0 && self.rng.chance(p)
    }

    fn on_poll_fac(&mut self, now: SimInstant, fkey: u8) {
        if self.orchestrator_down {
            return; // events stay buffered in the backend until restart
        }
        let Some(f) = Facility::from_key(fkey) else {
            return;
        };
        if !self.router.is_enabled(f) {
            return;
        }
        let events = self.fac_mut(f).poll(now);
        for ev in events {
            if let Some(pf) = self.probe_ops.remove(&ev.op) {
                // an outage window swallows probe successes: a canary
                // that was already running when the site died must not
                // re-close the breaker
                let ok = ev.ok && !self.hb_suppressed.contains(&pf);
                self.router.probe_resolved(pf, ok, now, self.cfg.seed);
                continue;
            }
            let Some((id, branch)) = self.op_map.remove(&ev.op) else {
                continue; // abandoned or background op
            };
            let at = ev.at.max(now);
            let kind = self.fac(f).external_kind();
            self.orch.external_resolved(kind, ev.op);
            let key = self.exec_key(id, branch, f);
            let name = self.scan_name(id);
            if ev.ok && !self.rolls_transient_failure() {
                self.router.record_success(f);
                self.resolve_op_span(ev.op, &name, at, SpanOutcome::Ok);
                self.orch.complete(&key);
                self.ledger_done(&key);
                self.orch.commit_key(&key);
                self.step_back(at, id, branch);
            } else {
                if let Some(span) = self.resolve_op_span(ev.op, &name, at, SpanOutcome::Failed) {
                    self.redirect_parent.insert((id, branch_key(branch)), span);
                }
                self.orch.release(&key);
                self.ledger_abort(&key);
                self.branch_failed(at, id, branch);
            }
        }
        self.schedule_fac_poll(f);
    }

    /// Deadline watchdog: the operation never resolved — it is stranded
    /// behind a facility outage. Cancel it remotely (§5.3: "remotely
    /// cancelling stuck jobs") and route the branch elsewhere.
    fn on_op_deadline(&mut self, now: SimInstant, op: u64) {
        if self.orchestrator_down {
            return; // nobody is watching; reconciliation handles it
        }
        let Some((f, _)) = Facility::decode_op(op) else {
            return;
        };
        if let Some(pf) = self.probe_ops.remove(&op) {
            // a stranded probe is a failed probe
            self.fac_mut(f).cancel(op, now);
            self.router.probe_resolved(pf, false, now, self.cfg.seed);
            self.schedule_fac_poll(f);
            return;
        }
        let Some((id, branch)) = self.op_map.remove(&op) else {
            return; // resolved in time
        };
        // removed from op_map first so the cancellation event is ignored
        self.fac_mut(f).cancel(op, now);
        self.remote_cancel_count += 1;
        let kind = self.fac(f).external_kind();
        self.orch.external_resolved(kind, op);
        let key = self.exec_key(id, branch, f);
        self.orch.release(&key);
        self.ledger_abort(&key);
        let name = self.scan_name(id);
        if let Some(span) = self.resolve_op_span(op, &name, now, SpanOutcome::Cancelled) {
            self.redirect_parent.insert((id, branch_key(branch)), span);
        }
        if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
            self.orch
                .start_task(run, "remote_cancel_stranded_job", None, now);
        }
        self.schedule_fac_poll(f);
        self.branch_failed(now, id, branch);
    }

    /// Step 3: move the reconstruction products back to the beamline data
    /// server from wherever the branch actually executed.
    fn step_back(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let bk = branch_key(branch);
        let exec = self
            .exec_site
            .get(&(id, bk))
            .copied()
            .unwrap_or(home_fac(branch));
        let key = self.back_key(id, branch, exec);
        match self.orch.claim(&key, now, CLAIM_LEASE) {
            Claim::Cached => return self.finish_branch(now, id, branch, true),
            Claim::Busy => return,
            Claim::Run => {}
        }
        // facility evidence: the recon product already landed on the
        // beamline — the journal lost the completion record with a
        // damaged shard tail. Harvest the delivery, don't ship a second
        // copy. (The back leg has no downstream operation whose adoption
        // would shield it; the product file is its evidence.)
        let product = format!("{}_recon_{}", self.scan_name(id), branch_name(branch));
        if self.beamline_tier.contains(&product) {
            self.orch.complete(&key);
            self.ledger_done(&key);
            self.orch.commit_key(&key);
            self.degraded_scans.insert(id.0);
            return self.finish_branch(now, id, branch, true);
        }
        self.ledger_begin(&key);
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let src = self.fac_endpoint(exec);
        let opts = self.transfer_opts();
        let ctx = self.op_ctx(id, branch, Leg::Back, exec);
        let task = self.transfer.submit_labeled(
            src,
            self.ep_als,
            scan.recon_output_size(),
            opts,
            now,
            Some(ctx.clone()),
        );
        self.transfer_map
            .insert(task, (id, branch, Leg::Back, exec));
        let span = self.span_start(now, &scan.name, Stage::BackTransfer, exec.name(), None);
        self.transfer_spans.insert(task, span);
        if let Some(&run) = self.branch_runs.get(&(id, bk)) {
            self.orch
                .start_task(run, "globus_copy_back", Some(&key), now);
            self.orch
                .external_submitted(ExternalKind::Transfer, task.0, run, &ctx);
        }
        self.schedule_transfer_poll();
    }

    /// A branch's execution failed. Record it against the facility that
    /// ran it; then ask the router for the next admissible site (the
    /// failed site joins the branch's redirect history) or fail the run
    /// when the fleet has nothing left to offer.
    fn branch_failed(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let bk = branch_key(branch);
        let exec = self
            .exec_site
            .get(&(id, bk))
            .copied()
            .unwrap_or(home_fac(branch));
        self.router.record_failure(exec, now);
        self.health
            .report_error(exec.name(), now, "branch execution failed");
        if self.cfg.failover_enabled {
            let rec = self.router.recoveries(exec);
            let mut visited = self
                .route_history
                .get(&(id, bk))
                .cloned()
                .unwrap_or_default();
            if !visited.contains(&(exec, rec)) {
                visited.push((exec, rec));
            }
            let cands = self.candidate_views(now, id);
            let home = home_fac(branch);
            let target = self.router.select(home, &visited, &cands, now);
            self.route_history.insert((id, bk), visited);
            if let Some(target) = target {
                if let Some(d) = self.router.decisions().last() {
                    self.pending_route_note.insert((id, bk), d.note_value());
                }
                self.failover_count += 1;
                self.exec_site.insert((id, bk), target);
                self.record_route(now, id, branch, target, true);
                // re-ship the raw data from the beamline to the chosen
                // facility under a fresh facility-qualified claim; the
                // normal step cascade takes over
                self.step_copy(now, id, branch);
                return;
            }
        }
        self.finish_branch(now, id, branch, false);
    }

    /// Terminal transition for one branch of one scan.
    fn finish_branch(&mut self, now: SimInstant, id: ScanId, branch: Branch, ok: bool) {
        let bk = branch_key(branch);
        let Some(run) = self.branch_runs.get(&(id, bk)).copied() else {
            return;
        };
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let terminal = self
            .orch
            .run(run)
            .map(|r| r.state.is_terminal())
            .unwrap_or(true);
        if ok {
            // the facility that produced the recon (≠ home facility
            // after a redirect) is what provenance should record
            let exec = self
                .exec_site
                .get(&(id, bk))
                .copied()
                .unwrap_or(home_fac(branch));
            // register the derived dataset with provenance to the raw scan
            if let Some(raw_pid) = self.raw_pids.get(&id) {
                self.catalog
                    .ingest(recon_dataset(
                        &scan.name,
                        exec.name(),
                        raw_pid,
                        now,
                        scan.recon_output_size(),
                    ))
                    .ok();
            }
            // the product file is named for the flow branch (stable even
            // when a redirect ran it elsewhere), so names stay unique
            self.beamline_tier
                .put(
                    &format!("{}_recon_{}", scan.name, branch_name(branch)),
                    scan.recon_output_size(),
                    now,
                )
                .ok();
            if !terminal {
                self.orch.finish_run(run, FlowState::Completed, now);
            }
            if self.branch_completed.insert((id, bk)) {
                // catalogue/archive registration: instantaneous in the
                // sim, but the span pins the scan's completion point
                let span = self.span_start(now, &scan.name, Stage::Catalog, "als", None);
                self.span_end(now, &scan.name, span, SpanOutcome::Ok);
                self.completed_scans += 1;
                if let Some(&start) = self.scan_started.get(&id) {
                    self.branch_latencies
                        .push(now.duration_since(start).as_secs_f64());
                }
            }
        } else if !terminal {
            self.orch.finish_run(run, FlowState::Failed, now);
        }
    }

    /// A facility-wide outage begins: the controller kills running recon
    /// work (failure events flow through the normal failure path when the
    /// coordinator is alive) and the site's heartbeats go silent.
    fn facility_outage_start(&mut self, now: SimInstant, f: Facility) {
        let events = self.fac_mut(f).inject(FacilityFault::OutageStart, now);
        if !self.orchestrator_down {
            for ev in events {
                if let Some(pf) = self.probe_ops.remove(&ev.op) {
                    self.router.probe_resolved(pf, false, now, self.cfg.seed);
                    continue;
                }
                let Some((id, branch)) = self.op_map.remove(&ev.op) else {
                    continue;
                };
                let kind = self.fac(f).external_kind();
                self.orch.external_resolved(kind, ev.op);
                let key = self.exec_key(id, branch, f);
                self.orch.release(&key);
                self.ledger_abort(&key);
                let at = ev.at.max(now);
                let name = self.scan_name(id);
                if let Some(span) = self.resolve_op_span(ev.op, &name, at, SpanOutcome::Failed) {
                    self.redirect_parent.insert((id, branch_key(branch)), span);
                }
                self.branch_failed(at, id, branch);
            }
            self.schedule_fac_poll(f);
        }
        self.hb_suppressed.insert(f);
    }

    fn facility_outage_end(&mut self, now: SimInstant, f: Facility) {
        let _ = self.fac_mut(f).inject(FacilityFault::OutageEnd, now);
        self.hb_suppressed.remove(&f);
        self.schedule_fac_poll(f);
    }

    fn on_fault_start(&mut self, now: SimInstant, i: usize) {
        let kind = self.cfg.faults.windows[i].kind;
        match kind {
            FaultKind::NerscOutage => self.facility_outage_start(now, Facility::Nersc),
            FaultKind::AlcfOutage => self.facility_outage_start(now, Facility::Alcf),
            FaultKind::OlcfOutage => {
                if self.router.is_enabled(Facility::Olcf) {
                    self.facility_outage_start(now, Facility::Olcf);
                }
            }
            FaultKind::EsnetBrownout { capacity_factor } => {
                self.transfer.set_wan_capacity_factor(capacity_factor, now);
                self.schedule_transfer_poll();
            }
            FaultKind::SfApiAuthExpiry => {
                let _ = self
                    .fac_mut(Facility::Nersc)
                    .inject(FacilityFault::AuthExpire, now);
            }
            FaultKind::TransferCorruption { burst } => {
                self.transfer.corrupt_next(self.ep_nersc, burst);
                self.transfer.corrupt_next(self.ep_alcf, burst);
                if self.router.is_enabled(Facility::Olcf) {
                    self.transfer.corrupt_next(self.ep_olcf, burst);
                }
            }
        }
    }

    fn on_fault_end(&mut self, now: SimInstant, i: usize) {
        let kind = self.cfg.faults.windows[i].kind;
        match kind {
            FaultKind::NerscOutage => self.facility_outage_end(now, Facility::Nersc),
            FaultKind::AlcfOutage => self.facility_outage_end(now, Facility::Alcf),
            FaultKind::OlcfOutage => {
                if self.router.is_enabled(Facility::Olcf) {
                    self.facility_outage_end(now, Facility::Olcf);
                }
            }
            FaultKind::EsnetBrownout { .. } => {
                self.transfer.set_wan_capacity_factor(1.0, now);
                self.schedule_transfer_poll();
            }
            FaultKind::SfApiAuthExpiry => {
                let _ = self
                    .fac_mut(Facility::Nersc)
                    .inject(FacilityFault::AuthRestore, now);
            }
            FaultKind::TransferCorruption { .. } => {
                self.transfer.corrupt_next(self.ep_nersc, 0);
                self.transfer.corrupt_next(self.ep_alcf, 0);
                if self.router.is_enabled(Facility::Olcf) {
                    self.transfer.corrupt_next(self.ep_olcf, 0);
                }
            }
        }
    }

    /// Heartbeat cadence: facilities under an outage stay silent; a
    /// heartbeat gone stale force-opens that facility's breaker (the
    /// monitor sees the outage before enough job failures accumulate)
    /// and — in cost-aware mode — sweeps the work stranded there onto
    /// healthier sites instead of waiting out each op's deadline.
    /// Healthy facilities whose breaker has cooled to half-open are
    /// re-admitted via a probe job, never a campaign branch.
    fn on_health_tick(&mut self, now: SimInstant) {
        let enabled = self.router.enabled_facilities();
        for f in &enabled {
            if !self.hb_suppressed.contains(f) {
                self.health.heartbeat(f.name(), now);
            }
        }
        for f in enabled {
            if self.health.heartbeat_stale(f.name(), now) {
                // force_open on every stale tick: the refreshed open
                // timestamp keeps the cooldown anchored to the *end* of
                // the outage, not its start
                let newly = self.router.force_open(f, now);
                if newly && self.cfg.failover_enabled && self.router.mode() == RouterMode::CostAware
                {
                    self.sweep_stranded(now, f);
                }
            } else if self.cfg.failover_enabled && self.router.maybe_probe(f, now, true) {
                self.launch_probe(now, f);
            }
        }
    }

    /// The moment a facility is declared dead, every op parked there is
    /// stranded: cancel them remotely and push their branches back
    /// through the router instead of letting each wait out its deadline.
    fn sweep_stranded(&mut self, now: SimInstant, f: Facility) {
        let stranded: Vec<(u64, ScanId, Branch)> = self
            .op_map
            .iter()
            .filter(|(&op, _)| Facility::decode_op(op).is_some_and(|(of, _)| of == f))
            .map(|(&op, &(id, b))| (op, id, b))
            .collect();
        if stranded.is_empty() {
            return;
        }
        let kind = self.fac(f).external_kind();
        for (op, id, branch) in stranded {
            self.op_map.remove(&op);
            self.fac_mut(f).cancel(op, now);
            self.remote_cancel_count += 1;
            self.orch.external_resolved(kind, op);
            let key = self.exec_key(id, branch, f);
            self.orch.release(&key);
            self.ledger_abort(&key);
            let name = self.scan_name(id);
            if let Some(span) = self.resolve_op_span(op, &name, now, SpanOutcome::Cancelled) {
                self.redirect_parent.insert((id, branch_key(branch)), span);
            }
            if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
                self.orch
                    .start_task(run, "remote_cancel_stranded_job", None, now);
            }
            self.branch_failed(now, id, branch);
        }
        self.schedule_fac_poll(f);
    }

    /// Launch the single half-open re-admission probe the router just
    /// authorized: a tiny canary job at the campaign QOS (so it jumps
    /// any post-outage background backlog).
    fn launch_probe(&mut self, now: SimInstant, f: Facility) {
        self.probe_seq += 1;
        let spec = SubmitSpec {
            name: format!("{}{}_{}", PROBE_PREFIX, f.name(), self.probe_seq),
            task: FacilityTask::Probe,
            runtime: PROBE_RUNTIME,
            walltime: PROBE_WALLTIME,
            qos: self.cfg.nersc_qos,
            nodes: 1,
        };
        match self.fac_mut(f).submit(&spec, now) {
            Ok(sub) => {
                self.probe_ops.insert(sub.op, f);
                self.queue.schedule_at(sub.deadline, Ev::OpDeadline(sub.op));
                self.schedule_fac_poll(f);
            }
            Err(_) => self.router.probe_resolved(f, false, now, self.cfg.seed),
        }
    }

    fn on_prune(&mut self, now: SimInstant) {
        self.beamline_tier.prune(now);
        self.cfs_tier.prune(now);
        self.eagle_tier.prune(now);
        self.orion_tier.prune(now);
    }

    fn on_background(&mut self, now: SimInstant) {
        // a competing regular-QOS job from another NERSC user
        let runtime =
            SimDuration::from_secs_f64(self.rng.lognormal_med(1200.0, 0.5).clamp(120.0, 7200.0));
        let nodes = 1 + self.rng.uniform_u64(0, 2) as usize;
        let nodes = nodes.min(self.cfg.nersc_nodes);
        self.fac_mut(Facility::Nersc)
            .submit_background(runtime, nodes, now);
        self.schedule_fac_poll(Facility::Nersc);
    }

    fn on_crash_start(&mut self, now: SimInstant, i: usize) {
        if self.orchestrator_down {
            return;
        }
        self.orchestrator_down = true;
        self.crash_count += 1;
        // durable mode: each shard's journal was written ahead of every
        // mutation, so the durable bytes survive the process; the crash
        // plan may additionally wound one shard's on-disk image (a torn
        // group-commit write, a truncated tail, a flipped byte). The
        // baseline loses everything either way.
        self.persisted_wal = if self.cfg.durable_recovery {
            let damage = self
                .cfg
                .faults
                .orchestrator_crashes
                .get(i)
                .map(|c| c.damage)
                .unwrap_or(CrashDamage::None);
            let n = self.orch.shard_count();
            let mut images = self.orch.crash_images();
            match damage {
                CrashDamage::None => {}
                CrashDamage::MidGroupCommit { shard, keep_milli } => {
                    let s = shard % n;
                    images[s] = self.orch.shards()[s]
                        .journal()
                        .crash_image_mid_flush(keep_milli);
                    self.damaged_shards_seen.insert(s);
                }
                CrashDamage::ShardTorn { shard, drop_bytes } => {
                    let s = shard % n;
                    let keep = images[s].len().saturating_sub(drop_bytes);
                    images[s].truncate(keep);
                    self.damaged_shards_seen.insert(s);
                }
                CrashDamage::ShardCorrupt { shard, offset_back } => {
                    let s = shard % n;
                    if let Some(pos) = images[s].len().checked_sub(offset_back + 1) {
                        images[s][pos] ^= 0x01;
                        self.damaged_shards_seen.insert(s);
                    }
                }
            }
            Some(images)
        } else {
            None
        };
        // in-flight router probes die with the process; their facilities
        // stay half-open and re-probe on the next health tick
        let probes: Vec<(u64, Facility)> = self.probe_ops.iter().map(|(&o, &f)| (o, f)).collect();
        for (op, f) in probes {
            self.fac_mut(f).cancel(op, now);
            self.router.probe_resolved(f, false, now, self.cfg.seed);
        }
        self.probe_ops.clear();
        // the process dies: every in-memory coordinator structure is
        // gone. The staging workers in `ingest_worker` are beamline-side
        // and deliberately survive; router breaker state models the
        // monitoring service, which also survives.
        self.orch = ShardedOrchestrator::default();
        self.newfile_runs.clear();
        self.branch_runs.clear();
        self.transfer_map.clear();
        self.op_map.clear();
        self.raw_pids.clear();
        self.exec_site.clear();
        self.route_history.clear();
        // open-span bookkeeping is coordinator memory too; the journaled
        // events survive and recovery re-adopts what it can
        self.ingest_spans.clear();
        self.transfer_spans.clear();
        self.op_spans.clear();
        self.redirect_parent.clear();
        self.pending_route_note.clear();
    }

    fn on_crash_end(&mut self, now: SimInstant, _i: usize) {
        if !self.orchestrator_down {
            return;
        }
        self.orchestrator_down = false;
        self.epoch += 1;
        let holder = format!("orch-{}", self.epoch);
        match self.persisted_wal.take() {
            Some(wal) => self.recover_durable(now, &wal, &holder),
            None => {
                self.orch = ShardedOrchestrator::production(
                    &holder,
                    now,
                    self.cfg.shard_count.max(1),
                    self.cfg.group_commit_batch,
                );
                self.orch.instrument(&self.registry);
                self.baseline_rescan(now);
            }
        }
        // ingest scans the file writer saved while nobody was watching
        let backlog: Vec<ScanId> = std::mem::take(&mut self.backlog);
        for id in backlog {
            self.start_new_file(now, id);
        }
        self.schedule_transfer_poll();
        for f in self.router.enabled_facilities() {
            self.schedule_fac_poll(f);
        }
    }

    /// Durable restart: replay every shard journal (any order — shards
    /// are causally independent), reconcile with live facility state
    /// once across shards, and resume interrupted flows. Damage on one
    /// shard degrades only that shard's flows: their healing runs on
    /// facility-side evidence (labels, staging workers, the catalogue)
    /// instead of journal records.
    fn recover_durable(&mut self, now: SimInstant, wal: &[Vec<u8>], holder: &str) {
        let (orch, info) =
            ShardedOrchestrator::recover_fleet(wal, holder, now, self.cfg.group_commit_batch);
        self.orch = orch;
        self.orch.instrument(&self.registry);
        self.registry.counter("orch_recoveries_total", &[]).inc();
        self.recovery_count += 1;
        self.damaged_shards_seen.extend(info.damaged_shards());

        // rebuild the in-memory dispatch tables the dead incarnation held
        let by_name: BTreeMap<String, ScanId> = self
            .scans
            .iter()
            .map(|(&id, s)| (s.name.clone(), id))
            .collect();
        let mut resume_newfile: Vec<(ScanId, SimInstant)> = Vec::new();
        let mut resume_branches: Vec<(ScanId, Branch)> = Vec::new();
        for run in self.orch.all_runs() {
            let Some(&id) = run
                .parameters
                .get("scan")
                .and_then(|name| by_name.get(name))
            else {
                continue;
            };
            let terminal = run.state.is_terminal();
            match run.flow_name.as_str() {
                FLOW_NEW_FILE => {
                    self.newfile_runs.insert(id, run.id);
                    if !terminal {
                        // the journal recorded the ingest's scheduled
                        // completion; fire the lost event then
                        let done = run
                            .tasks
                            .first()
                            .and_then(|t| t.finished)
                            .map_or(now, |d| d.max(now));
                        resume_newfile.push((id, done));
                    }
                }
                FLOW_NERSC | FLOW_ALCF => {
                    let branch = if run.flow_name == FLOW_NERSC {
                        Branch::Nersc
                    } else {
                        Branch::Alcf
                    };
                    let bk = branch_key(branch);
                    self.branch_runs.insert((id, bk), run.id);
                    let exec = run
                        .parameters
                        .get("failover")
                        .and_then(|s| Facility::from_name(s))
                        .unwrap_or(home_fac(branch));
                    self.exec_site.insert((id, bk), exec);
                    // the redirect trail survives in the journaled route
                    // parameter; recovery recoveries-stamps it against
                    // the surviving breaker epochs
                    if let Some(route) = run.parameters.get("route") {
                        let names: Vec<&str> = route.split('>').collect();
                        let hist: Vec<(Facility, u32)> = names[..names.len().saturating_sub(1)]
                            .iter()
                            .filter_map(|s| Facility::from_name(s))
                            .map(|f| (f, self.router.recoveries(f)))
                            .collect();
                        if !hist.is_empty() {
                            self.route_history.insert((id, bk), hist);
                        }
                    } else if run.parameters.contains_key("failover") {
                        let home = home_fac(branch);
                        self.route_history
                            .insert((id, bk), vec![(home, self.router.recoveries(home))]);
                    }
                    if !terminal {
                        resume_branches.push((id, branch));
                    }
                }
                _ => {}
            }
        }

        // re-attach in-flight external operations from their journaled ctx
        for op in info.pending_external() {
            let Ok(ctx) = serde_json::from_str::<OpCtx>(&op.ctx) else {
                continue;
            };
            let id = ScanId(ctx.scan);
            let branch = branch_from_key(ctx.branch);
            match op.kind {
                ExternalKind::Transfer => {
                    let Some(fac) = Facility::from_key(ctx.fac) else {
                        continue;
                    };
                    let leg = if ctx.leg == 0 { Leg::ToHpc } else { Leg::Back };
                    self.transfer_map
                        .insert(TaskId(op.handle), (id, branch, leg, fac));
                }
                ExternalKind::Job | ExternalKind::Compute => {
                    // handles are facility-qualified; one map serves all
                    // three facilities
                    self.op_map.insert(op.handle, (id, branch));
                }
            }
            self.reattached_ops += 1;
        }

        // re-derive raw-dataset provenance from the catalogue (the
        // catalogue is facility-side and survived the crash)
        for (&id, scan) in &self.scans {
            if let Some(d) = self
                .catalog
                .search(&scan.name)
                .into_iter()
                .find(|d| matches!(d.kind, als_catalog::DatasetKind::Raw))
            {
                self.raw_pids.insert(id, d.pid.clone());
            }
        }

        // adopt facility operations the journal never heard about: their
        // ExternalSubmitted record was destroyed with a damaged shard
        // tail, but the facility is still running (or already finished)
        // the work. Every submission carries its re-attach context as a
        // label; adoption claims the key WITHOUT a ledger `begin` — the
        // side effect was initiated once, by the dead incarnation, and
        // is being adopted, not repeated.
        for f in self.router.enabled_facilities() {
            let kind = self.fac(f).external_kind();
            let labeled: Vec<(u64, String)> = self
                .fac(f)
                .labeled_ops()
                .into_iter()
                .filter_map(|(op, name)| name.split_once('|').map(|(_, ctx)| (op, ctx.to_string())))
                .collect();
            for (op, ctx_json) in labeled {
                if self.op_map.contains_key(&op) || self.orch.external_ever_seen(kind, op) {
                    continue;
                }
                if let Some((id, branch, _leg, _fac)) = self.parse_ctx(&ctx_json) {
                    let key = self.exec_key(id, branch, f);
                    if self.adopt_orphan(now, id, branch, f, &key, kind, op, &ctx_json) {
                        self.op_map.insert(op, (id, branch));
                    }
                }
            }
        }
        let labeled_transfers: Vec<(TaskId, String)> = self
            .transfer
            .tasks_labeled()
            .into_iter()
            .map(|(t, l, _)| (t, l.to_string()))
            .collect();
        for (task, ctx_json) in labeled_transfers {
            if self.transfer_map.contains_key(&task)
                || self.orch.external_ever_seen(ExternalKind::Transfer, task.0)
            {
                continue;
            }
            if let Some((id, branch, leg, fac)) = self.parse_ctx(&ctx_json) {
                let key = match leg {
                    Leg::ToHpc => self.copy_key(id, branch, fac),
                    Leg::Back => self.back_key(id, branch, fac),
                };
                if self.adopt_orphan(
                    now,
                    id,
                    branch,
                    fac,
                    &key,
                    ExternalKind::Transfer,
                    task.0,
                    &ctx_json,
                ) {
                    self.transfer_map.insert(task, (id, branch, leg, fac));
                }
            }
        }

        // re-adopt the journal's open spans before the drains below close
        // anything: in-flight stages must finish on their original span
        self.reattach_spans(now);

        // drain facility events buffered while the coordinator was dead —
        // re-attached completions/failures flow through the normal paths
        self.on_poll_transfers(now);
        for f in self.router.enabled_facilities() {
            self.on_poll_fac(now, f.key());
        }

        // sweep re-attached ops whose terminal event was emitted inline
        // while nobody was listening (e.g. an endpoint outage window);
        // facility-qualified handles sort NERSC < ALCF < OLCF, so the
        // sweep visits facilities in fleet order
        let ops: Vec<(u64, ScanId, Branch)> =
            self.op_map.iter().map(|(&o, &(i, b))| (o, i, b)).collect();
        for (op, id, branch) in ops {
            let Some((f, _)) = Facility::decode_op(op) else {
                continue;
            };
            match self.fac(f).op_fate(op) {
                OpFate::Live => {}
                OpFate::Completed => {
                    self.op_map.remove(&op);
                    let kind = self.fac(f).external_kind();
                    self.orch.external_resolved(kind, op);
                    let key = self.exec_key(id, branch, f);
                    let name = self.scan_name(id);
                    if self.rolls_transient_failure() {
                        if let Some(span) =
                            self.resolve_op_span(op, &name, now, SpanOutcome::Failed)
                        {
                            self.redirect_parent.insert((id, branch_key(branch)), span);
                        }
                        self.orch.release(&key);
                        self.ledger_abort(&key);
                        self.branch_failed(now, id, branch);
                    } else {
                        self.router.record_success(f);
                        self.resolve_op_span(op, &name, now, SpanOutcome::Ok);
                        self.orch.complete(&key);
                        self.ledger_done(&key);
                        self.step_back(now, id, branch);
                    }
                }
                OpFate::Failed | OpFate::Lost => {
                    self.op_map.remove(&op);
                    let kind = self.fac(f).external_kind();
                    self.orch.external_resolved(kind, op);
                    let key = self.exec_key(id, branch, f);
                    let name = self.scan_name(id);
                    if let Some(span) = self.resolve_op_span(op, &name, now, SpanOutcome::Failed) {
                        self.redirect_parent.insert((id, branch_key(branch)), span);
                    }
                    self.orch.release(&key);
                    self.ledger_abort(&key);
                    self.branch_failed(now, id, branch);
                }
            }
        }
        // transfers whose terminal event was consumed by the dead
        // incarnation right before the crash (the journal still shows
        // the op open because the resolve was in a lost batch): the
        // transfer service won't re-emit the event, so ask it directly
        let tx: Vec<(TaskId, ScanId, Branch, Leg, Facility)> = self
            .transfer_map
            .iter()
            .map(|(&t, &(i, b, l, f))| (t, i, b, l, f))
            .collect();
        for (task, id, branch, leg, fac) in tx {
            let key = match leg {
                Leg::ToHpc => self.copy_key(id, branch, fac),
                Leg::Back => self.back_key(id, branch, fac),
            };
            match transfer_fate(&self.transfer, task) {
                OpFate::Live => {}
                OpFate::Completed => {
                    self.transfer_map.remove(&task);
                    self.orch.external_resolved(ExternalKind::Transfer, task.0);
                    if let Some(span) = self.transfer_spans.remove(&task) {
                        let name = self.scan_name(id);
                        self.span_end(now, &name, span, SpanOutcome::Ok);
                    }
                    self.orch.complete(&key);
                    self.ledger_done(&key);
                    self.orch.commit_key(&key);
                    match leg {
                        Leg::ToHpc => self.step_exec(now, id, branch),
                        Leg::Back => self.finish_branch(now, id, branch, true),
                    }
                }
                OpFate::Failed | OpFate::Lost => {
                    self.transfer_map.remove(&task);
                    self.orch.external_resolved(ExternalKind::Transfer, task.0);
                    if let Some(span) = self.transfer_spans.remove(&task) {
                        let name = self.scan_name(id);
                        self.span_end(now, &name, span, SpanOutcome::Failed);
                        self.redirect_parent.insert((id, branch_key(branch)), span);
                    }
                    self.orch.release(&key);
                    self.ledger_abort(&key);
                    self.branch_failed(now, id, branch);
                }
            }
        }

        // reconcile: cancel live recon ops the journal disowns (their
        // ExternalSubmitted record was lost in a torn tail)
        let known: BTreeSet<u64> = self.op_map.keys().copied().collect();
        for f in self.router.enabled_facilities() {
            let n = self.fac_mut(f).cancel_orphans(&known, now);
            self.orphan_cancel_count += n;
            if n > 0 {
                self.schedule_fac_poll(f);
            }
        }

        // resume interrupted flows that have no live op to report back;
        // runs with an open external op are left alone — the op's
        // completion (or its deadline) drives the next step
        let open_runs = self.orch.runs_with_open_ops();
        for (id, branch) in resume_branches {
            let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) else {
                continue;
            };
            if open_runs.contains(&run) || self.orch.run(run).is_some_and(|r| r.state.is_terminal())
            {
                continue;
            }
            self.launch_branch(now, id, branch);
        }
        for (id, done) in resume_newfile {
            let Some(&run) = self.newfile_runs.get(&id) else {
                continue;
            };
            if self.orch.run(run).is_some_and(|r| r.state.is_terminal()) {
                continue;
            }
            self.queue
                .schedule_at(done, Ev::NewFileDone(id, self.epoch));
        }

        // staging workers that survived the crash: the worker finishes
        // its job whether or not the journal remembers asking. Re-detect
        // workers whose newfile run the journal lost (damaged shard) and
        // fire the completion the worker would have reported.
        let workers: Vec<(ScanId, SimInstant)> =
            self.ingest_worker.iter().map(|(&i, &d)| (i, d)).collect();
        for (id, done) in workers {
            if self.newfile_runs.contains_key(&id) || !self.scans.contains_key(&id) {
                continue;
            }
            let key = self.ingest_key(id);
            if self.orch.is_completed(&key) {
                continue;
            }
            self.queue
                .schedule_at(done.max(now), Ev::NewFileDone(id, self.epoch));
            self.degraded_scans.insert(id.0);
        }
        // catalogue evidence: the raw dataset exists but the journal
        // lost the ingest completion — harvest it, don't re-ingest
        let with_raw: Vec<ScanId> = self.raw_pids.keys().copied().collect();
        for id in with_raw {
            let key = self.ingest_key(id);
            if self.orch.is_completed(&key) {
                continue;
            }
            self.queue.schedule_at(now, Ev::NewFileDone(id, self.epoch));
            self.degraded_scans.insert(id.0);
        }
    }

    /// Re-adopt open spans from the replayed journal. The new
    /// incarnation resumes the span allocator above the highest
    /// journaled id, then re-links every open span to the dispatch
    /// tables `recover_durable` just rebuilt — matched by (scan, stage,
    /// facility) — so in-flight stages close on their original span when
    /// their op resolves. Open spans with no surviving op or transfer
    /// are closed `Cancelled`.
    fn reattach_spans(&mut self, now: SimInstant) {
        let traces = self.orch.merged_traces();
        self.next_span = self
            .next_span
            .max(traces.max_span_id().map_or(0, |m| m + 1));
        let by_name: BTreeMap<String, ScanId> = self
            .scans
            .iter()
            .map(|(&id, s)| (s.name.clone(), id))
            .collect();
        // live externals by trace coordinates (leg: 0 = to-HPC, 1 = back)
        let mut live_tx: BTreeMap<(ScanId, u8, String), Vec<TaskId>> = BTreeMap::new();
        for (&task, &(id, _b, leg, fac)) in &self.transfer_map {
            let leg = match leg {
                Leg::ToHpc => 0u8,
                Leg::Back => 1,
            };
            live_tx
                .entry((id, leg, fac.name().to_string()))
                .or_default()
                .push(task);
        }
        let mut live_ops: BTreeMap<(ScanId, String), Vec<u64>> = BTreeMap::new();
        for (&op, &(id, _b)) in &self.op_map {
            if let Some((f, _)) = Facility::decode_op(op) {
                live_ops
                    .entry((id, f.name().to_string()))
                    .or_default()
                    .push(op);
            }
        }
        let mut orphans: Vec<(String, SpanId)> = Vec::new();
        for trace in traces.scans() {
            let Some(&id) = by_name.get(&trace.scan) else {
                continue;
            };
            for span in trace.spans.iter().filter(|s| !s.is_closed()) {
                match span.stage {
                    Stage::Ingest => {
                        // completion is driven by the surviving staging
                        // worker (or evidence healing), which re-fires
                        // NewFileDone and closes this span
                        self.ingest_spans.insert(id, span.id);
                    }
                    Stage::Transfer | Stage::BackTransfer => {
                        let leg = if span.stage == Stage::Transfer { 0 } else { 1 };
                        let slot = live_tx
                            .get_mut(&(id, leg, span.facility.clone()))
                            .and_then(Vec::pop);
                        match slot {
                            Some(task) => {
                                self.transfer_spans.insert(task, span.id);
                            }
                            None => orphans.push((trace.scan.clone(), span.id)),
                        }
                    }
                    Stage::QueueWait => {
                        let slot = live_ops
                            .get_mut(&(id, span.facility.clone()))
                            .and_then(Vec::pop);
                        match slot {
                            Some(op) => {
                                // the expected in-job runtime died with
                                // the old incarnation: attribute the
                                // whole interval to queue-wait
                                self.op_spans
                                    .insert(op, (span.id, span.start, SimDuration::ZERO));
                            }
                            None => orphans.push((trace.scan.clone(), span.id)),
                        }
                    }
                    _ => orphans.push((trace.scan.clone(), span.id)),
                }
            }
        }
        for (scan, span) in orphans {
            self.span_end(now, &scan, span, SpanOutcome::Cancelled);
        }
    }

    /// Decode a submission label back into dispatch coordinates,
    /// rejecting scans this sim never produced.
    fn parse_ctx(&self, ctx_json: &str) -> Option<(ScanId, Branch, Leg, Facility)> {
        let ctx: OpCtx = serde_json::from_str(ctx_json).ok()?;
        let id = ScanId(ctx.scan);
        if !self.scans.contains_key(&id) {
            return None;
        }
        let leg = if ctx.leg == 0 { Leg::ToHpc } else { Leg::Back };
        Some((
            id,
            branch_from_key(ctx.branch),
            leg,
            Facility::from_key(ctx.fac)?,
        ))
    }

    /// Adopt one facility operation whose submission record the journal
    /// lost: re-claim its idempotency key (no ledger `begin` — the work
    /// was initiated once, by the dead incarnation), re-journal the
    /// submission, and mark the scan degraded. Returns false when the
    /// key is already completed or held — nothing to adopt.
    #[allow(clippy::too_many_arguments)]
    fn adopt_orphan(
        &mut self,
        now: SimInstant,
        id: ScanId,
        branch: Branch,
        fac: Facility,
        key: &str,
        kind: ExternalKind,
        handle: u64,
        ctx: &str,
    ) -> bool {
        if self.orch.claim(key, now, CLAIM_LEASE) != Claim::Run {
            return false;
        }
        let run = self.ensure_branch_run(now, id, branch, fac);
        self.orch.start_task(run, "adopt_orphan_op", Some(key), now);
        self.orch.external_submitted(kind, handle, run, ctx);
        self.adopted_orphan_ops += 1;
        self.degraded_scans.insert(id.0);
        true
    }

    /// The branch run for (scan, branch), re-created when the journal
    /// lost the FlowCreated record along with the submission.
    fn ensure_branch_run(
        &mut self,
        now: SimInstant,
        id: ScanId,
        branch: Branch,
        fac: Facility,
    ) -> FlowRunId {
        let bk = branch_key(branch);
        if let Some(&run) = self.branch_runs.get(&(id, bk)) {
            self.exec_site.entry((id, bk)).or_insert(fac);
            return run;
        }
        let name = self.scan_name(id);
        let run = self.orch.create_run(flow_of(branch), &name, now);
        self.orch.set_parameter(run, "scan", &name);
        self.orch.start_run(run, now);
        self.branch_runs.insert((id, bk), run);
        self.exec_site.insert((id, bk), fac);
        let home = home_fac(branch);
        if fac != home {
            // the adopted op was already executing at another facility:
            // record the redirect so provenance and re-claims line up
            let rec = self.router.recoveries(home);
            self.route_history
                .entry((id, bk))
                .or_insert_with(|| vec![(home, rec)]);
            self.orch.set_parameter(run, "failover", fac.name());
            self.orch
                .set_parameter(run, "route", &format!("{}>{}", home.name(), fac.name()));
        }
        run
    }

    /// Baseline restart (no journal): the new incarnation knows nothing.
    /// It walks the beamline filesystem and the catalogue and re-runs
    /// whatever looks unfinished — re-initiating work that is actually
    /// still in flight at the facilities (the duplicates the durable
    /// path exists to avoid).
    fn baseline_rescan(&mut self, now: SimInstant) {
        let ids: Vec<ScanId> = self.scans.keys().copied().collect();
        for id in ids {
            let scan = self.scans.get(&id).expect("scan exists").clone();
            if !self.beamline_tier.contains(&format!("{}.h5", scan.name)) {
                continue; // not saved yet; its ScanSaved event will come
            }
            let raw_pid = self
                .catalog
                .search(&scan.name)
                .into_iter()
                .find(|d| matches!(d.kind, als_catalog::DatasetKind::Raw))
                .map(|d| d.pid.clone());
            match raw_pid {
                None => self.start_new_file(now, id),
                Some(pid) => {
                    self.raw_pids.insert(id, pid);
                    for branch in [Branch::Nersc, Branch::Alcf] {
                        let product = format!("{}_recon_{}", scan.name, branch_name(branch));
                        if !self.beamline_tier.contains(&product) {
                            self.launch_branch(now, id, branch);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(n: usize, seed: u64) -> FacilitySim {
        let mut sim = FacilitySim::new(SimConfig {
            seed,
            ..Default::default()
        });
        let mut workload = ScanWorkload::production();
        sim.schedule_campaign(&mut workload, n);
        sim.run(None);
        sim
    }

    #[test]
    fn every_scan_produces_three_flow_runs() {
        let sim = run_small(5, 1);
        let engine = sim.engine();
        let q = engine.query();
        assert_eq!(q.runs_of(FLOW_NEW_FILE).len(), 5);
        assert_eq!(q.runs_of(FLOW_NERSC).len(), 5);
        assert_eq!(q.runs_of(FLOW_ALCF).len(), 5);
    }

    #[test]
    fn all_flows_complete_in_a_healthy_campaign() {
        let sim = run_small(8, 2);
        let engine = sim.engine();
        let q = engine.query();
        for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
            assert_eq!(
                q.success_rate(flow),
                Some(1.0),
                "{flow} should fully succeed"
            );
        }
        assert_eq!(sim.completed_scans, 16); // both branches × 8 scans
    }

    #[test]
    fn catalog_gets_raw_and_derived_datasets() {
        let sim = run_small(4, 3);
        // 4 raw + up to 8 recon datasets
        assert_eq!(sim.catalog.len(), 4 + 8);
        // provenance: each raw has two derived children
        let raws: Vec<_> = sim
            .catalog
            .search("scan")
            .into_iter()
            .filter(|d| matches!(d.kind, als_catalog::DatasetKind::Raw))
            .map(|d| d.pid.clone())
            .collect();
        assert_eq!(raws.len(), 4);
        for pid in raws {
            assert_eq!(sim.catalog.derived_chain(&pid).len(), 2);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_small(6, 42);
        let b = run_small(6, 42);
        let qa = a
            .engine()
            .query()
            .last_n_successful_durations(FLOW_NERSC, 10);
        let qb = b
            .engine()
            .query()
            .last_n_successful_durations(FLOW_NERSC, 10);
        assert_eq!(qa, qb);
        let c = run_small(6, 43);
        let qc = c
            .engine()
            .query()
            .last_n_successful_durations(FLOW_NERSC, 10);
        assert_ne!(qa, qc);
    }

    #[test]
    fn flow_durations_are_in_plausible_bands() {
        let sim = run_small(12, 7);
        let engine = sim.engine();
        let q = engine.query();
        let nf = q.table2_summary(FLOW_NEW_FILE, 100).unwrap();
        assert!(
            nf.median > 10.0 && nf.median < 300.0,
            "new_file med {}",
            nf.median
        );
        let nersc = q.table2_summary(FLOW_NERSC, 100).unwrap();
        assert!(
            nersc.median > 600.0 && nersc.median < 3000.0,
            "nersc med {}",
            nersc.median
        );
        let alcf = q.table2_summary(FLOW_ALCF, 100).unwrap();
        assert!(
            alcf.median > 500.0 && alcf.median < 2500.0,
            "alcf med {}",
            alcf.median
        );
    }

    #[test]
    fn beamline_tier_accumulates_raw_and_recon_files() {
        let sim = run_small(3, 9);
        // 3 raw + 6 recon outputs
        assert_eq!(sim.beamline_tier.file_count(), 9);
    }

    #[test]
    fn healthy_campaign_stays_on_home_facilities() {
        let sim = run_small(6, 11);
        assert_eq!(sim.failover_count, 0);
        assert_eq!(sim.max_route_hops(), 0);
        assert!(sim.router.decisions().iter().all(|d| d.chosen == d.home));
    }
}
