//! The multi-facility discrete-event simulation.
//!
//! This is the paper's Figure 3 as an executable model: the acquisition
//! layer emits scans; the orchestration layer runs the `new_file_832`,
//! `nersc_recon_flow`, and `alcf_recon_flow` state machines; the movement
//! layer is the Globus transfer service over the ESnet topology; the
//! compute layer is SFAPI/Slurm (realtime QOS) at NERSC and Globus
//! Compute pilot jobs at ALCF; the access layer is the storage tiers +
//! catalogue the results land in. Every flow run is recorded in the
//! Prefect-substitute engine, which is what the Table 2 report queries.

use crate::faults::{FaultKind, FaultPlan};
use crate::scan::{Scan, ScanId, ScanWorkload};
use als_catalog::{raw_scan_dataset, recon_dataset, Catalog, DatasetPid, InstrumentMetadata};
use als_globus::compute::{
    AcquisitionMode, ComputeEndpoint, ComputeEvent, ComputeTaskId, ComputeTaskState,
};
use als_globus::transfer::{EndpointId, TaskId, TransferEvent, TransferOptions, TransferService};
use als_globus::BandwidthMonitor;
use als_hpc::circuit::{BreakerConfig, CircuitBreaker};
use als_hpc::health::{Environment, HealthMonitor, HealthState};
use als_hpc::scheduler::{JobEvent, JobId, JobRequest, JobState, Qos};
use als_hpc::sfapi::{SfApiClient, SfApiServer};
use als_hpc::storage::{StorageTier, TierKind};
use als_netsim::{esnet_topology_with_nics, SiteId};
use als_orchestrator::engine::{FlowEngine, FlowRunId, FlowState, TaskState};
use als_orchestrator::limits::ConcurrencyLimits;
use als_orchestrator::schedule::Schedule;
use als_simcore::{ByteSize, EventQueue, SimDuration, SimInstant, SimRng};
use std::collections::{BTreeMap, BTreeSet};

/// Names of the three production flows (Table 2's rows).
pub const FLOW_NEW_FILE: &str = "new_file_832";
pub const FLOW_NERSC: &str = "nersc_recon_flow";
pub const FLOW_ALCF: &str = "alcf_recon_flow";

/// Simulation configuration (the ablation knobs live here).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Fail transfers immediately on permission errors (§5.3 remediation).
    pub fail_fast: bool,
    /// QOS for NERSC reconstruction jobs (paper: `realtime`).
    pub nersc_qos: Qos,
    /// ALCF node acquisition (paper: demand queue via Globus Compute).
    pub alcf_mode: AcquisitionMode,
    /// Verify checksums on Globus transfers (paper: enabled).
    pub verify_checksums: bool,
    /// Concurrent Globus transfer tasks.
    pub transfer_concurrency: usize,
    /// Nodes in the NERSC realtime partition slice.
    pub nersc_nodes: usize,
    /// Max pilot nodes the ALCF endpoint may hold.
    pub alcf_max_nodes: usize,
    /// Mean seconds between competing (non-ALS) NERSC job arrivals;
    /// `None` disables background load.
    pub background_mean_arrival_s: Option<f64>,
    /// Run the daily pruning flows.
    pub pruning_enabled: bool,
    /// Number of beamline servers feeding the pipeline (each brings its
    /// own 10 Gbps NIC — the §6 multi-beamline rollout).
    pub beamline_count: usize,
    /// Deterministic fault schedule replayed during the campaign
    /// (default: none — a healthy campaign).
    pub faults: FaultPlan,
    /// Route recon branches away from an unhealthy facility (circuit
    /// breakers + NERSC↔ALCF redirects, the §5.3 remediation). With an
    /// empty fault plan this changes nothing.
    pub failover_enabled: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 832,
            fail_fast: true,
            nersc_qos: Qos::Realtime,
            alcf_mode: AcquisitionMode::DemandQueue,
            verify_checksums: true,
            transfer_concurrency: 4,
            nersc_nodes: 8,
            alcf_max_nodes: 4,
            background_mean_arrival_s: Some(360.0),
            pruning_enabled: true,
            beamline_count: 1,
            faults: FaultPlan::none(),
            failover_enabled: true,
        }
    }
}

/// Which recon branch a transfer/job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    Nersc,
    Alcf,
}

/// Which transfer leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    ToHpc,
    Back,
}

/// Events driving the simulation.
#[derive(Debug, Clone)]
enum Ev {
    /// A scan begins acquiring.
    ScanStart(ScanId),
    /// The file writer finished saving the scan.
    ScanSaved(ScanId),
    /// `new_file_832` completed (staging + metadata ingestion done).
    NewFileDone(ScanId),
    /// Poll the Globus transfer service.
    PollTransfers,
    /// Poll the NERSC scheduler.
    PollNersc,
    /// Poll the ALCF compute endpoint.
    PollAlcf,
    /// Daily pruning flows fire.
    PruneTick,
    /// A competing (non-ALS) job arrives at NERSC.
    BackgroundArrival,
    /// The `i`-th fault window of the plan opens.
    FaultStart(usize),
    /// The `i`-th fault window of the plan closes.
    FaultEnd(usize),
    /// Facilities emit heartbeats; the router checks for staleness.
    HealthTick,
    /// Deadline for a NERSC job: if still live, it is stranded behind an
    /// outage — cancel it remotely and fail over.
    JobDeadline(JobId),
    /// Deadline for an ALCF invocation, same semantics.
    TaskDeadline(ComputeTaskId),
}

/// Calibration constants for the paper-scale cost models. Centralized so
/// the Table 2 calibration has one knob panel.
pub mod calib {
    /// new_file_832: fixed metadata-ingestion cost (s).
    pub const NEWFILE_INGEST_S: f64 = 4.0;
    /// new_file_832: median of the orchestration-jitter lognormal (s).
    pub const NEWFILE_JITTER_MED_S: f64 = 25.0;
    /// new_file_832: sigma of the jitter lognormal.
    pub const NEWFILE_JITTER_SIGMA: f64 = 1.5;
    /// new_file_832: jitter clamp (s).
    pub const NEWFILE_JITTER_MAX_S: f64 = 640.0;

    /// NERSC job: fixed startup (container, darks/flats, COR search) (s).
    pub const NERSC_JOB_FIXED_S: f64 = 200.0;
    /// NERSC job: reconstruction seconds per raw GiB (preprocessing +
    /// iterative solve + TIFF/Zarr writes on a 128-core node).
    pub const NERSC_RECON_S_PER_GIB: f64 = 52.0;

    /// ALCF function: median of the fixed-overhead lognormal (endpoint
    /// polling, function serialization, Eagle staging) (s).
    pub const ALCF_FIXED_MED_S: f64 = 560.0;
    /// ALCF function: sigma of the fixed-overhead lognormal.
    pub const ALCF_FIXED_SIGMA: f64 = 0.22;
    /// ALCF function: reconstruction seconds per raw GiB (GPU-assisted).
    pub const ALCF_RECON_S_PER_GIB: f64 = 13.0;

    /// Walltime margin over the expected runtime.
    pub const WALLTIME_MARGIN: f64 = 2.0;
}

/// The simulation state.
pub struct FacilitySim {
    pub cfg: SimConfig,
    queue: EventQueue<Ev>,
    rng: SimRng,
    pub engine: FlowEngine,
    pub limits: ConcurrencyLimits,
    pub catalog: Catalog,
    pub monitor: BandwidthMonitor,

    transfer: TransferService,
    ep_als: EndpointId,
    ep_nersc: EndpointId,
    ep_alcf: EndpointId,

    nersc: SfApiServer,
    nersc_client: SfApiClient,
    alcf: ComputeEndpoint,

    pub beamline_tier: StorageTier,
    pub cfs_tier: StorageTier,
    pub eagle_tier: StorageTier,
    pub hpss_tier: StorageTier,

    prune_schedule: Schedule,

    scans: BTreeMap<ScanId, Scan>,
    newfile_runs: BTreeMap<ScanId, FlowRunId>,
    branch_runs: BTreeMap<(ScanId, u8), FlowRunId>,
    transfer_map: BTreeMap<TaskId, (ScanId, Branch, Leg)>,
    /// Live NERSC jobs → (scan, *flow* branch they serve). After a
    /// failover an ALCF-branch flow may execute at NERSC, so the value is
    /// the branch identity, not the facility.
    job_map: BTreeMap<JobId, (ScanId, Branch)>,
    compute_map: BTreeMap<ComputeTaskId, (ScanId, Branch)>,
    raw_pids: BTreeMap<ScanId, DatasetPid>,

    /// Facility actually executing each flow branch (differs from the
    /// branch's home facility after a failover redirect).
    exec_site: BTreeMap<(ScanId, u8), Branch>,
    /// Branches that already failed over once (failover is one-shot).
    failed_over: BTreeSet<(ScanId, u8)>,
    /// Facility heartbeats + per-facility circuit breakers (§5.3).
    pub health: HealthMonitor,
    pub nersc_breaker: CircuitBreaker,
    pub alcf_breaker: CircuitBreaker,
    nersc_heartbeats_suppressed: bool,
    alcf_heartbeats_suppressed: bool,

    /// Completed end-to-end scans (both branches finished).
    pub completed_scans: usize,
    /// Branch redirects performed (NERSC↔ALCF).
    pub failover_count: usize,
    /// Jobs/invocations cancelled remotely after missing their deadline.
    pub remote_cancel_count: usize,
}

fn branch_key(b: Branch) -> u8 {
    match b {
        Branch::Nersc => 0,
        Branch::Alcf => 1,
    }
}

fn other_branch(b: Branch) -> Branch {
    match b {
        Branch::Nersc => Branch::Alcf,
        Branch::Alcf => Branch::Nersc,
    }
}

fn facility_name(b: Branch) -> &'static str {
    match b {
        Branch::Nersc => "nersc",
        Branch::Alcf => "alcf",
    }
}

/// Facility heartbeat cadence (and how stale one may get before the
/// router trips the facility's breaker).
const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_secs(60);
const HEARTBEAT_FRESHNESS: SimDuration = SimDuration::from_secs(180);
/// Slack past a job's walltime before the deadline watchdog fires.
const DEADLINE_SLACK_S: f64 = 600.0;

impl FacilitySim {
    pub fn new(cfg: SimConfig) -> Self {
        let mut transfer = TransferService::new(
            esnet_topology_with_nics(cfg.beamline_count.max(1)),
            cfg.transfer_concurrency,
        );
        let ep_als = transfer.register_endpoint(SiteId::Als);
        let ep_nersc = transfer.register_endpoint(SiteId::Nersc);
        let ep_alcf = transfer.register_endpoint(SiteId::Alcf);
        let rng = SimRng::seeded(cfg.seed);
        let mut health = HealthMonitor::new();
        health.register("nersc", Environment::Production, HEARTBEAT_FRESHNESS);
        health.register("alcf", Environment::Production, HEARTBEAT_FRESHNESS);
        let breaker_cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_mins(10),
        };
        FacilitySim {
            queue: EventQueue::new(),
            rng,
            engine: FlowEngine::new(),
            limits: ConcurrencyLimits::production(),
            catalog: Catalog::new(),
            monitor: BandwidthMonitor::new(),
            transfer,
            ep_als,
            ep_nersc,
            ep_alcf,
            nersc: SfApiServer::new(cfg.nersc_nodes),
            nersc_client: SfApiClient::new("als"),
            alcf: ComputeEndpoint::new(cfg.alcf_mode, cfg.alcf_max_nodes),
            beamline_tier: StorageTier::new(TierKind::BeamlineData, ByteSize::from_tib(20)),
            cfs_tier: StorageTier::new(TierKind::Cfs, ByteSize::from_tib(500)),
            eagle_tier: StorageTier::new(TierKind::Eagle, ByteSize::from_tib(100)),
            hpss_tier: StorageTier::new(TierKind::Hpss, ByteSize::from_tib(10_000)),
            prune_schedule: Schedule::daily_pruning(SimInstant::ZERO),
            scans: BTreeMap::new(),
            newfile_runs: BTreeMap::new(),
            branch_runs: BTreeMap::new(),
            transfer_map: BTreeMap::new(),
            job_map: BTreeMap::new(),
            compute_map: BTreeMap::new(),
            raw_pids: BTreeMap::new(),
            exec_site: BTreeMap::new(),
            failed_over: BTreeSet::new(),
            health,
            nersc_breaker: CircuitBreaker::new(breaker_cfg),
            alcf_breaker: CircuitBreaker::new(breaker_cfg),
            nersc_heartbeats_suppressed: false,
            alcf_heartbeats_suppressed: false,
            completed_scans: 0,
            failover_count: 0,
            remote_cancel_count: 0,
            cfg,
        }
    }

    pub fn now(&self) -> SimInstant {
        self.queue.now()
    }

    /// Queue up `n` scans from a workload, with background load and
    /// pruning schedules armed.
    pub fn schedule_campaign(&mut self, workload: &mut ScanWorkload, n: usize) {
        let mut t = SimInstant::ZERO + SimDuration::from_secs(10);
        for _ in 0..n {
            let (scan, gap) = workload.next_scan(&mut self.rng);
            let id = scan.id;
            self.scans.insert(id, scan);
            self.queue.schedule_at(t, Ev::ScanStart(id));
            t += gap;
        }
        // competing NERSC load exists only for the campaign window —
        // pre-generated so the event queue drains when the work is done
        if let Some(mean) = self.cfg.background_mean_arrival_s {
            let mut bg = SimInstant::ZERO + SimDuration::from_secs_f64(self.rng.exponential(mean));
            while bg < t {
                self.queue.schedule_at(bg, Ev::BackgroundArrival);
                bg += SimDuration::from_secs_f64(self.rng.exponential(mean));
            }
        }
        if self.cfg.pruning_enabled {
            // pruning runs daily while scans are still being acquired
            while self.prune_schedule.next_fire() < t {
                let fire = self.prune_schedule.next_fire();
                self.queue.schedule_at(fire, Ev::PruneTick);
                self.prune_schedule.due(fire);
            }
        }
        // arm the fault plan + the heartbeat/health machinery (windows
        // and heartbeats are pre-scheduled so the event queue stays
        // finite and the campaign drains)
        let faults = self.cfg.faults.clone();
        for (i, w) in faults.windows.iter().enumerate() {
            self.queue.schedule_at(w.start, Ev::FaultStart(i));
            self.queue.schedule_at(w.end, Ev::FaultEnd(i));
        }
        if self.cfg.failover_enabled && !faults.is_empty() {
            let mut horizon = t + SimDuration::from_hours(3);
            for w in &faults.windows {
                horizon = horizon.max(w.end + SimDuration::from_hours(2));
            }
            let mut ht = SimInstant::ZERO;
            while ht < horizon {
                self.queue.schedule_at(ht, Ev::HealthTick);
                ht += HEARTBEAT_PERIOD;
            }
        }
    }

    /// Run until no events remain (or an optional horizon passes).
    pub fn run(&mut self, horizon: Option<SimInstant>) {
        while let Some(t) = self.queue.peek_time() {
            if horizon.is_some_and(|h| t > h) {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.handle(now, ev);
        }
    }

    fn transfer_opts(&self) -> TransferOptions {
        TransferOptions {
            verify_checksum: self.cfg.verify_checksums,
            max_retries: 2,
            fail_fast: self.cfg.fail_fast,
        }
    }

    fn schedule_transfer_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.transfer.next_event_time(now) {
            self.queue.schedule_at(t.max(now), Ev::PollTransfers);
        }
    }

    fn schedule_nersc_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.nersc.scheduler().next_event_time() {
            self.queue.schedule_at(t.max(now), Ev::PollNersc);
        }
    }

    fn schedule_alcf_poll(&mut self, now: SimInstant) {
        if let Some(t) = self.alcf.next_event_time() {
            self.queue.schedule_at(t.max(now), Ev::PollAlcf);
        }
    }

    fn handle(&mut self, now: SimInstant, ev: Ev) {
        match ev {
            Ev::ScanStart(id) => self.on_scan_start(now, id),
            Ev::ScanSaved(id) => self.on_scan_saved(now, id),
            Ev::NewFileDone(id) => self.on_new_file_done(now, id),
            Ev::PollTransfers => self.on_poll_transfers(now),
            Ev::PollNersc => self.on_poll_nersc(now),
            Ev::PollAlcf => self.on_poll_alcf(now),
            Ev::PruneTick => self.on_prune(now),
            Ev::BackgroundArrival => self.on_background(now),
            Ev::FaultStart(i) => self.on_fault_start(now, i),
            Ev::FaultEnd(i) => self.on_fault_end(now, i),
            Ev::HealthTick => self.on_health_tick(now),
            Ev::JobDeadline(job) => self.on_job_deadline(now, job),
            Ev::TaskDeadline(task) => self.on_task_deadline(now, task),
        }
    }

    fn on_scan_start(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        // acquisition + the file writer flushing frames to beamline disk
        let write_time = self.beamline_tier.io_time(scan.size);
        self.queue
            .schedule_at(now + scan.acquisition + write_time, Ev::ScanSaved(id));
    }

    fn on_scan_saved(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        // store the raw file on the beamline data tier
        if self
            .beamline_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .is_err()
        {
            // beamline disk full: the flow fails outright (what the
            // pruning flows exist to prevent)
            let run = self.engine.create_run(FLOW_NEW_FILE, now);
            self.engine.start_run(run, now);
            self.engine.finish_run(run, FlowState::Failed, now);
            return;
        }
        // new_file_832: data movement between beamline servers + SciCat
        // ingestion + orchestration latency
        let run = self.engine.create_run(FLOW_NEW_FILE, now);
        self.engine.set_parameter(run, "scan", &scan.name);
        self.engine
            .set_parameter(run, "size_gib", &format!("{:.3}", scan.size.as_gib_f64()));
        self.engine.start_run(run, now);
        self.newfile_runs.insert(id, run);
        let staging = self.beamline_tier.io_time(scan.size);
        let jitter = SimDuration::from_secs_f64(
            self.rng
                .lognormal_med(calib::NEWFILE_JITTER_MED_S, calib::NEWFILE_JITTER_SIGMA)
                .clamp(1.0, calib::NEWFILE_JITTER_MAX_S),
        );
        let ingest = SimDuration::from_secs_f64(calib::NEWFILE_INGEST_S);
        let task = self.engine.start_task(
            run,
            "stage_and_ingest",
            Some(&format!("{}/ingest", scan.name)),
            now,
        );
        let done = now + staging + ingest + jitter;
        self.engine
            .finish_task(run, task, TaskState::Completed, done, None);
        self.queue.schedule_at(done, Ev::NewFileDone(id));
    }

    fn on_new_file_done(&mut self, now: SimInstant, id: ScanId) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        if let Some(run) = self.newfile_runs.get(&id) {
            self.engine.finish_run(*run, FlowState::Completed, now);
        }
        // catalogue the raw dataset
        let dims = scan.dims();
        let raw = raw_scan_dataset(
            &scan.name,
            "beamline-user",
            now,
            scan.size,
            InstrumentMetadata {
                beamline: "8.3.2".into(),
                n_angles: dims.n_angles,
                detector_rows: dims.det_rows,
                detector_cols: dims.det_cols,
                pixel_size_um: 0.65,
                exposure_ms: 30.0,
            },
        );
        let raw_pid = raw.pid.clone();
        self.catalog.ingest(raw).ok();
        self.raw_pids.insert(id, raw_pid);

        // launch both file-based branches in parallel
        for branch in [Branch::Nersc, Branch::Alcf] {
            let flow_name = match branch {
                Branch::Nersc => FLOW_NERSC,
                Branch::Alcf => FLOW_ALCF,
            };
            let run = self.engine.create_run(flow_name, now);
            self.engine.set_parameter(run, "scan", &scan.name);
            self.engine.start_run(run, now);
            self.branch_runs.insert((id, branch_key(branch)), run);
            // route around a facility whose breaker is open (launch-time
            // failover: the raw data goes straight to the healthy site)
            let exec = self.choose_exec_site(now, id, branch);
            let dst = self.branch_endpoint(exec);
            let opts = self.transfer_opts();
            let task = self.transfer.submit(self.ep_als, dst, scan.size, opts, now);
            self.transfer_map.insert(task, (id, branch, Leg::ToHpc));
            let t = self.engine.start_task(
                run,
                "globus_copy_to_hpc",
                Some(&format!("{}/{flow_name}/copy", scan.name)),
                now,
            );
            debug_assert_eq!(t, 0);
        }
        self.schedule_transfer_poll(now);
    }

    fn branch_endpoint(&self, b: Branch) -> EndpointId {
        match b {
            Branch::Nersc => self.ep_nersc,
            Branch::Alcf => self.ep_alcf,
        }
    }

    fn breaker_allows(&mut self, facility: Branch, now: SimInstant) -> bool {
        match facility {
            Branch::Nersc => self.nersc_breaker.allow_request(now),
            Branch::Alcf => self.alcf_breaker.allow_request(now),
        }
    }

    /// Pick the facility that will execute a newly launched flow branch:
    /// its home facility unless that breaker refuses and the other
    /// facility's breaker accepts.
    fn choose_exec_site(&mut self, now: SimInstant, id: ScanId, branch: Branch) -> Branch {
        let bk = branch_key(branch);
        let mut exec = branch;
        if self.cfg.failover_enabled && !self.breaker_allows(branch, now) {
            let other = other_branch(branch);
            if self.breaker_allows(other, now) {
                exec = other;
                self.failed_over.insert((id, bk));
                self.failover_count += 1;
                if let Some(&run) = self.branch_runs.get(&(id, bk)) {
                    self.engine
                        .set_parameter(run, "failover", facility_name(other));
                }
            }
        }
        self.exec_site.insert((id, bk), exec);
        exec
    }

    fn on_poll_transfers(&mut self, now: SimInstant) {
        let events = self.transfer.advance_to(now);
        for ev in events {
            match ev {
                TransferEvent::Succeeded { task, at } => {
                    let Some((id, branch, leg)) = self.transfer_map.remove(&task) else {
                        continue;
                    };
                    let scan = self.scans.get(&id).expect("scan exists").clone();
                    let size = match leg {
                        Leg::ToHpc => scan.size,
                        Leg::Back => scan.recon_output_size(),
                    };
                    if let Some(d) = self.transfer.task_duration(task) {
                        self.monitor.record(at, size, d);
                    }
                    let exec = self
                        .exec_site
                        .get(&(id, branch_key(branch)))
                        .copied()
                        .unwrap_or(branch);
                    match (exec, leg) {
                        (Branch::Nersc, Leg::ToHpc) => self.nersc_job_submit(at, id, branch),
                        (Branch::Alcf, Leg::ToHpc) => self.alcf_invoke(at, id, branch),
                        (_, Leg::Back) => self.finish_branch(at, id, branch, true),
                    }
                }
                TransferEvent::Failed { task, at, .. } => {
                    if let Some((id, branch, _)) = self.transfer_map.remove(&task) {
                        self.branch_failed(at, id, branch);
                    }
                }
                TransferEvent::Started { .. } | TransferEvent::Retrying { .. } => {}
            }
        }
        self.schedule_transfer_poll(now);
    }

    /// Should deadline watchdogs be armed? Only in fault-injected runs —
    /// a healthy campaign never needs remote cancellation. (Armed even
    /// with failover disabled: cancelling stranded work is the baseline
    /// operator behavior; rerouting it is the remediation under test.)
    fn deadlines_armed(&self) -> bool {
        !self.cfg.faults.is_empty()
    }

    /// NERSC: stage to CFS, submit the realtime Slurm job through SFAPI.
    /// `branch` is the *flow* branch this execution serves (it may be the
    /// ALCF flow, redirected here by a failover).
    fn nersc_job_submit(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.cfs_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .ok();
        let gib = scan.size.as_gib_f64();
        // inside the job: copy CFS→pscratch, reconstruct, write TIFF+Zarr
        let stage = self.cfs_tier.io_time(scan.size);
        let recon = SimDuration::from_secs_f64(
            calib::NERSC_JOB_FIXED_S + calib::NERSC_RECON_S_PER_GIB * gib,
        );
        let runtime = stage + recon;
        let walltime =
            SimDuration::from_secs_f64(runtime.as_secs_f64() * calib::WALLTIME_MARGIN + 900.0);
        let req = JobRequest {
            name: format!("recon_{}", scan.name),
            qos: self.cfg.nersc_qos,
            nodes: 1,
            runtime,
            walltime_limit: walltime,
        };
        match self.nersc_client.submit(&mut self.nersc, req, now) {
            Ok((job, _events)) => {
                self.job_map.insert(job, (id, branch));
                if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
                    self.engine.start_task(
                        run,
                        "sfapi_slurm_job",
                        Some(&format!("{}/nersc/job", scan.name)),
                        now,
                    );
                }
                if self.deadlines_armed() {
                    let deadline = now + walltime + SimDuration::from_secs_f64(DEADLINE_SLACK_S);
                    self.queue.schedule_at(deadline, Ev::JobDeadline(job));
                }
                self.schedule_nersc_poll(now);
            }
            Err(_) => self.branch_failed(now, id, branch),
        }
    }

    /// ALCF: stage to Eagle, dispatch the reconstruction function via
    /// Globus Compute. `branch` is the flow branch being served.
    fn alcf_invoke(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        self.eagle_tier
            .put(&format!("{}.h5", scan.name), scan.size, now)
            .ok();
        let gib = scan.size.as_gib_f64();
        let fixed = self
            .rng
            .lognormal_med(calib::ALCF_FIXED_MED_S, calib::ALCF_FIXED_SIGMA)
            .clamp(300.0, 1500.0);
        let runtime = SimDuration::from_secs_f64(fixed + calib::ALCF_RECON_S_PER_GIB * gib);
        let task = self.alcf.invoke(runtime, now);
        if self.alcf.state(task) == Some(ComputeTaskState::Failed) {
            // endpoint down: the invocation is rejected on arrival
            self.branch_failed(now, id, branch);
            return;
        }
        self.compute_map.insert(task, (id, branch));
        if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
            self.engine.start_task(
                run,
                "globus_compute_recon",
                Some(&format!("{}/alcf/fn", scan.name)),
                now,
            );
        }
        if self.deadlines_armed() {
            let deadline = now + runtime * 2.0 + SimDuration::from_secs(3600);
            self.queue.schedule_at(deadline, Ev::TaskDeadline(task));
        }
        self.schedule_alcf_poll(now);
    }

    /// Does this completion get converted to a transient failure by the
    /// plan's background job-failure probability? (The rng is consulted
    /// only when the probability is non-zero, preserving the healthy-run
    /// random streams.)
    fn rolls_transient_failure(&mut self) -> bool {
        let p = self.cfg.faults.job_failure_prob;
        p > 0.0 && self.rng.chance(p)
    }

    fn on_poll_nersc(&mut self, now: SimInstant) {
        let events = self.nersc.scheduler_mut().advance_to(now);
        for ev in events {
            if let JobEvent::Finished { id: job, at, state } = ev {
                let Some((scan_id, branch)) = self.job_map.remove(&job) else {
                    continue; // background or abandoned job
                };
                if state == JobState::Completed && !self.rolls_transient_failure() {
                    self.nersc_breaker.record_success();
                    self.start_back_transfer(at, scan_id, branch);
                } else {
                    self.branch_failed(at, scan_id, branch);
                }
            }
        }
        self.schedule_nersc_poll(now);
    }

    fn on_poll_alcf(&mut self, now: SimInstant) {
        let events = self.alcf.advance_to(now);
        for ev in events {
            if let ComputeEvent::Finished { task, at } = ev {
                if let Some((scan_id, branch)) = self.compute_map.remove(&task) {
                    if self.rolls_transient_failure() {
                        self.branch_failed(at, scan_id, branch);
                    } else {
                        self.alcf_breaker.record_success();
                        self.start_back_transfer(at, scan_id, branch);
                    }
                }
            }
        }
        self.schedule_alcf_poll(now);
    }

    /// Deadline watchdog: the job never finished — it is stranded behind
    /// a facility outage. Cancel it remotely (§5.3: "remotely cancelling
    /// stuck jobs") and route the branch elsewhere.
    fn on_job_deadline(&mut self, now: SimInstant, job: JobId) {
        let Some((scan_id, branch)) = self.job_map.remove(&job) else {
            return; // finished in time
        };
        // removed from job_map first so the Cancelled event is ignored
        self.nersc_client.cancel(&mut self.nersc, job, now).ok();
        self.remote_cancel_count += 1;
        if let Some(&run) = self.branch_runs.get(&(scan_id, branch_key(branch))) {
            self.engine
                .start_task(run, "remote_cancel_stranded_job", None, now);
        }
        self.schedule_nersc_poll(now);
        self.branch_failed(now, scan_id, branch);
    }

    fn on_task_deadline(&mut self, now: SimInstant, task: ComputeTaskId) {
        let Some((scan_id, branch)) = self.compute_map.remove(&task) else {
            return;
        };
        self.alcf.cancel(task, now);
        self.remote_cancel_count += 1;
        if let Some(&run) = self.branch_runs.get(&(scan_id, branch_key(branch))) {
            self.engine
                .start_task(run, "remote_cancel_stranded_job", None, now);
        }
        self.schedule_alcf_poll(now);
        self.branch_failed(now, scan_id, branch);
    }

    /// Move the reconstruction products back to the beamline data server
    /// from wherever the branch actually executed.
    fn start_back_transfer(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let scan = self.scans.get(&id).expect("scan exists").clone();
        let exec = self
            .exec_site
            .get(&(id, branch_key(branch)))
            .copied()
            .unwrap_or(branch);
        let src = self.branch_endpoint(exec);
        let opts = self.transfer_opts();
        let task = self
            .transfer
            .submit(src, self.ep_als, scan.recon_output_size(), opts, now);
        self.transfer_map.insert(task, (id, branch, Leg::Back));
        if let Some(&run) = self.branch_runs.get(&(id, branch_key(branch))) {
            self.engine.start_task(run, "globus_copy_back", None, now);
        }
        self.schedule_transfer_poll(now);
    }

    /// A branch's execution failed. Record it against the facility that
    /// ran it; then either fail over (once per branch, if the other
    /// facility's breaker accepts) or fail the flow run.
    fn branch_failed(&mut self, now: SimInstant, id: ScanId, branch: Branch) {
        let bk = branch_key(branch);
        let exec = self.exec_site.get(&(id, bk)).copied().unwrap_or(branch);
        match exec {
            Branch::Nersc => self.nersc_breaker.record_failure(now),
            Branch::Alcf => self.alcf_breaker.record_failure(now),
        }
        self.health
            .report_error(facility_name(exec), now, "branch execution failed");
        if self.cfg.failover_enabled && !self.failed_over.contains(&(id, bk)) {
            let target = other_branch(exec);
            if self.breaker_allows(target, now) {
                self.failed_over.insert((id, bk));
                self.failover_count += 1;
                self.exec_site.insert((id, bk), target);
                let scan = self.scans.get(&id).expect("scan exists").clone();
                if let Some(&run) = self.branch_runs.get(&(id, bk)) {
                    self.engine
                        .set_parameter(run, "failover", facility_name(target));
                    self.engine.start_task(run, "failover_redirect", None, now);
                }
                // re-ship the raw data from the beamline to the healthy
                // facility; the normal ToHpc machinery takes over
                let dst = self.branch_endpoint(target);
                let opts = self.transfer_opts();
                let task = self.transfer.submit(self.ep_als, dst, scan.size, opts, now);
                self.transfer_map.insert(task, (id, branch, Leg::ToHpc));
                self.schedule_transfer_poll(now);
                return;
            }
        }
        self.finish_branch(now, id, branch, false);
    }

    /// Terminal transition for one branch of one scan.
    fn finish_branch(&mut self, now: SimInstant, id: ScanId, branch: Branch, ok: bool) {
        let Some(run) = self.branch_runs.get(&(id, branch_key(branch))).copied() else {
            return;
        };
        let scan = self.scans.get(&id).expect("scan exists").clone();
        if ok {
            // the facility that produced the recon (≠ home facility
            // after a failover) is what provenance should record
            let exec = self
                .exec_site
                .get(&(id, branch_key(branch)))
                .copied()
                .unwrap_or(branch);
            // register the derived dataset with provenance to the raw scan
            if let Some(raw_pid) = self.raw_pids.get(&id) {
                self.catalog
                    .ingest(recon_dataset(
                        &scan.name,
                        facility_name(exec),
                        raw_pid,
                        now,
                        scan.recon_output_size(),
                    ))
                    .ok();
            }
            // the product file is named for the flow branch (stable even
            // when a failover ran it elsewhere), so names stay unique
            self.beamline_tier
                .put(
                    &format!("{}_recon_{}", scan.name, facility_name(branch)),
                    scan.recon_output_size(),
                    now,
                )
                .ok();
            self.engine.finish_run(run, FlowState::Completed, now);
            self.completed_scans += 1;
        } else {
            self.engine.finish_run(run, FlowState::Failed, now);
        }
    }

    fn on_fault_start(&mut self, now: SimInstant, i: usize) {
        let kind = self.cfg.faults.windows[i].kind;
        match kind {
            FaultKind::NerscOutage => {
                // the partition drains; running ALS jobs die with it; the
                // DTN stays up, so in-flight transfers still land and
                // their jobs strand in the queue (the paper's incident)
                let total = self.nersc.scheduler().total_nodes();
                self.nersc.scheduler_mut().set_offline(total, now);
                let running: Vec<JobId> = self
                    .job_map
                    .iter()
                    .filter(|(job, _)| {
                        self.nersc.scheduler().state(**job) == Some(JobState::Running)
                    })
                    .map(|(job, _)| *job)
                    .collect();
                for job in running {
                    let (scan_id, branch) = self.job_map.remove(&job).expect("job is mapped");
                    self.nersc.scheduler_mut().fail(job, now);
                    self.branch_failed(now, scan_id, branch);
                }
                self.nersc_heartbeats_suppressed = true;
                self.schedule_nersc_poll(now);
            }
            FaultKind::AlcfOutage => {
                let events = self.alcf.set_down(true, now);
                for ev in events {
                    if let ComputeEvent::Failed { task, at } = ev {
                        if let Some((scan_id, branch)) = self.compute_map.remove(&task) {
                            self.branch_failed(at, scan_id, branch);
                        }
                    }
                }
                self.alcf_heartbeats_suppressed = true;
            }
            FaultKind::EsnetBrownout { capacity_factor } => {
                self.transfer.set_wan_capacity_factor(capacity_factor, now);
                self.schedule_transfer_poll(now);
            }
            FaultKind::SfApiAuthExpiry => {
                self.nersc.set_auth_available(false);
                self.nersc.revoke_all_tokens();
            }
            FaultKind::TransferCorruption { burst } => {
                self.transfer.corrupt_next(self.ep_nersc, burst);
                self.transfer.corrupt_next(self.ep_alcf, burst);
            }
        }
    }

    fn on_fault_end(&mut self, now: SimInstant, i: usize) {
        let kind = self.cfg.faults.windows[i].kind;
        match kind {
            FaultKind::NerscOutage => {
                self.nersc.scheduler_mut().set_offline(0, now);
                self.nersc_heartbeats_suppressed = false;
                self.schedule_nersc_poll(now);
            }
            FaultKind::AlcfOutage => {
                self.alcf.set_down(false, now);
                self.alcf_heartbeats_suppressed = false;
                self.schedule_alcf_poll(now);
            }
            FaultKind::EsnetBrownout { .. } => {
                self.transfer.set_wan_capacity_factor(1.0, now);
                self.schedule_transfer_poll(now);
            }
            FaultKind::SfApiAuthExpiry => {
                self.nersc.set_auth_available(true);
            }
            FaultKind::TransferCorruption { .. } => {
                self.transfer.corrupt_next(self.ep_nersc, 0);
                self.transfer.corrupt_next(self.ep_alcf, 0);
            }
        }
    }

    fn facility_health(&self, name: &str, now: SimInstant) -> HealthState {
        self.health
            .check(Environment::Production, now)
            .into_iter()
            .find(|c| c.service == name)
            .map(|c| c.state)
            .unwrap_or(HealthState::Unknown)
    }

    /// Heartbeat cadence: facilities under an outage stay silent; a
    /// heartbeat gone stale force-opens that facility's breaker (the
    /// monitor sees the outage before enough job failures accumulate).
    fn on_health_tick(&mut self, now: SimInstant) {
        if !self.nersc_heartbeats_suppressed {
            self.health.heartbeat("nersc", now);
        }
        if !self.alcf_heartbeats_suppressed {
            self.health.heartbeat("alcf", now);
        }
        if self.facility_health("nersc", now) == HealthState::Stale {
            self.nersc_breaker.force_open(now);
        }
        if self.facility_health("alcf", now) == HealthState::Stale {
            self.alcf_breaker.force_open(now);
        }
    }

    fn on_prune(&mut self, now: SimInstant) {
        self.beamline_tier.prune(now);
        self.cfs_tier.prune(now);
        self.eagle_tier.prune(now);
    }

    fn on_background(&mut self, now: SimInstant) {
        // a competing regular-QOS job from another NERSC user
        let runtime =
            SimDuration::from_secs_f64(self.rng.lognormal_med(1200.0, 0.5).clamp(120.0, 7200.0));
        let nodes = 1 + self.rng.uniform_u64(0, 2) as usize;
        let req = JobRequest {
            name: "background".into(),
            qos: Qos::Regular,
            nodes: nodes.min(self.cfg.nersc_nodes),
            runtime,
            walltime_limit: runtime * 2.0,
        };
        self.nersc.scheduler_mut().submit(req, now);
        self.schedule_nersc_poll(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(n: usize, seed: u64) -> FacilitySim {
        let mut sim = FacilitySim::new(SimConfig {
            seed,
            ..Default::default()
        });
        let mut workload = ScanWorkload::production();
        sim.schedule_campaign(&mut workload, n);
        sim.run(None);
        sim
    }

    #[test]
    fn every_scan_produces_three_flow_runs() {
        let sim = run_small(5, 1);
        let q = sim.engine.query();
        assert_eq!(q.runs_of(FLOW_NEW_FILE).len(), 5);
        assert_eq!(q.runs_of(FLOW_NERSC).len(), 5);
        assert_eq!(q.runs_of(FLOW_ALCF).len(), 5);
    }

    #[test]
    fn all_flows_complete_in_a_healthy_campaign() {
        let sim = run_small(8, 2);
        let q = sim.engine.query();
        for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
            assert_eq!(
                q.success_rate(flow),
                Some(1.0),
                "{flow} should fully succeed"
            );
        }
        assert_eq!(sim.completed_scans, 16); // both branches × 8 scans
    }

    #[test]
    fn catalog_gets_raw_and_derived_datasets() {
        let sim = run_small(4, 3);
        // 4 raw + up to 8 recon datasets
        assert_eq!(sim.catalog.len(), 4 + 8);
        // provenance: each raw has two derived children
        let raws: Vec<_> = sim
            .catalog
            .search("scan")
            .into_iter()
            .filter(|d| matches!(d.kind, als_catalog::DatasetKind::Raw))
            .map(|d| d.pid.clone())
            .collect();
        assert_eq!(raws.len(), 4);
        for pid in raws {
            assert_eq!(sim.catalog.derived_chain(&pid).len(), 2);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_small(6, 42);
        let b = run_small(6, 42);
        let qa = a.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        let qb = b.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        assert_eq!(qa, qb);
        let c = run_small(6, 43);
        let qc = c.engine.query().last_n_successful_durations(FLOW_NERSC, 10);
        assert_ne!(qa, qc);
    }

    #[test]
    fn flow_durations_are_in_plausible_bands() {
        let sim = run_small(12, 7);
        let q = sim.engine.query();
        let nf = q.table2_summary(FLOW_NEW_FILE, 100).unwrap();
        assert!(
            nf.median > 10.0 && nf.median < 300.0,
            "new_file med {}",
            nf.median
        );
        let nersc = q.table2_summary(FLOW_NERSC, 100).unwrap();
        assert!(
            nersc.median > 600.0 && nersc.median < 3000.0,
            "nersc med {}",
            nersc.median
        );
        let alcf = q.table2_summary(FLOW_ALCF, 100).unwrap();
        assert!(
            alcf.median > 500.0 && alcf.median < 2500.0,
            "alcf med {}",
            alcf.median
        );
    }

    #[test]
    fn beamline_tier_accumulates_raw_and_recon_files() {
        let sim = run_small(3, 9);
        // 3 raw + 6 recon outputs
        assert_eq!(sim.beamline_tier.file_count(), 9);
    }
}
