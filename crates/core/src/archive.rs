//! HPSS archival flows (§4.2.3).
//!
//! "Transfer flows to and from HPSS for long-term archival are also
//! handled through Slurm and SFAPI." The archival flow: select CFS
//! datasets older than a cutoff, submit an xfer-queue Slurm job through
//! SFAPI that writes them to tape, then release the CFS copies. HPSS
//! retention is indefinite (§4.3).

use als_hpc::scheduler::{JobRequest, Qos};
use als_hpc::sfapi::{SfApiClient, SfApiServer};
use als_hpc::storage::StorageTier;
use als_simcore::{ByteSize, SimDuration, SimInstant};
use serde::Serialize;

/// Outcome of one archival pass.
#[derive(Debug, Clone, Serialize)]
pub struct ArchiveReport {
    pub files_archived: usize,
    pub bytes_archived: ByteSize,
    /// Wall time of the tape-write job.
    pub job_runtime: SimDuration,
    /// CFS space released.
    pub cfs_freed: ByteSize,
}

/// Archive every CFS file older than `age_cutoff` to HPSS.
///
/// Returns `None` when nothing is old enough (no job submitted).
pub fn archive_aged_files(
    cfs: &mut StorageTier,
    hpss: &mut StorageTier,
    sfapi: &mut SfApiServer,
    client: &mut SfApiClient,
    age_cutoff: SimDuration,
    candidates: &[(String, SimInstant)],
    now: SimInstant,
) -> Option<ArchiveReport> {
    // select candidates old enough and still present on CFS
    let selected: Vec<&(String, SimInstant)> = candidates
        .iter()
        .filter(|(name, created)| cfs.contains(name) && now.duration_since(*created) > age_cutoff)
        .collect();
    if selected.is_empty() {
        return None;
    }
    let total: ByteSize = selected
        .iter()
        .filter_map(|(name, _)| cfs.file_size(name))
        .sum();

    // the xfer job streams CFS -> tape at HPSS bandwidth
    let runtime = hpss.io_time(total) + SimDuration::from_secs(30); // mount latency
    let (job, _) = client
        .submit(
            sfapi,
            JobRequest {
                name: "hpss_archive".into(),
                qos: Qos::Regular, // archival is not time-critical
                nodes: 1,
                runtime,
                walltime_limit: runtime * 3.0 + SimDuration::from_hours(1),
            },
            now,
        )
        .ok()?;
    let _ = job;
    // drive the scheduler to the job's completion
    let end = sfapi.scheduler().next_event_time().unwrap_or(now);
    sfapi.scheduler_mut().advance_to(end);

    // move the files
    let mut files_archived = 0usize;
    let mut bytes = ByteSize::ZERO;
    for (name, _) in selected {
        if let Some(size) = cfs.file_size(name) {
            if hpss.put(name, size, end).is_ok() {
                cfs.delete(name).expect("file existed");
                files_archived += 1;
                bytes += size;
            }
        }
    }
    Some(ArchiveReport {
        files_archived,
        bytes_archived: bytes,
        job_runtime: runtime,
        cfs_freed: bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_hpc::storage::TierKind;

    fn setup() -> (StorageTier, StorageTier, SfApiServer, SfApiClient) {
        (
            StorageTier::new(TierKind::Cfs, ByteSize::from_tib(100)),
            StorageTier::new(TierKind::Hpss, ByteSize::from_tib(10_000)),
            SfApiServer::new(4),
            SfApiClient::new("als"),
        )
    }

    fn t(hours: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_hours(hours)
    }

    #[test]
    fn aged_files_move_to_tape() {
        let (mut cfs, mut hpss, mut sfapi, mut client) = setup();
        cfs.put("old_scan.h5", ByteSize::from_gib(25), t(0))
            .unwrap();
        cfs.put("fresh_scan.h5", ByteSize::from_gib(25), t(200))
            .unwrap();
        let candidates = vec![
            ("old_scan.h5".to_string(), t(0)),
            ("fresh_scan.h5".to_string(), t(200)),
        ];
        let report = archive_aged_files(
            &mut cfs,
            &mut hpss,
            &mut sfapi,
            &mut client,
            SimDuration::from_hours(24 * 7),
            &candidates,
            t(201),
        )
        .expect("one file is old enough");
        assert_eq!(report.files_archived, 1);
        assert_eq!(report.bytes_archived, ByteSize::from_gib(25));
        assert!(hpss.contains("old_scan.h5"));
        assert!(!cfs.contains("old_scan.h5"));
        assert!(cfs.contains("fresh_scan.h5"));
    }

    #[test]
    fn nothing_old_means_no_job() {
        let (mut cfs, mut hpss, mut sfapi, mut client) = setup();
        cfs.put("fresh.h5", ByteSize::from_gib(5), t(0)).unwrap();
        let candidates = vec![("fresh.h5".to_string(), t(0))];
        let report = archive_aged_files(
            &mut cfs,
            &mut hpss,
            &mut sfapi,
            &mut client,
            SimDuration::from_hours(48),
            &candidates,
            t(1),
        );
        assert!(report.is_none());
        assert_eq!(
            sfapi.scheduler().running_count() + sfapi.scheduler().pending_count(),
            0
        );
    }

    #[test]
    fn tape_write_time_scales_with_volume() {
        let (mut cfs, mut hpss, mut sfapi, mut client) = setup();
        for i in 0..4 {
            cfs.put(&format!("s{i}.h5"), ByteSize::from_gib(25), t(0))
                .unwrap();
        }
        let candidates: Vec<(String, SimInstant)> =
            (0..4).map(|i| (format!("s{i}.h5"), t(0))).collect();
        let report = archive_aged_files(
            &mut cfs,
            &mut hpss,
            &mut sfapi,
            &mut client,
            SimDuration::from_hours(1),
            &candidates,
            t(100),
        )
        .unwrap();
        assert_eq!(report.files_archived, 4);
        // 100 GiB at HPSS's 4 Gbps ≈ 215 s + mount
        let secs = report.job_runtime.as_secs_f64();
        assert!((200.0..300.0).contains(&secs), "tape job {secs} s");
    }

    #[test]
    fn archived_files_survive_pruning_forever() {
        let (mut cfs, mut hpss, mut sfapi, mut client) = setup();
        cfs.put("keep.h5", ByteSize::from_gib(10), t(0)).unwrap();
        archive_aged_files(
            &mut cfs,
            &mut hpss,
            &mut sfapi,
            &mut client,
            SimDuration::from_hours(1),
            &[("keep.h5".to_string(), t(0))],
            t(10),
        )
        .unwrap();
        let years_later = t(24 * 365 * 10);
        hpss.prune(years_later);
        assert!(hpss.contains("keep.h5"), "HPSS retention is indefinite");
    }
}
