//! Rotation-axis auto-calibration in the file-based pipeline.
//!
//! Users align samples in the control software (Figure 2A), but the
//! rotation axis never lands exactly on the detector midline. Production
//! TomoPy pipelines therefore run a center-of-rotation search before
//! reconstructing; this module wires [`als_tomo::cor`] into the scan
//! processing path and quantifies what the search buys.

use als_scidata::ScanFile;
use als_tomo::cor::find_center;
use als_tomo::{fbp_slice, FbpConfig, Geometry, Image, Sinogram};
use serde::Serialize;

/// Result of reconstructing one slice with and without COR correction.
#[derive(Debug, Clone, Serialize)]
pub struct CorComparison {
    /// Center assumed by a naive pipeline (detector midline).
    pub naive_center: f64,
    /// Center found by the mirror-correlation search.
    pub found_center: f64,
    /// The acquisition's true center (if known, e.g. in simulation).
    pub true_center: Option<f64>,
}

/// Estimate the rotation center of a scan from its first and last
/// projections (the scan must cover a full 180°+ sweep for the mirror
/// relation to hold approximately).
pub fn estimate_center(sino: &Sinogram, max_shift: f64) -> Option<f64> {
    find_center(sino, max_shift, 0.25)
}

/// Reconstruct a slice with the naive midline center and with the
/// estimated center; returns both images plus the comparison record.
pub fn reconstruct_with_cor(
    sino: &Sinogram,
    angles: &[f64],
    true_center: Option<f64>,
) -> (Image, Image, CorComparison) {
    let n_det = sino.n_det;
    let naive_center = (n_det as f64 - 1.0) / 2.0;
    let found_center = estimate_center(sino, n_det as f64 * 0.15).unwrap_or(naive_center);
    let cfg = FbpConfig::default();
    let naive_geom = Geometry {
        angles: angles.to_vec(),
        n_det,
        center: naive_center,
    };
    let corrected_geom = Geometry {
        angles: angles.to_vec(),
        n_det,
        center: found_center,
    };
    let naive = fbp_slice(sino, &naive_geom, &cfg).expect("fbp");
    let corrected = fbp_slice(sino, &corrected_geom, &cfg).expect("fbp");
    (
        naive,
        corrected,
        CorComparison {
            naive_center,
            found_center,
            true_center,
        },
    )
}

/// Convenience: run the COR-corrected reconstruction on slice `row` of a
/// written scan file.
pub fn scan_slice_with_cor(scan: &ScanFile, row: usize, mu_scale: f64) -> (Image, CorComparison) {
    let (n_angles, _rows, cols) = scan.shape();
    let sino = crate::realmode::scan_slice_sinogram(scan, row, n_angles, cols, mu_scale);
    let angles = scan.angles();
    let (_naive, corrected, cmp) = reconstruct_with_cor(&sino, &angles, None);
    (corrected, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_phantom::{feather_volume, FeatherSpecies};
    use als_tomo::forward_project;
    use als_tomo::quality::mse_in_disk;

    /// Simulate a mis-centered acquisition: the rotation axis sits 3 bins
    /// off the detector midline.
    fn miscentered_scan(n: usize, offset: f64) -> (Sinogram, Vec<f64>, Image) {
        let vol = feather_volume(FeatherSpecies::Chicken, n, 1, 5);
        let truth = vol.slice_xy(0);
        let mut geom = Geometry::parallel_180(96, n).with_center((n as f64 - 1.0) / 2.0 + offset);
        // include the 180° endpoint so first/last rows are mirror pairs
        geom.angles.push(std::f64::consts::PI);
        let sino = forward_project(&truth, &geom);
        (sino, geom.angles, truth)
    }

    #[test]
    fn search_recovers_the_offset() {
        let n = 64;
        let offset = 3.0;
        let (sino, _angles, _truth) = miscentered_scan(n, offset);
        let est = estimate_center(&sino, 8.0).unwrap();
        let expected = (n as f64 - 1.0) / 2.0 + offset;
        assert!(
            (est - expected).abs() < 0.75,
            "estimated {est}, expected {expected}"
        );
    }

    #[test]
    fn correction_improves_reconstruction() {
        let n = 64;
        let (sino, angles, truth) = miscentered_scan(n, 3.0);
        let (naive, corrected, cmp) = reconstruct_with_cor(&sino, &angles, Some(34.5));
        let e_naive = mse_in_disk(&truth, &naive);
        let e_corrected = mse_in_disk(&truth, &corrected);
        assert!(
            e_corrected < e_naive * 0.8,
            "COR should reduce error: {e_naive} -> {e_corrected} (found {})",
            cmp.found_center
        );
    }

    #[test]
    fn centered_scan_is_left_alone() {
        let n = 64;
        let (sino, angles, truth) = miscentered_scan(n, 0.0);
        let (naive, corrected, cmp) = reconstruct_with_cor(&sino, &angles, None);
        assert!(
            (cmp.found_center - cmp.naive_center).abs() < 0.75,
            "found {} vs naive {}",
            cmp.found_center,
            cmp.naive_center
        );
        // correction must not make a centered scan meaningfully worse
        let e_naive = mse_in_disk(&truth, &naive);
        let e_corrected = mse_in_disk(&truth, &corrected);
        assert!(e_corrected < e_naive * 1.25 + 1e-6);
    }
}
