//! S1: the streaming branch at paper scale, and S2: the >100× speedup.
//!
//! §5.2: "a raw dataset with 1969 16-bit projection images of size
//! 2160×2560 (∼20 GB), takes 7–8 seconds to reconstruct, with a
//! reconstructed volume size of 2160×2560×2560 32-bit (∼50 GB). Sending
//! the preview slices back to ALS takes <1 second." And §5.1: a
//! decade-long user reports 45 minutes to save a scan plus another hour
//! for a single slice historically — the ">100× improvement in
//! time-to-insight".

use als_netsim::{esnet_topology, SiteId};
use als_simcore::{ByteSize, SimDuration, SimInstant};
use als_tomo::throughput::{estimate_recon_time, DeviceModel, ReconClass, ScanDims};
use serde::Serialize;

/// Timing breakdown of one streaming-branch feedback cycle.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingTiming {
    pub dims: ScanDims,
    pub raw_gib: f64,
    pub volume_gib: f64,
    /// GPU reconstruction after acquisition completes.
    pub recon: SimDuration,
    /// Three-slice preview sent back over ESnet.
    pub preview_send: SimDuration,
    /// Total feedback latency after acquisition end.
    pub total: SimDuration,
}

/// Compute the paper-scale streaming timing with the calibrated device
/// model and the ESnet topology.
pub fn streaming_timing(dims: &ScanDims) -> StreamingTiming {
    let device = DeviceModel::nersc_gpu_node();
    let recon = estimate_recon_time(dims, ReconClass::StreamingFbp, &device);

    // preview: three f32 slices of det_cols × det_cols / det_rows
    let slice_bytes =
        (dims.det_cols * dims.det_cols + 2 * dims.det_cols * dims.det_rows) as u64 * 4;
    let preview_size = ByteSize::from_bytes(slice_bytes);
    let mut topo = esnet_topology();
    let route = topo.route(SiteId::Nersc, SiteId::Als).expect("route");
    let flow = topo.net.start_flow(route, preview_size, SimInstant::ZERO);
    let (_, t) = topo
        .net
        .next_completion(SimInstant::ZERO)
        .expect("flow completes");
    let _ = flow;
    let preview_send = t.duration_since(SimInstant::ZERO);

    StreamingTiming {
        dims: *dims,
        raw_gib: dims.raw_bytes().as_gib_f64(),
        volume_gib: dims.volume_bytes().as_gib_f64(),
        recon,
        preview_send,
        total: recon + preview_send,
    }
}

/// The historical (pre-infrastructure) workflow model from the §5.1
/// quote: "it took 45 minutes just to save a scan, then another hour to
/// get back a single reconstruction slice".
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HistoricalWorkflow {
    pub save: SimDuration,
    pub single_slice_recon: SimDuration,
}

impl Default for HistoricalWorkflow {
    fn default() -> Self {
        HistoricalWorkflow {
            save: SimDuration::from_mins(45),
            single_slice_recon: SimDuration::from_mins(60),
        }
    }
}

impl HistoricalWorkflow {
    /// Time to first feedback (one slice).
    pub fn time_to_first_feedback(&self) -> SimDuration {
        self.save + self.single_slice_recon
    }
}

/// S2: the speedup report.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupReport {
    pub historical: SimDuration,
    pub streaming: SimDuration,
    pub speedup: f64,
}

/// Compare today's streaming feedback against the historical workflow.
pub fn speedup_vs_historical() -> SpeedupReport {
    let hist = HistoricalWorkflow::default().time_to_first_feedback();
    let now = streaming_timing(&ScanDims::paper_reference()).total;
    SpeedupReport {
        historical: hist,
        streaming: now,
        speedup: hist.as_secs_f64() / now.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_hits_all_three_claims() {
        let t = streaming_timing(&ScanDims::paper_reference());
        // "takes 7-8 seconds to reconstruct"
        let recon_s = t.recon.as_secs_f64();
        assert!((7.0..10.0).contains(&recon_s), "recon {recon_s} s");
        // "Sending the preview slices back to ALS takes <1 second"
        assert!(
            t.preview_send.as_secs_f64() < 1.0,
            "send {}",
            t.preview_send
        );
        // "users can preview ... within 10 seconds"
        assert!(t.total.as_secs_f64() < 10.0, "total {}", t.total);
        // "~20 GB" raw, "~50 GB" volume
        assert!((18.0..23.0).contains(&t.raw_gib));
        assert!((45.0..56.0).contains(&t.volume_gib));
    }

    #[test]
    fn smaller_scans_are_faster() {
        let full = streaming_timing(&ScanDims::paper_reference());
        let half = streaming_timing(&ScanDims::paper_reference().scaled(0.5));
        assert!(half.total < full.total);
    }

    #[test]
    fn speedup_exceeds_100x() {
        let s = speedup_vs_historical();
        assert!(
            s.speedup > 100.0,
            "paper claims >100x, got {:.0}x",
            s.speedup
        );
        assert_eq!(s.historical, SimDuration::from_mins(105));
    }
}
