//! Campaign driver and the Table 2 report.
//!
//! Runs `n` scans through the full multi-facility simulation and queries
//! the flow engine for the per-flow duration statistics, in the exact
//! shape of the paper's Table 2 ("summary statistics of the last 100
//! successful file-based Prefect flow runs in production").

use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC, FLOW_NEW_FILE};
use als_simcore::Summary;
use serde::Serialize;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of scans to run.
    pub n_scans: usize,
    /// Simulation knobs (seed, QOS, fail-fast, ...).
    pub sim: SimConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_scans: 100,
            sim: SimConfig::default(),
        }
    }
}

/// Per-flow Table 2 row: measured summary plus the paper's reference
/// values for side-by-side reporting.
#[derive(Debug, Clone, Serialize)]
pub struct FlowStats {
    pub flow: String,
    pub measured: Summary,
    pub paper_mean: f64,
    pub paper_sd: f64,
    pub paper_median: f64,
    pub paper_min: f64,
    pub paper_max: f64,
}

/// The campaign's outputs.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    pub n_scans: usize,
    pub flows: Vec<FlowStats>,
    /// Success rate per flow.
    pub success_rates: Vec<(String, f64)>,
    /// Mean Globus throughput observed (Gbps).
    pub mean_transfer_gbps: f64,
    /// Total bytes moved over the WAN.
    pub total_transfer_gib: f64,
    /// Campaign wall time (hours of simulated time).
    pub campaign_hours: f64,
}

/// Paper-reported Table 2 values (seconds).
pub fn paper_reference(flow: &str) -> (f64, f64, f64, f64, f64) {
    match flow {
        FLOW_NEW_FILE => (120.0, 171.0, 56.0, 30.0, 676.0),
        FLOW_NERSC => (1525.0, 464.0, 1665.0, 354.0, 2351.0),
        FLOW_ALCF => (1151.0, 246.0, 1114.0, 710.0, 1965.0),
        _ => (0.0, 0.0, 0.0, 0.0, 0.0),
    }
}

/// Run a campaign and build the report.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut sim = FacilitySim::new(cfg.sim.clone());
    let mut workload = ScanWorkload::production();
    sim.schedule_campaign(&mut workload, cfg.n_scans);
    sim.run(None);

    let engine = sim.engine();
    let q = engine.query();
    let mut flows = Vec::new();
    let mut success_rates = Vec::new();
    for flow in [FLOW_NEW_FILE, FLOW_NERSC, FLOW_ALCF] {
        if let Some(measured) = q.table2_summary(flow, 100) {
            let (paper_mean, paper_sd, paper_median, paper_min, paper_max) = paper_reference(flow);
            flows.push(FlowStats {
                flow: flow.to_string(),
                measured,
                paper_mean,
                paper_sd,
                paper_median,
                paper_min,
                paper_max,
            });
        }
        if let Some(rate) = q.success_rate(flow) {
            success_rates.push((flow.to_string(), rate));
        }
    }
    CampaignReport {
        n_scans: cfg.n_scans,
        flows,
        success_rates,
        mean_transfer_gbps: sim.monitor.mean_gbps(),
        total_transfer_gib: sim.monitor.total_bytes().as_gib_f64(),
        campaign_hours: sim.now().as_secs_f64() / 3600.0,
    }
}

impl CampaignReport {
    /// Render the Table 2 comparison as fixed-width text.
    pub fn table2_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table 2 reproduction — {} scans (durations in seconds)\n",
            self.n_scans
        ));
        out.push_str(&format!(
            "{:<18} {:>4} {:>15} {:>7} {:>16}   (paper: mean±SD, med, range)\n",
            "Flow", "N", "Mean ± SD", "Med.", "Range"
        ));
        for f in &self.flows {
            let m = &f.measured;
            out.push_str(&format!(
                "{:<18} {:>4} {:>7.0} ± {:<5.0} {:>7.0} [{:>5.0}, {:>5.0}]   ({:.0}±{:.0}, {:.0}, [{:.0}, {:.0}])\n",
                f.flow, m.n, m.mean, m.sd, m.median, m.min, m.max,
                f.paper_mean, f.paper_sd, f.paper_median, f.paper_min, f.paper_max
            ));
        }
        out
    }

    /// Look up a flow's measured summary.
    pub fn measured(&self, flow: &str) -> Option<&Summary> {
        self.flows
            .iter()
            .find(|f| f.flow == flow)
            .map(|f| &f.measured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_campaign() -> CampaignReport {
        run_campaign(&CampaignConfig::default())
    }

    #[test]
    fn campaign_reports_all_three_flows() {
        let r = full_campaign();
        assert_eq!(r.flows.len(), 3);
        assert_eq!(r.n_scans, 100);
        for f in &r.flows {
            assert_eq!(f.measured.n, 100);
        }
        for (_, rate) in &r.success_rates {
            assert!(
                *rate > 0.95,
                "success rates should be high: {:?}",
                r.success_rates
            );
        }
    }

    /// The headline calibration test: the measured Table 2 must match the
    /// paper's *shape* — medians within ~25%, the same ordering
    /// (nersc > alcf > new_file), nersc left-skewed (median > mean), and
    /// wide ranges driven by the bimodal file sizes.
    #[test]
    fn table2_shape_matches_paper() {
        let r = full_campaign();
        let nf = r.measured(FLOW_NEW_FILE).unwrap();
        let nersc = r.measured(FLOW_NERSC).unwrap();
        let alcf = r.measured(FLOW_ALCF).unwrap();

        // ordering of medians
        assert!(
            nersc.median > alcf.median,
            "nersc {} vs alcf {}",
            nersc.median,
            alcf.median
        );
        assert!(alcf.median > nf.median);

        // medians within 25% of the paper
        assert!(
            (nf.median - 56.0).abs() / 56.0 < 0.5,
            "new_file med {}",
            nf.median
        );
        assert!(
            (nersc.median - 1665.0).abs() / 1665.0 < 0.25,
            "nersc med {}",
            nersc.median
        );
        assert!(
            (alcf.median - 1114.0).abs() / 1114.0 < 0.25,
            "alcf med {}",
            alcf.median
        );

        // skew: cropped test scans pull the nersc mean below its median
        assert!(nersc.mean < nersc.median, "nersc should be left-skewed");
        // new_file is right-skewed (mean > median), like the paper
        assert!(nf.mean > nf.median, "new_file should be right-skewed");

        // ranges are wide, as the paper attributes to file sizes
        assert!(nersc.max - nersc.min > 1000.0);
        assert!(nf.max > 300.0);
    }

    #[test]
    fn table2_text_renders_all_rows() {
        let r = full_campaign();
        let t = r.table2_text();
        assert!(t.contains("new_file_832"));
        assert!(t.contains("nersc_recon_flow"));
        assert!(t.contains("alcf_recon_flow"));
    }

    #[test]
    fn campaign_moves_terabytes() {
        let r = full_campaign();
        // ~80 full scans × (24 GiB out × 2 + ~62 GiB back × 2) ≈ 10+ TiB
        assert!(
            r.total_transfer_gib > 2000.0,
            "moved {} GiB",
            r.total_transfer_gib
        );
        assert!(r.mean_transfer_gbps > 1.0);
        // 100 scans at 3-5 min cadence ≈ 7 h of beam time
        assert!(
            r.campaign_hours > 5.0 && r.campaign_hours < 24.0,
            "{}",
            r.campaign_hours
        );
    }
}
