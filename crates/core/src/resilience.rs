//! Resilience experiment (R1): fault-injected campaigns, with and
//! without cross-facility failover.
//!
//! Replays the §5.3 incident class — a NERSC outage in the middle of a
//! beamtime — plus seeded "fault storms" of mixed incidents, and measures
//! what the failover router (circuit breakers + NERSC↔ALCF redirects +
//! remote cancellation of stranded jobs) buys: campaign completion rate,
//! failover activations, and flow-latency percentiles. Every run is
//! deterministic from its seed, so the with/without comparison is
//! paired — the same scans, the same faults, the only difference is the
//! remediation.

use crate::faults::{FaultKind, FaultPlan, FaultWindow};
use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC};
use als_facility::Facility;
use als_orchestrator::engine::FlowState;
use als_simcore::{SimDuration, SimInstant};
use serde::Serialize;

/// Aggregated results of one fault-injected campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceOutcome {
    pub failover_enabled: bool,
    pub scans: usize,
    /// Terminal recon-branch flow runs (NERSC + ALCF branches).
    pub branch_flows_total: usize,
    pub branch_flows_completed: usize,
    /// completed / total over the recon branches.
    pub completion_rate: f64,
    /// NERSC↔ALCF redirects performed.
    pub failover_count: usize,
    /// Stranded jobs/invocations cancelled remotely at their deadline.
    pub remote_cancels: usize,
    pub nersc_breaker_trips: usize,
    pub alcf_breaker_trips: usize,
    /// Flow-latency percentiles over *completed* branch runs (s).
    pub p50_flow_s: Option<f64>,
    pub p99_flow_s: Option<f64>,
}

/// Paired comparison on identical scans + faults.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceComparison {
    pub with_failover: ResilienceOutcome,
    pub without_failover: ResilienceOutcome,
}

/// One point of the fault-intensity sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntensityPoint {
    pub intensity: f64,
    pub comparison: ResilienceComparison,
}

/// The full R1 report (what `experiments resilience` prints).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// The canonical §5.3 incident: a 90-minute NERSC outage.
    pub outage: ResilienceComparison,
    pub sweep: Vec<IntensityPoint>,
}

/// The canonical incident plan: one NERSC outage window.
pub fn nersc_outage_plan(start_s: u64, duration_s: u64) -> FaultPlan {
    let start = SimInstant::ZERO + SimDuration::from_secs(start_s);
    FaultPlan::none().with_window(FaultWindow::new(
        start,
        start + SimDuration::from_secs(duration_s),
        FaultKind::NerscOutage,
    ))
}

/// Run one fault-injected campaign and return the drained simulator.
/// Fixed 5-minute cadence so outage windows line up with scan arrivals
/// identically across seeds of the same plan.
pub fn run_resilience_sim(
    n_scans: usize,
    seed: u64,
    failover_enabled: bool,
    plan: &FaultPlan,
) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: plan.clone(),
        failover_enabled,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

pub(crate) fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// Aggregate a drained simulator into an outcome row.
pub fn outcome_of(sim: &FacilitySim, scans: usize) -> ResilienceOutcome {
    let engine = sim.engine();
    let q = engine.query();
    let mut total = 0usize;
    let mut completed = 0usize;
    let mut durations: Vec<f64> = Vec::new();
    for flow in [FLOW_NERSC, FLOW_ALCF] {
        for run in q.runs_of(flow) {
            if run.state.is_terminal() {
                total += 1;
                if run.state == FlowState::Completed {
                    completed += 1;
                    if let Some(d) = run.duration() {
                        durations.push(d.as_secs_f64());
                    }
                }
            }
        }
    }
    durations.sort_by(f64::total_cmp);
    ResilienceOutcome {
        failover_enabled: sim.cfg.failover_enabled,
        scans,
        branch_flows_total: total,
        branch_flows_completed: completed,
        completion_rate: if total > 0 {
            completed as f64 / total as f64
        } else {
            0.0
        },
        failover_count: sim.failover_count,
        remote_cancels: sim.remote_cancel_count,
        nersc_breaker_trips: sim.breaker(Facility::Nersc).open_count(),
        alcf_breaker_trips: sim.breaker(Facility::Alcf).open_count(),
        p50_flow_s: percentile(&durations, 50.0),
        p99_flow_s: percentile(&durations, 99.0),
    }
}

/// Same scans, same faults, failover on vs off.
pub fn resilience_comparison(n_scans: usize, seed: u64, plan: &FaultPlan) -> ResilienceComparison {
    let with = run_resilience_sim(n_scans, seed, true, plan);
    let without = run_resilience_sim(n_scans, seed, false, plan);
    ResilienceComparison {
        with_failover: outcome_of(&with, n_scans),
        without_failover: outcome_of(&without, n_scans),
    }
}

/// Sweep seeded fault storms of increasing intensity.
pub fn intensity_sweep(n_scans: usize, seed: u64, intensities: &[f64]) -> Vec<IntensityPoint> {
    // storms span the scan-arrival window plus the processing tail
    let horizon = SimDuration::from_secs(300 * n_scans as u64 + 3600);
    intensities
        .iter()
        .map(|&intensity| IntensityPoint {
            intensity,
            comparison: resilience_comparison(
                n_scans,
                seed,
                &FaultPlan::storm(seed, horizon, intensity),
            ),
        })
        .collect()
}

/// The full R1 experiment at paper-like scale.
pub fn resilience_experiment(n_scans: usize, seed: u64) -> ResilienceReport {
    ResilienceReport {
        outage: resilience_comparison(n_scans, seed, &nersc_outage_plan(900, 5400)),
        sweep: intensity_sweep(n_scans, seed, &[0.25, 0.5, 1.0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds() {
        assert_eq!(percentile(&[], 50.0), None);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
    }

    #[test]
    fn outage_plan_has_one_nersc_window() {
        let p = nersc_outage_plan(900, 5400);
        assert_eq!(p.windows.len(), 1);
        assert_eq!(p.windows[0].kind, FaultKind::NerscOutage);
        assert_eq!(p.windows[0].duration(), SimDuration::from_secs(5400));
    }

    #[test]
    fn healthy_plan_yields_full_completion_either_way() {
        let plan = FaultPlan::none();
        let sim = run_resilience_sim(4, 11, true, &plan);
        let out = outcome_of(&sim, 4);
        assert_eq!(out.branch_flows_total, 8);
        assert_eq!(out.completion_rate, 1.0);
        assert_eq!(out.failover_count, 0);
        assert_eq!(out.remote_cancels, 0);
    }
}
