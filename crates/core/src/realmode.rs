//! Real-mode glue: the end-to-end beamline session with actual threads,
//! actual frames, and actual reconstructions (laptop scale).
//!
//! This is what the examples and the F2 experiment run: detector →
//! PVA mirror → {file writer, streaming recon service}, then a file-based
//! "high-quality" reconstruction of the written scan — the same dual-path
//! topology as Figure 3, with real data flowing.
//!
//! Since PR 5 the file-based and streaming branches run through the
//! chunked scan-to-archive pipeline (`als_tomo::pipeline`): slab
//! transpose → fused prep → slice-parallel recon → archive sinks on a
//! dedicated I/O thread. The old per-slice paths are retained as
//! `*_baseline` functions — they are the equivalence reference and the
//! "before" side of `BENCH_pipeline.json`.

use crate::faults::{FaultKind, FaultPlan};
use als_phantom::{DetectorConfig, FrameMeta, ScanSimulator};
use als_scidata::{MultiscaleWriter, ScanFile, TiffStackSink};
use als_simcore::{SimDuration, SimInstant};
use als_stream::{
    announce_for, ChannelMirror, DeliveryMode, FileWriterService, FrameSlab, Preview, PvaServer,
    SlabPool, StreamMessage, StreamerConfig, StreamingReconService,
};
use als_tomo::pipeline::{self, PipelineConfig, PipelineReport, ReconKind, SliceSink, VolumeSink};
use als_tomo::{
    fbp_slice, sirt_slice_baseline, FbpConfig, Geometry, Image, IterConfig, Sinogram, Volume,
};
use std::path::Path;
use std::time::Duration;

/// Everything a real-mode session produced.
#[derive(Debug)]
pub struct SessionResult {
    /// The streaming branch's preview (three slices + timings).
    pub preview: Preview,
    /// Path of the scan file the file writer produced.
    pub scan_path: std::path::PathBuf,
    /// The scan file's raw size in bytes.
    pub scan_bytes: u64,
    /// High-quality (file-based, iterative) reconstruction of the scan.
    pub file_based_volume: Volume,
    /// Streaming-quality (FBP) reconstruction for comparison.
    pub streaming_volume: Volume,
}

/// Tunables of the file-based "high quality" branch, previously
/// hardcoded inside `file_based_reconstruction`. Defaults match the
/// beamline 8.3.2 recipe the paper describes: 100 SIRT iterations and a
/// log-domain zinger threshold of 0.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileBranchConfig {
    /// SIRT iterations per slice (paper recipe: 100).
    pub sirt_iterations: usize,
    /// Log-domain zinger threshold; `None` disables zinger removal.
    pub zinger_threshold: Option<f32>,
    /// Pipeline slab height in detector rows (0 = engine default).
    pub slab_rows: usize,
    /// Bounded-channel depth between pipeline stages, in slabs.
    pub queue_depth: usize,
    /// Chunk shape `[z, y, x]` of the multiscale archive product.
    pub multiscale_chunk: [usize; 3],
    /// Pyramid depth of the multiscale archive product.
    pub multiscale_levels: usize,
}

impl Default for FileBranchConfig {
    fn default() -> Self {
        FileBranchConfig {
            sirt_iterations: 100,
            zinger_threshold: Some(0.5),
            slab_rows: 0,
            queue_depth: 2,
            multiscale_chunk: [4, 32, 32],
            multiscale_levels: 3,
        }
    }
}

impl FileBranchConfig {
    fn iter_config(&self) -> IterConfig {
        IterConfig {
            iterations: self.sirt_iterations,
            ..Default::default()
        }
    }

    fn pipeline_config(&self, mu_scale: f64) -> PipelineConfig {
        PipelineConfig {
            recon: ReconKind::Sirt(self.iter_config()),
            mu_scale,
            zinger_threshold: self.zinger_threshold,
            slab_rows: self.slab_rows,
            queue_depth: self.queue_depth,
            ..Default::default()
        }
    }
}

/// Run one complete dual-path session over a phantom volume with the
/// default detector model.
///
/// `vol` must have square slices; `n_angles` controls acquisition length.
pub fn run_session(
    vol: &Volume,
    n_angles: usize,
    out_dir: &Path,
    scan_id: &str,
    seed: u64,
) -> SessionResult {
    run_session_with(
        vol,
        n_angles,
        out_dir,
        scan_id,
        seed,
        DetectorConfig::default(),
    )
}

/// [`run_session`] with an explicit detector model (photon budget, noise).
pub fn run_session_with(
    vol: &Volume,
    n_angles: usize,
    out_dir: &Path,
    scan_id: &str,
    seed: u64,
    det_cfg: DetectorConfig,
) -> SessionResult {
    let geom = Geometry::parallel_180(n_angles, vol.nx);
    let mut sim = ScanSimulator::new(vol, geom.clone(), det_cfg, seed);

    // acquisition layer: IOC channel + mirror. The mirror is a Reliable
    // subscriber — a slow local storage server backpressures the IOC
    // rather than losing frames.
    let ioc = PvaServer::new();
    let mirror = ChannelMirror::spawn(
        ioc.subscribe_named("mirror", 1 << 10, DeliveryMode::Reliable),
        Duration::from_millis(10),
    );
    // orchestration-layer consumers on the mirrored channel: the file
    // writer must see every frame (Reliable), the preview path is a lossy
    // PVA monitor — dropping a preview frame costs quality, not data.
    let writer = FileWriterService::spawn(
        mirror
            .output()
            .subscribe_named("filewriter", 1 << 10, DeliveryMode::Reliable),
        out_dir,
    );
    let (streamer, previews) = StreamingReconService::spawn(
        mirror
            .output()
            .subscribe_named("preview", 1 << 10, DeliveryMode::Lossy),
        StreamerConfig::default(),
    );

    // drive the scan
    als_stream::publish_scan(&ioc, &mut sim, scan_id, det_cfg.mu_scale);

    let preview = previews
        .recv_timeout(Duration::from_secs(120))
        .expect("streaming preview within deadline");
    let written = writer
        .wait_completion(Duration::from_secs(120))
        .expect("scan file written");

    streamer.stop();
    writer.stop();
    mirror.stop();

    // file-based branch: load the written scan and run the high-quality
    // pipeline (preprocessing chain + iterative recon)
    let scan = ScanFile::load(&written.path).expect("scan loads");
    let file_based_volume = file_based_reconstruction(&scan, det_cfg.mu_scale);
    let streaming_volume = streaming_reconstruction(&scan, det_cfg.mu_scale);

    SessionResult {
        preview,
        scan_path: written.path,
        scan_bytes: written.bytes,
        file_based_volume,
        streaming_volume,
    }
}

fn volume_from_sink(sink: VolumeSink) -> Volume {
    let (nx, ny, nz) = sink.shape();
    let mut vol = Volume::zeros(nx, ny, nz);
    vol.data = sink.into_data();
    vol
}

/// The file-based "high quality" branch: fused preprocessing + SIRT
/// through the overlapped scan-to-archive pipeline, with the paper
/// recipe defaults ([`FileBranchConfig`]).
pub fn file_based_reconstruction(scan: &ScanFile, mu_scale: f64) -> Volume {
    file_based_reconstruction_with(scan, mu_scale, &FileBranchConfig::default())
}

/// [`file_based_reconstruction`] with explicit branch tunables.
pub fn file_based_reconstruction_with(
    scan: &ScanFile,
    mu_scale: f64,
    cfg: &FileBranchConfig,
) -> Volume {
    let mut sink = VolumeSink::new();
    {
        let mut sinks: [&mut dyn SliceSink; 1] = [&mut sink];
        pipeline::run(scan, &mut sinks, &cfg.pipeline_config(mu_scale))
            .expect("file-based pipeline succeeds");
    }
    volume_from_sink(sink)
}

/// Retained pre-pipeline file-based branch: per-slice sinogram gather,
/// unfused prep chain, per-call SIRT plan. This is the equivalence
/// baseline and the serial "before" measurement in
/// `BENCH_pipeline.json` — do not optimise it.
pub fn file_based_reconstruction_baseline(
    scan: &ScanFile,
    mu_scale: f64,
    cfg: &FileBranchConfig,
) -> Volume {
    let (n_angles, rows, cols) = scan.shape();
    let geom = Geometry {
        angles: scan.angles(),
        n_det: cols,
        center: (cols as f64 - 1.0) / 2.0,
    };
    let iter_cfg = cfg.iter_config();
    let mut out = Volume::zeros(cols, cols, rows);
    for r in 0..rows {
        let sino = scan_slice_sinogram(scan, r, n_angles, cols, mu_scale);
        // zinger removal only: dark/flat normalization (already applied in
        // scan_slice_sinogram) removes the column-gain errors that stripe
        // filtering targets, so running it here would only erode signal
        let cleaned = match cfg.zinger_threshold {
            Some(thr) => als_tomo::prep::remove_zingers(&sino, thr),
            None => sino,
        };
        let img = sirt_slice_baseline(&cleaned, &geom, &iter_cfg).expect("sirt succeeds");
        out.set_slice_xy(r, &img);
    }
    out
}

/// The streaming-quality branch: plain FBP through the pipeline, no
/// zinger removal.
pub fn streaming_reconstruction(scan: &ScanFile, mu_scale: f64) -> Volume {
    let mut sink = VolumeSink::new();
    {
        let mut sinks: [&mut dyn SliceSink; 1] = [&mut sink];
        let cfg = PipelineConfig {
            recon: ReconKind::Fbp(FbpConfig::default()),
            mu_scale,
            zinger_threshold: None,
            ..Default::default()
        };
        pipeline::run(scan, &mut sinks, &cfg).expect("streaming pipeline succeeds");
    }
    volume_from_sink(sink)
}

/// Retained pre-pipeline streaming branch (per-slice gather + FBP), the
/// streaming equivalence baseline.
pub fn streaming_reconstruction_baseline(scan: &ScanFile, mu_scale: f64) -> Volume {
    let (n_angles, rows, cols) = scan.shape();
    let geom = Geometry {
        angles: scan.angles(),
        n_det: cols,
        center: (cols as f64 - 1.0) / 2.0,
    };
    let cfg = FbpConfig::default();
    let mut out = Volume::zeros(cols, cols, rows);
    for r in 0..rows {
        let sino = scan_slice_sinogram(scan, r, n_angles, cols, mu_scale);
        let img: Image = fbp_slice(&sino, &geom, &cfg).expect("fbp succeeds");
        out.set_slice_xy(r, &img);
    }
    out
}

/// Archive products of one scan-to-archive run.
#[derive(Debug)]
pub struct ArchiveResult {
    /// The reconstructed volume (also streamed to the archive sinks).
    pub volume: Volume,
    /// Per-stage pipeline timing.
    pub report: PipelineReport,
    /// Directory holding the per-slice TIFF stack.
    pub tiff_dir: std::path::PathBuf,
    /// Directory holding the multiscale chunked store.
    pub multiscale_dir: std::path::PathBuf,
}

/// The complete file-based product: reconstruct `scan` through the
/// overlapped pipeline and stream the slices into both archive formats
/// the paper's flows publish — a TIFF stack (`out_dir/tiff`) and a
/// multiscale chunked store (`out_dir/multiscale`) — while
/// reconstruction is still running.
pub fn scan_to_archive(
    scan: &ScanFile,
    mu_scale: f64,
    cfg: &FileBranchConfig,
    out_dir: &Path,
) -> ArchiveResult {
    let tiff_dir = out_dir.join("tiff");
    let multiscale_dir = out_dir.join("multiscale");
    let mut volume = VolumeSink::new();
    let mut tiff = TiffStackSink::new(&tiff_dir);
    let mut mzarr = MultiscaleWriter::new(
        &multiscale_dir,
        &scan.scan_name(),
        cfg.multiscale_chunk,
        cfg.multiscale_levels,
    );
    let report = {
        let mut sinks: [&mut dyn SliceSink; 3] = [&mut volume, &mut tiff, &mut mzarr];
        pipeline::run(scan, &mut sinks, &cfg.pipeline_config(mu_scale))
            .expect("scan-to-archive pipeline succeeds")
    };
    ArchiveResult {
        volume: volume_from_sink(volume),
        report,
        tiff_dir,
        multiscale_dir,
    }
}

/// What a storm-afflicted acquisition publish did to the stream.
#[derive(Debug, Clone, Default)]
pub struct StormPublishStats {
    /// Genuine detector frames published.
    pub published: usize,
    /// Corrupt frames injected by [`FaultKind::TransferCorruption`]
    /// windows (wrong-shape metadata; downstream validation rejects and
    /// counts them).
    pub corrupt_injected: usize,
    /// Frames whose publish was throttled by an
    /// [`FaultKind::EsnetBrownout`] window.
    pub brownout_throttled: usize,
    /// Total wall time spent in brownout throttling.
    pub throttle_wall: Duration,
}

/// Drive a scan through `server` while `plan`'s fault storm plays out
/// over the acquisition timeline.
///
/// Each frame `i` maps onto the storm's simulation clock at
/// `i × sim_seconds_per_frame`. While an ESnet brownout window covers
/// that instant the source pace is divided by the window's
/// `capacity_factor` (a 0.25× brownout makes frames 4× slower), modelled
/// as a real sleep of `frame_period / capacity_factor` instead of
/// `frame_period`; `frame_period = ZERO` publishes at full speed outside
/// brownouts. While a transfer-corruption window covers the instant, its
/// burst budget injects corrupt frames — detached slabs whose metadata
/// disagrees with the announcement — which downstream validation must
/// reject and count, never write or reconstruct.
///
/// Reliable subscribers add their own backpressure on top: a stalled
/// file writer slows this loop through `publish` itself.
pub fn publish_scan_under_storm(
    server: &PvaServer,
    sim: &mut ScanSimulator,
    scan_id: &str,
    mu_scale: f64,
    plan: &FaultPlan,
    frame_period: Duration,
    sim_seconds_per_frame: f64,
) -> StormPublishStats {
    let pool = SlabPool::new(sim.rows() * sim.cols());
    let announce = announce_for(sim, scan_id, mu_scale);
    let (rows, cols) = (announce.rows, announce.cols);
    server.publish(StreamMessage::ScanStart(std::sync::Arc::new(announce)));
    let mut stats = StormPublishStats::default();
    let n = sim.n_frames();
    let mut corrupt_budget: Vec<Option<u32>> = vec![None; plan.windows.len()];
    for a in 0..n {
        let t = SimInstant::ZERO + SimDuration::from_secs_f64(a as f64 * sim_seconds_per_frame);
        let mut pace = frame_period;
        for (w, window) in plan.windows.iter().enumerate() {
            if !window.contains(t) {
                continue;
            }
            match window.kind {
                FaultKind::EsnetBrownout { capacity_factor } => {
                    pace = Duration::from_secs_f64(
                        frame_period.as_secs_f64().max(1e-4) / capacity_factor,
                    );
                    stats.brownout_throttled += 1;
                }
                FaultKind::TransferCorruption { burst } => {
                    let left = corrupt_budget[w].get_or_insert(burst);
                    if *left > 0 {
                        *left -= 1;
                        stats.corrupt_injected += 1;
                        server.publish(StreamMessage::Frame(FrameSlab::detached(
                            FrameMeta {
                                frame_id: a,
                                angle_rad: 0.0,
                                n_angles: n,
                                rows: rows * 2,
                                cols: cols * 2,
                            },
                            vec![0u16; rows * cols * 4],
                        )));
                    }
                }
                _ => {}
            }
        }
        if pace > Duration::ZERO {
            std::thread::sleep(pace);
            if pace > frame_period {
                stats.throttle_wall += pace - frame_period;
            }
        }
        let frame = pool.frame_from(|buf| sim.fill_frame(a, buf));
        server.publish(StreamMessage::Frame(frame));
        stats.published += 1;
    }
    server.publish(StreamMessage::ScanEnd {
        scan_id: std::sync::Arc::from(scan_id),
    });
    stats
}

/// Extract the normalized sinogram of detector row `r` from a scan file.
pub fn scan_slice_sinogram(
    scan: &ScanFile,
    r: usize,
    n_angles: usize,
    cols: usize,
    mu_scale: f64,
) -> Sinogram {
    let dark = scan.dark();
    let flat = scan.flat();
    let mut sino = Sinogram::zeros(n_angles, cols);
    for a in 0..n_angles {
        let frame = scan.frame_data(a);
        let base = r * cols;
        for c in 0..cols {
            let raw = frame[base + c] as f64;
            let d = dark[base + c] as f64;
            let f = flat[base + c] as f64;
            let t = ((raw - d) / (f - d).max(1.0)).clamp(1e-6, 1.0);
            sino.set(a, c, (-(t.ln()) / mu_scale) as f32);
        }
    }
    sino
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_phantom::shepp_logan_volume;
    use als_tomo::quality::mse_in_disk;

    #[test]
    fn dual_path_session_produces_both_products() {
        let dir = std::env::temp_dir().join("realmode_session");
        std::fs::remove_dir_all(&dir).ok();
        let vol = shepp_logan_volume(48, 3);
        let r = run_session(&vol, 48, &dir, "session_test", 21);
        // streaming preview exists with the right shape
        assert_eq!(r.preview.slices[0].width, 48);
        assert_eq!(r.preview.cached_frames, 48);
        // the scan file landed on disk
        assert!(r.scan_path.exists());
        assert!(r.scan_bytes > 0);
        // both volumes have the right shape
        assert_eq!((r.file_based_volume.nx, r.file_based_volume.nz), (48, 3));
        assert_eq!((r.streaming_volume.nx, r.streaming_volume.nz), (48, 3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_based_branch_beats_streaming_quality() {
        // the paper's claim: the slower file-based branch produces
        // higher-quality reconstructions than the fast streaming branch
        let dir = std::env::temp_dir().join("realmode_quality");
        std::fs::remove_dir_all(&dir).ok();
        let truth = shepp_logan_volume(48, 2);
        // angle-starved acquisition: where iterative + preprocessing shine
        let r = run_session(&truth, 16, &dir, "quality_test", 5);
        let mut err_file = 0.0;
        let mut err_stream = 0.0;
        for z in 0..2 {
            let t = truth.slice_xy(z);
            err_file += mse_in_disk(&t, &r.file_based_volume.slice_xy(z));
            err_stream += mse_in_disk(&t, &r.streaming_volume.slice_xy(z));
        }
        assert!(
            err_file < err_stream,
            "file-based mse {err_file} should beat streaming {err_stream}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn small_scan(n: usize, nz: usize, n_angles: usize) -> (ScanFile, f64) {
        let vol = shepp_logan_volume(n, nz);
        let geom = Geometry::parallel_180(n_angles, n);
        let det = DetectorConfig::default();
        let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 77);
        let frames = sim.all_frames();
        let scan = ScanFile::from_frames(
            "realmode_unit",
            &frames,
            sim.dark_field(),
            sim.flat_field(),
            &geom.angles,
        )
        .unwrap();
        (scan, det.mu_scale)
    }

    #[test]
    fn streaming_pipeline_is_bit_identical_to_baseline() {
        // same prep math (fused, bit-for-bit) + the same shared FBP plan
        // per slice: the pipeline must reproduce the per-slice path
        // exactly, not just approximately
        let (scan, mu) = small_scan(32, 5, 24);
        let base = streaming_reconstruction_baseline(&scan, mu);
        let fast = streaming_reconstruction(&scan, mu);
        assert_eq!(base, fast);
    }

    #[test]
    fn file_branch_config_controls_iterations() {
        let (scan, mu) = small_scan(24, 2, 16);
        let quick = FileBranchConfig {
            sirt_iterations: 3,
            ..Default::default()
        };
        let better = FileBranchConfig {
            sirt_iterations: 40,
            ..Default::default()
        };
        let truth = shepp_logan_volume(24, 2);
        let v_quick = file_based_reconstruction_with(&scan, mu, &quick);
        let v_better = file_based_reconstruction_with(&scan, mu, &better);
        let e_quick = mse_in_disk(&truth.slice_xy(0), &v_quick.slice_xy(0));
        let e_better = mse_in_disk(&truth.slice_xy(0), &v_better.slice_xy(0));
        assert!(
            e_better < e_quick,
            "more iterations should reduce error: {e_quick} -> {e_better}"
        );
    }

    #[test]
    fn storm_publish_survives_corruption_and_brownout() {
        use crate::faults::FaultWindow;
        let dir = std::env::temp_dir().join("realmode_storm");
        std::fs::remove_dir_all(&dir).ok();
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(20, 32);
        let det = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom, det, 11);
        // hand-built storm: brownout over frames 5..10, corruption burst
        // of 2 over frames 12..15 (1 sim second per frame)
        let plan = FaultPlan::none()
            .with_window(FaultWindow::new(
                SimInstant::ZERO + SimDuration::from_secs(5),
                SimInstant::ZERO + SimDuration::from_secs(10),
                FaultKind::EsnetBrownout {
                    capacity_factor: 0.25,
                },
            ))
            .with_window(FaultWindow::new(
                SimInstant::ZERO + SimDuration::from_secs(12),
                SimInstant::ZERO + SimDuration::from_secs(15),
                FaultKind::TransferCorruption { burst: 2 },
            ));

        let ioc = PvaServer::new();
        let writer = FileWriterService::spawn(
            ioc.subscribe_named("filewriter", 64, DeliveryMode::Reliable),
            &dir,
        );
        let (streamer, previews) = StreamingReconService::spawn(
            ioc.subscribe_named("preview", 64, DeliveryMode::Lossy),
            StreamerConfig::default(),
        );
        let stats = publish_scan_under_storm(
            &ioc,
            &mut sim,
            "storm",
            det.mu_scale,
            &plan,
            Duration::ZERO,
            1.0,
        );
        assert_eq!(stats.published, 20);
        assert_eq!(stats.corrupt_injected, 2);
        assert_eq!(stats.brownout_throttled, 5);
        assert!(stats.throttle_wall > Duration::ZERO);

        // the preview reconstructs from exactly the 20 genuine frames
        let p = previews
            .recv_timeout(Duration::from_secs(30))
            .expect("preview despite the storm");
        assert_eq!(p.cached_frames, 20);
        assert_eq!(p.rejected_frames, 2, "corrupt frames rejected, counted");
        // the written file holds only genuine frames too
        let w = writer
            .wait_completion(Duration::from_secs(30))
            .expect("scan written despite the storm");
        assert_eq!(w.n_frames, 20);
        assert_eq!(w.rejected_frames, 2);
        streamer.stop();
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_to_archive_writes_both_products() {
        let dir = std::env::temp_dir().join("realmode_archive");
        std::fs::remove_dir_all(&dir).ok();
        let (scan, mu) = small_scan(32, 4, 16);
        let cfg = FileBranchConfig {
            sirt_iterations: 5,
            multiscale_chunk: [2, 16, 16],
            multiscale_levels: 2,
            ..Default::default()
        };
        let r = scan_to_archive(&scan, mu, &cfg, &dir);
        assert_eq!((r.volume.nx, r.volume.ny, r.volume.nz), (32, 32, 4));
        assert_eq!(r.report.slices, 4);
        // TIFF stack matches the in-memory volume slice for slice
        let stack = als_scidata::tiff::read_stack(&r.tiff_dir).unwrap();
        assert_eq!(stack.len(), 4);
        for (z, img) in stack.iter().enumerate() {
            assert_eq!(img.data, r.volume.slice_xy(z).data, "tiff slice {z}");
        }
        // multiscale store opens and level 0 round-trips the volume
        let store = als_scidata::MultiscaleStore::open(&r.multiscale_dir).unwrap();
        assert_eq!(store.n_levels(), 2);
        assert_eq!(store.read_level(0).unwrap(), r.volume);
        std::fs::remove_dir_all(&dir).ok();
    }
}
