//! Real-mode glue: the end-to-end beamline session with actual threads,
//! actual frames, and actual reconstructions (laptop scale).
//!
//! This is what the examples and the F2 experiment run: detector →
//! PVA mirror → {file writer, streaming recon service}, then a file-based
//! "high-quality" reconstruction of the written scan — the same dual-path
//! topology as Figure 3, with real data flowing.

use als_phantom::{DetectorConfig, ScanSimulator};
use als_scidata::ScanFile;
use als_stream::{
    publish_scan, ChannelMirror, FileWriterService, Preview, PvaServer, StreamerConfig,
    StreamingReconService,
};
use als_tomo::{fbp_slice, sirt_slice, FbpConfig, Geometry, Image, IterConfig, Sinogram, Volume};
use std::path::Path;
use std::time::Duration;

/// Everything a real-mode session produced.
#[derive(Debug)]
pub struct SessionResult {
    /// The streaming branch's preview (three slices + timings).
    pub preview: Preview,
    /// Path of the scan file the file writer produced.
    pub scan_path: std::path::PathBuf,
    /// The scan file's raw size in bytes.
    pub scan_bytes: u64,
    /// High-quality (file-based, iterative) reconstruction of the scan.
    pub file_based_volume: Volume,
    /// Streaming-quality (FBP) reconstruction for comparison.
    pub streaming_volume: Volume,
}

/// Run one complete dual-path session over a phantom volume with the
/// default detector model.
///
/// `vol` must have square slices; `n_angles` controls acquisition length.
pub fn run_session(
    vol: &Volume,
    n_angles: usize,
    out_dir: &Path,
    scan_id: &str,
    seed: u64,
) -> SessionResult {
    run_session_with(
        vol,
        n_angles,
        out_dir,
        scan_id,
        seed,
        DetectorConfig::default(),
    )
}

/// [`run_session`] with an explicit detector model (photon budget, noise).
pub fn run_session_with(
    vol: &Volume,
    n_angles: usize,
    out_dir: &Path,
    scan_id: &str,
    seed: u64,
    det_cfg: DetectorConfig,
) -> SessionResult {
    let geom = Geometry::parallel_180(n_angles, vol.nx);
    let mut sim = ScanSimulator::new(vol, geom.clone(), det_cfg, seed);

    // acquisition layer: IOC channel + mirror
    let ioc = PvaServer::new();
    let mirror = ChannelMirror::spawn(ioc.subscribe(1 << 16), Duration::from_millis(10));
    // orchestration-layer consumers on the mirrored channel
    let writer = FileWriterService::spawn(mirror.output().subscribe(1 << 16), out_dir);
    let (streamer, previews) = StreamingReconService::spawn(
        mirror.output().subscribe(1 << 16),
        StreamerConfig::default(),
    );

    // drive the scan
    publish_scan(&ioc, &mut sim, scan_id, det_cfg.mu_scale);

    let preview = previews
        .recv_timeout(Duration::from_secs(120))
        .expect("streaming preview within deadline");
    let written = writer
        .wait_completion(Duration::from_secs(120))
        .expect("scan file written");

    streamer.stop();
    writer.stop();
    mirror.stop();

    // file-based branch: load the written scan and run the high-quality
    // pipeline (preprocessing chain + iterative recon)
    let scan = ScanFile::load(&written.path).expect("scan loads");
    let file_based_volume = file_based_reconstruction(&scan, det_cfg.mu_scale);
    let streaming_volume = streaming_reconstruction(&scan, det_cfg.mu_scale);

    SessionResult {
        preview,
        scan_path: written.path,
        scan_bytes: written.bytes,
        file_based_volume,
        streaming_volume,
    }
}

/// The file-based "high quality" pipeline: normalization chain + SIRT.
pub fn file_based_reconstruction(scan: &ScanFile, mu_scale: f64) -> Volume {
    let (n_angles, rows, cols) = scan.shape();
    let geom = Geometry {
        angles: scan.angles(),
        n_det: cols,
        center: (cols as f64 - 1.0) / 2.0,
    };
    let cfg = IterConfig {
        iterations: 100,
        ..Default::default()
    };
    let mut out = Volume::zeros(cols, cols, rows);
    for r in 0..rows {
        let sino = scan_slice_sinogram(scan, r, n_angles, cols, mu_scale);
        // zinger removal only: dark/flat normalization (already applied in
        // scan_slice_sinogram) removes the column-gain errors that stripe
        // filtering targets, so running it here would only erode signal
        let cleaned = als_tomo::prep::remove_zingers(&sino, 0.5);
        let img = sirt_slice(&cleaned, &geom, &cfg).expect("sirt succeeds");
        out.set_slice_xy(r, &img);
    }
    out
}

/// The streaming-quality pipeline: plain FBP, no preprocessing.
pub fn streaming_reconstruction(scan: &ScanFile, mu_scale: f64) -> Volume {
    let (n_angles, rows, cols) = scan.shape();
    let geom = Geometry {
        angles: scan.angles(),
        n_det: cols,
        center: (cols as f64 - 1.0) / 2.0,
    };
    let cfg = FbpConfig::default();
    let mut out = Volume::zeros(cols, cols, rows);
    for r in 0..rows {
        let sino = scan_slice_sinogram(scan, r, n_angles, cols, mu_scale);
        let img: Image = fbp_slice(&sino, &geom, &cfg).expect("fbp succeeds");
        out.set_slice_xy(r, &img);
    }
    out
}

/// Extract the normalized sinogram of detector row `r` from a scan file.
pub fn scan_slice_sinogram(
    scan: &ScanFile,
    r: usize,
    n_angles: usize,
    cols: usize,
    mu_scale: f64,
) -> Sinogram {
    let dark = scan.dark();
    let flat = scan.flat();
    let mut sino = Sinogram::zeros(n_angles, cols);
    for a in 0..n_angles {
        let frame = scan.frame_data(a);
        let base = r * cols;
        for c in 0..cols {
            let raw = frame[base + c] as f64;
            let d = dark[base + c] as f64;
            let f = flat[base + c] as f64;
            let t = ((raw - d) / (f - d).max(1.0)).clamp(1e-6, 1.0);
            sino.set(a, c, (-(t.ln()) / mu_scale) as f32);
        }
    }
    sino
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_phantom::shepp_logan_volume;
    use als_tomo::quality::mse_in_disk;

    #[test]
    fn dual_path_session_produces_both_products() {
        let dir = std::env::temp_dir().join("realmode_session");
        std::fs::remove_dir_all(&dir).ok();
        let vol = shepp_logan_volume(48, 3);
        let r = run_session(&vol, 48, &dir, "session_test", 21);
        // streaming preview exists with the right shape
        assert_eq!(r.preview.slices[0].width, 48);
        assert_eq!(r.preview.cached_frames, 48);
        // the scan file landed on disk
        assert!(r.scan_path.exists());
        assert!(r.scan_bytes > 0);
        // both volumes have the right shape
        assert_eq!((r.file_based_volume.nx, r.file_based_volume.nz), (48, 3));
        assert_eq!((r.streaming_volume.nx, r.streaming_volume.nz), (48, 3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_based_branch_beats_streaming_quality() {
        // the paper's claim: the slower file-based branch produces
        // higher-quality reconstructions than the fast streaming branch
        let dir = std::env::temp_dir().join("realmode_quality");
        std::fs::remove_dir_all(&dir).ok();
        let truth = shepp_logan_volume(48, 2);
        // angle-starved acquisition: where iterative + preprocessing shine
        let r = run_session(&truth, 16, &dir, "quality_test", 5);
        let mut err_file = 0.0;
        let mut err_stream = 0.0;
        for z in 0..2 {
            let t = truth.slice_xy(z);
            err_file += mse_in_disk(&t, &r.file_based_volume.slice_xy(z));
            err_stream += mse_in_disk(&t, &r.streaming_volume.slice_xy(z));
        }
        assert!(
            err_file < err_stream,
            "file-based mse {err_file} should beat streaming {err_stream}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
