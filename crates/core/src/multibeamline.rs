//! §6 "Expanded Compute Resources" — scaling to more beamlines.
//!
//! "As more beamlines adopt streaming, the issue shifts from a scheduling
//! to an economic-policy challenge. At scale, compute could be reserved
//! for each beamline to prevent resource contention." This experiment
//! scales the number of active beamlines and compares two allocation
//! policies at NERSC:
//!
//! * **shared** — all beamlines compete for one fixed realtime partition;
//! * **reserved** — each beamline brings its own node slice (capacity
//!   grows with the fleet).
//!
//! The output is the per-beamline `nersc_recon_flow` latency as the fleet
//! grows — flat under reservation, degrading under sharing.

use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig, FLOW_NERSC};
use serde::Serialize;

/// Allocation policy for the NERSC realtime partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AllocationPolicy {
    /// One fixed partition shared by every beamline.
    Shared { total_nodes: usize },
    /// `nodes_per_beamline` dedicated nodes per endstation.
    Reserved { nodes_per_beamline: usize },
}

/// One fleet-size data point.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    pub beamlines: usize,
    pub policy: AllocationPolicy,
    /// Median nersc flow duration (s).
    pub median_s: f64,
    /// 95th percentile (s) — the tail users feel.
    pub p95_s: f64,
}

/// Run one fleet configuration. `n_scans_per_beamline` scans arrive from
/// each endstation at the production cadence, interleaved (modeled as a
/// single workload with cadence divided by the fleet size).
pub fn run_scale_point(
    beamlines: usize,
    policy: AllocationPolicy,
    n_scans_per_beamline: usize,
    seed: u64,
) -> ScalePoint {
    assert!(beamlines >= 1);
    let nodes = match policy {
        AllocationPolicy::Shared { total_nodes } => total_nodes,
        AllocationPolicy::Reserved { nodes_per_beamline } => nodes_per_beamline * beamlines,
    };
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        nersc_nodes: nodes,
        // scale the transfer-service concurrency with the fleet: each
        // beamline runs its own Globus submission slots
        transfer_concurrency: 4 * beamlines,
        alcf_max_nodes: 4 * beamlines,
        beamline_count: beamlines,
        background_mean_arrival_s: None,
        ..Default::default()
    });
    // fleet cadence: N beamlines at ~4 min each → one scan every 240/N s
    let mut workload = ScanWorkload::production().with_cadence_secs(240.0 / beamlines as f64);
    sim.schedule_campaign(&mut workload, n_scans_per_beamline * beamlines);
    sim.run(None);
    let durations = sim
        .engine()
        .query()
        .last_n_successful_durations(FLOW_NERSC, usize::MAX);
    let median = als_simcore::Summary::from_slice(&durations)
        .map(|s| s.median)
        .unwrap_or(f64::NAN);
    let p95 = als_simcore::Summary::percentile(&durations, 95.0).unwrap_or(f64::NAN);
    ScalePoint {
        beamlines,
        policy,
        median_s: median,
        p95_s: p95,
    }
}

/// Sweep fleet sizes under both policies.
pub fn scaling_sweep(
    fleet_sizes: &[usize],
    n_scans_per_beamline: usize,
    seed: u64,
) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for &n in fleet_sizes {
        out.push(run_scale_point(
            n,
            AllocationPolicy::Shared { total_nodes: 8 },
            n_scans_per_beamline,
            seed,
        ));
        out.push(run_scale_point(
            n,
            AllocationPolicy::Reserved {
                nodes_per_beamline: 8,
            },
            n_scans_per_beamline,
            seed,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_beamline_policies_agree() {
        // with one beamline, shared(8) and reserved(8/bl) are identical
        let shared = run_scale_point(1, AllocationPolicy::Shared { total_nodes: 8 }, 15, 3);
        let reserved = run_scale_point(
            1,
            AllocationPolicy::Reserved {
                nodes_per_beamline: 8,
            },
            15,
            3,
        );
        assert!((shared.median_s - reserved.median_s).abs() < 1e-9);
    }

    #[test]
    fn shared_pool_degrades_with_fleet_size() {
        let one = run_scale_point(1, AllocationPolicy::Shared { total_nodes: 8 }, 12, 5);
        let four = run_scale_point(4, AllocationPolicy::Shared { total_nodes: 8 }, 12, 5);
        assert!(
            four.p95_s > one.p95_s * 1.3,
            "shared tail should degrade: {} -> {}",
            one.p95_s,
            four.p95_s
        );
    }

    #[test]
    fn reservation_keeps_latency_flat() {
        let one = run_scale_point(
            1,
            AllocationPolicy::Reserved {
                nodes_per_beamline: 8,
            },
            12,
            5,
        );
        let four = run_scale_point(
            4,
            AllocationPolicy::Reserved {
                nodes_per_beamline: 8,
            },
            12,
            5,
        );
        // medians stay within 25% as the fleet quadruples
        let ratio = four.median_s / one.median_s;
        assert!(
            (0.75..1.25).contains(&ratio),
            "reserved scaling ratio {ratio}: {} -> {}",
            one.median_s,
            four.median_s
        );
    }

    #[test]
    fn reserved_beats_shared_at_scale() {
        let shared = run_scale_point(4, AllocationPolicy::Shared { total_nodes: 8 }, 12, 9);
        let reserved = run_scale_point(
            4,
            AllocationPolicy::Reserved {
                nodes_per_beamline: 8,
            },
            12,
            9,
        );
        assert!(
            reserved.p95_s < shared.p95_s,
            "reserved p95 {} should beat shared {}",
            reserved.p95_s,
            shared.p95_s
        );
    }
}
