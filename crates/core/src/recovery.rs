//! Recovery experiment (R2): orchestrator crashes, with and without the
//! durable write-ahead journal.
//!
//! The §5.3 incident class the resilience experiment (R1) does not cover
//! is the coordinator itself dying mid-beamtime: facility jobs and
//! transfers keep running unattended, but the process that knew about
//! them is gone. R2 kills the orchestrator on a schedule and compares two
//! restart strategies on identical scans and crash times:
//!
//! - **durable** — replay the write-ahead journal, reconcile with live
//!   facility state (re-attach in-flight transfers/jobs, cancel orphans,
//!   expire dead-incarnation leases), and resume exactly where the dead
//!   incarnation stopped;
//! - **baseline** — come up empty and re-scan the beamline filesystem and
//!   catalogue, re-initiating whatever looks unfinished — including work
//!   that is still in flight at the facilities.
//!
//! The metrics are campaign completion, *duplicated side-effecting
//! steps* (the same ingest/copy/exec/return initiated twice at a
//! facility), and end-to-end scan latency. Every run is deterministic
//! from its seed, so each comparison is paired.

use crate::faults::FaultPlan;
use crate::resilience::percentile;
use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig};
use als_simcore::{SimDuration, SimInstant};
use serde::Serialize;

/// Aggregated results of one crash-injected campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryOutcome {
    pub durable: bool,
    pub scans: usize,
    /// Recon branches the campaign should deliver (two per scan).
    pub branches_total: usize,
    /// Branches whose product physically reached the beamline.
    pub branches_completed: usize,
    pub completion_rate: f64,
    /// Side-effecting steps initiated twice at a facility.
    pub duplicate_side_effects: usize,
    pub crashes: usize,
    /// Journal replays performed (durable mode only).
    pub recoveries: usize,
    /// In-flight external operations re-attached from the journal.
    pub reattached_ops: usize,
    /// Live facility jobs cancelled because the journal disowned them.
    pub orphans_cancelled: usize,
    /// Scan-start → branch-product latency percentiles (s).
    pub p50_latency_s: Option<f64>,
    pub p99_latency_s: Option<f64>,
}

/// Paired comparison on identical scans + crash schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryComparison {
    pub durable: RecoveryOutcome,
    pub non_durable: RecoveryOutcome,
}

/// The full R2 report (what `experiments recovery` prints).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// One mid-campaign crash with a 10-minute restart gap.
    pub one_crash: RecoveryComparison,
    /// Three crashes spread across the campaign.
    pub crash_storm: RecoveryComparison,
}

fn secs(s: u64) -> SimInstant {
    SimInstant::ZERO + SimDuration::from_secs(s)
}

/// The canonical single-crash plan: the coordinator dies 40 minutes into
/// the campaign and a new incarnation comes up 10 minutes later.
pub fn one_crash_plan() -> FaultPlan {
    FaultPlan::none().with_orchestrator_crash(secs(2400), SimDuration::from_secs(600))
}

/// A harsher schedule: three deaths spread across the campaign, each
/// with a 7.5-minute restart gap.
pub fn crash_storm_plan() -> FaultPlan {
    let gap = SimDuration::from_secs(450);
    FaultPlan::none()
        .with_orchestrator_crash(secs(1500), gap)
        .with_orchestrator_crash(secs(3600), gap)
        .with_orchestrator_crash(secs(5700), gap)
}

/// Run one crash-injected campaign and return the drained simulator.
/// Fixed 5-minute cadence so crash times line up with scan arrivals
/// identically across the durable/baseline pair.
pub fn run_recovery_sim(n_scans: usize, seed: u64, durable: bool, plan: &FaultPlan) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: plan.clone(),
        durable_recovery: durable,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

/// Aggregate a drained simulator into an outcome row.
pub fn outcome_of(sim: &FacilitySim, scans: usize) -> RecoveryOutcome {
    let total = scans * 2;
    let completed = sim.branches_completed();
    let mut latencies = sim.branch_latencies.clone();
    latencies.sort_by(f64::total_cmp);
    RecoveryOutcome {
        durable: sim.cfg.durable_recovery,
        scans,
        branches_total: total,
        branches_completed: completed,
        completion_rate: if total > 0 {
            completed as f64 / total as f64
        } else {
            0.0
        },
        duplicate_side_effects: sim.duplicate_side_effects,
        crashes: sim.crash_count,
        recoveries: sim.recovery_count,
        reattached_ops: sim.reattached_ops,
        orphans_cancelled: sim.orphan_cancel_count,
        p50_latency_s: percentile(&latencies, 50.0),
        p99_latency_s: percentile(&latencies, 99.0),
    }
}

/// Same scans, same crash schedule, journal on vs off.
pub fn recovery_comparison(n_scans: usize, seed: u64, plan: &FaultPlan) -> RecoveryComparison {
    let durable = run_recovery_sim(n_scans, seed, true, plan);
    let baseline = run_recovery_sim(n_scans, seed, false, plan);
    RecoveryComparison {
        durable: outcome_of(&durable, n_scans),
        non_durable: outcome_of(&baseline, n_scans),
    }
}

/// The full R2 experiment at paper-like scale.
pub fn recovery_experiment(n_scans: usize, seed: u64) -> RecoveryReport {
    RecoveryReport {
        one_crash: recovery_comparison(n_scans, seed, &one_crash_plan()),
        crash_storm: recovery_comparison(n_scans, seed, &crash_storm_plan()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_campaign_is_clean_in_both_modes() {
        for durable in [true, false] {
            let sim = run_recovery_sim(4, 13, durable, &FaultPlan::none());
            let out = outcome_of(&sim, 4);
            assert_eq!(out.branches_total, 8);
            assert_eq!(out.completion_rate, 1.0, "durable={durable}");
            assert_eq!(out.duplicate_side_effects, 0, "durable={durable}");
            assert_eq!(out.crashes, 0);
            assert_eq!(out.recoveries, 0);
        }
    }

    #[test]
    fn durable_recovery_completes_one_crash_without_duplicates() {
        let cmp = recovery_comparison(12, 7, &one_crash_plan());
        assert_eq!(cmp.durable.crashes, 1);
        assert_eq!(cmp.durable.recoveries, 1);
        assert!(
            cmp.durable.completion_rate >= 0.95,
            "durable completion {:.2}",
            cmp.durable.completion_rate
        );
        assert_eq!(
            cmp.durable.duplicate_side_effects, 0,
            "journal replay must not re-initiate facility work"
        );
        // the amnesiac baseline either loses work or redoes it
        assert!(
            cmp.non_durable.completion_rate < cmp.durable.completion_rate
                || cmp.non_durable.duplicate_side_effects > 0,
            "baseline should pay for forgetting: {:?}",
            cmp.non_durable
        );
    }

    #[test]
    fn crash_plans_are_well_formed() {
        assert_eq!(one_crash_plan().orchestrator_crashes.len(), 1);
        let storm = crash_storm_plan();
        assert_eq!(storm.orchestrator_crashes.len(), 3);
        for w in storm.orchestrator_crashes.windows(2) {
            assert!(w[0].restart_at() < w[1].at, "crashes must not overlap");
        }
    }
}
