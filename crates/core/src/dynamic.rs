//! §6 "Dynamic and Real-Time Analysis" — the 4D extension.
//!
//! "Leveraging quick streaming reconstructions, we can explore supporting
//! time-resolved experiments by extending our workflow to handle 4D
//! datasets as sequences of time-stamped volumes." This module does
//! exactly that at laptop scale: consecutive scans of an evolving sample
//! stream through the real PVA → streaming-recon path, producing a
//! time-stamped volume sequence plus a per-step quantitative trace — the
//! experiment-steering signal (e.g. fracture porosity closing under
//! creep) a scientist would watch live.

use als_phantom::proppant::{proppant_creep_series, ProppantConfig};
use als_phantom::{DetectorConfig, ScanSimulator};
use als_stream::{
    publish_scan_pooled, PlanCache, PvaServer, SlabPool, StreamerConfig, StreamingReconService,
};
use als_telemetry::Registry;
use als_tomo::{Geometry, Image, Volume};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// One time step of the 4D series.
#[derive(Debug, Clone, Serialize)]
pub struct TimeStep {
    /// Index in the sequence (the time stamp).
    pub step: usize,
    /// Compaction state of the sample at this step (0 = fresh, 1 = crept).
    pub compaction: f64,
    /// Wall seconds the streaming reconstruction took.
    pub recon_secs: f64,
    /// Wall seconds from scan end to preview in hand — the steering
    /// feedback latency the experimenter experiences.
    pub feedback_secs: f64,
    /// The steering metric: fracture porosity measured on the preview's
    /// central slice.
    pub porosity: f64,
}

/// Result of a 4D run.
#[derive(Debug, Serialize)]
pub struct DynamicSeries {
    pub steps: Vec<TimeStep>,
    /// Reconstruction plans built across the whole series (the shared
    /// plan cache makes this 1 for a fixed-geometry experiment).
    pub plans_built: u64,
    /// Plan-cache hits across the series (steps − plans_built).
    pub plan_cache_hits: u64,
    /// Slab buffers ever allocated by the acquisition source: the
    /// steady-state working set of the zero-copy stream.
    pub slabs_allocated: u64,
}

impl DynamicSeries {
    /// Is the steering metric monotonically non-increasing (the physical
    /// expectation for creep)?
    pub fn porosity_monotone_decreasing(&self, slack: f64) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[1].porosity <= w[0].porosity + slack)
    }
}

/// Porosity from a reconstructed slice: pore (low attenuation) vs grain
/// (high attenuation) voxels within the fracture band.
fn slice_porosity(slice: &Image) -> f64 {
    let mut pore = 0usize;
    let mut grain = 0usize;
    for &v in &slice.data {
        if v < 0.3 && v > -0.3 {
            pore += 1;
        } else if v > 0.9 {
            grain += 1;
        }
    }
    let total = pore + grain;
    if total == 0 {
        0.0
    } else {
        pore as f64 / total as f64
    }
}

/// Stream a creep series through the real streaming service: one scan per
/// time step, previews collected in order.
pub fn run_creep_series(
    n: usize,
    nz: usize,
    steps: usize,
    n_angles: usize,
    seed: u64,
) -> DynamicSeries {
    run_creep_series_with_registry(n, nz, steps, n_angles, seed, None)
}

/// [`run_creep_series`] with per-step latency metrics exported into a
/// telemetry registry (labelled `stream="4d"`).
pub fn run_creep_series_with_registry(
    n: usize,
    nz: usize,
    steps: usize,
    n_angles: usize,
    seed: u64,
    registry: Option<Arc<Registry>>,
) -> DynamicSeries {
    let series: Vec<Volume> = proppant_creep_series(n, nz, &ProppantConfig::default(), steps, seed);
    let server = PvaServer::new();
    // one plan cache and one slab pool across the whole experiment: every
    // step after the first reuses the first step's reconstruction plan
    // and detector buffers
    let plans = PlanCache::new();
    let pool = SlabPool::new(n * nz);
    let cfg = StreamerConfig {
        preview_queue: steps.max(1),
        stream: "4d".to_string(),
        registry,
        ..Default::default()
    };
    let (svc, previews) =
        StreamingReconService::spawn_shared(server.subscribe(1 << 17), cfg, Arc::clone(&plans));
    let det = DetectorConfig {
        noise: false,
        ..Default::default()
    };

    let mut out = Vec::with_capacity(steps);
    for (step, vol) in series.iter().enumerate() {
        let geom = Geometry::parallel_180(n_angles, n);
        let mut sim = ScanSimulator::new(vol, geom, det, seed + step as u64);
        publish_scan_pooled(
            &server,
            &mut sim,
            &format!("t{step:03}"),
            det.mu_scale,
            &pool,
        );
        let preview = previews
            .recv_timeout(Duration::from_secs(120))
            .expect("time-step preview");
        assert_eq!(preview.scan_id, format!("t{step:03}"), "previews in order");
        let compaction = if steps > 1 {
            step as f64 / (steps - 1) as f64
        } else {
            0.0
        };
        out.push(TimeStep {
            step,
            compaction,
            recon_secs: preview.recon_wall.as_secs_f64(),
            feedback_secs: preview.feedback_wall.as_secs_f64(),
            porosity: slice_porosity(&preview.slices[0]),
        });
    }
    svc.stop();
    DynamicSeries {
        steps: out,
        plans_built: plans.misses(),
        plan_cache_hits: plans.hits(),
        slabs_allocated: pool.allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_d_series_streams_in_order() {
        let series = run_creep_series(48, 3, 4, 48, 2020);
        assert_eq!(series.steps.len(), 4);
        for (i, s) in series.steps.iter().enumerate() {
            assert_eq!(s.step, i);
            assert!(s.recon_secs > 0.0);
        }
        // compaction ramps 0 -> 1
        assert_eq!(series.steps[0].compaction, 0.0);
        assert_eq!(series.steps[3].compaction, 1.0);
    }

    #[test]
    fn series_shares_one_plan_and_a_bounded_slab_set() {
        let series = run_creep_series(32, 2, 3, 24, 4);
        assert_eq!(
            series.plans_built, 1,
            "fixed geometry: one plan for the whole experiment"
        );
        assert_eq!(series.plan_cache_hits, 2);
        assert!(
            series.slabs_allocated <= 24,
            "zero-copy stream keeps a bounded slab working set, allocated {}",
            series.slabs_allocated
        );
        for s in &series.steps {
            assert!(s.feedback_secs >= s.recon_secs);
        }
    }

    #[test]
    fn steering_metric_tracks_creep() {
        let series = run_creep_series(48, 3, 4, 64, 7);
        assert!(
            series.porosity_monotone_decreasing(0.03),
            "porosity trace {:?}",
            series.steps.iter().map(|s| s.porosity).collect::<Vec<_>>()
        );
        // and the effect is real, not flat
        let first = series.steps.first().unwrap().porosity;
        let last = series.steps.last().unwrap().porosity;
        assert!(
            first - last > 0.05,
            "creep should close porosity: {first} -> {last}"
        );
    }
}
