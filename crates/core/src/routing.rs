//! Routing experiment (R4): cost-aware N-way routing under *rolling*
//! multi-facility outages.
//!
//! R1 (`resilience`) replays the paper's §5.3 incident — one facility
//! down, one redirect. R4 stresses the part R1 cannot: outages that
//! roll across the fleet, so a branch's first refuge also dies and the
//! work must move again. The comparison is paired on the same scans and
//! the same fault schedule:
//!
//! * **cost-aware / 3 facilities** — NERSC + ALCF + OLCF behind the
//!   [`als_facility::Router`] in [`RouterMode::CostAware`]: admissible
//!   facilities scored by queue wait × transfer time, re-routing bounded
//!   by hop count, abandoned work cancelled remotely.
//! * **one-shot / 2 facilities** — the legacy NERSC↔ALCF pair in
//!   [`RouterMode::OneShot`]: a single redirect ever, so a branch whose
//!   refuge fails is dead.
//!
//! The metrics are campaign completion, flow-latency percentiles,
//! redirect/cancel counts, the deepest redirect chain, and duplicated
//! side effects (which must stay zero: re-routing must never repeat a
//! facility-side mutation).

use crate::faults::{FaultKind, FaultPlan, FaultWindow};
use crate::resilience::percentile;
use crate::scan::ScanWorkload;
use crate::sim::{FacilitySim, SimConfig, FLOW_ALCF, FLOW_NERSC};
use als_facility::RouterMode;
use als_orchestrator::engine::FlowState;
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregated results of one fault-injected campaign arm.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoutingOutcome {
    pub mode: &'static str,
    pub facilities: usize,
    pub scans: usize,
    /// Terminal recon-branch flow runs (NERSC + ALCF branches).
    pub branch_flows_total: usize,
    pub branch_flows_completed: usize,
    pub completion_rate: f64,
    /// Cross-facility redirects performed (a branch may count twice).
    pub failover_count: usize,
    /// Stranded ops cancelled remotely (deadline or stale-sweep).
    pub remote_cancels: usize,
    /// Deepest redirect chain any branch accumulated.
    pub max_route_hops: usize,
    /// Facility-side mutations performed more than once. Must be zero:
    /// every redirect abandons its claim before the work moves.
    pub duplicate_side_effects: usize,
    /// Completed-branch latency percentiles (s).
    pub p50_flow_s: Option<f64>,
    pub p95_flow_s: Option<f64>,
    /// How many completed branches each facility ultimately served.
    pub served_by: BTreeMap<String, usize>,
}

/// Paired arms over the same scans and fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoutingComparison {
    pub cost_aware_3fac: RoutingOutcome,
    pub one_shot_2fac: RoutingOutcome,
}

/// The full R4 report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoutingReport {
    pub rolling: RoutingComparison,
}

/// The rolling outage schedule: OLCF browns out early (so the third
/// facility is not a free pass), then NERSC goes down mid-campaign and
/// stays down, then ALCF follows while NERSC is still out — for the
/// back half of the arrival window only OLCF is alive.
pub fn rolling_outage_plan() -> FaultPlan {
    let w = |s: u64, e: u64, kind: FaultKind| {
        FaultWindow::new(
            als_simcore::SimInstant::ZERO + als_simcore::SimDuration::from_secs(s),
            als_simcore::SimInstant::ZERO + als_simcore::SimDuration::from_secs(e),
            kind,
        )
    };
    FaultPlan::none()
        .with_window(w(300, 1500, FaultKind::OlcfOutage))
        .with_window(w(1800, 9000, FaultKind::NerscOutage))
        .with_window(w(5400, 9000, FaultKind::AlcfOutage))
}

/// Run one routing arm and return the drained simulator. Failover is
/// always on; the arms differ in router mode and fleet size.
pub fn run_routing_sim(
    n_scans: usize,
    seed: u64,
    olcf_enabled: bool,
    router_mode: RouterMode,
    plan: &FaultPlan,
) -> FacilitySim {
    let mut sim = FacilitySim::new(SimConfig {
        seed,
        faults: plan.clone(),
        failover_enabled: true,
        olcf_enabled,
        router_mode,
        ..Default::default()
    });
    let mut workload = ScanWorkload::production().with_cadence_secs(300.0);
    sim.schedule_campaign(&mut workload, n_scans);
    sim.run(None);
    sim
}

/// Aggregate a drained simulator into an outcome row.
pub fn routing_outcome_of(sim: &FacilitySim, scans: usize) -> RoutingOutcome {
    let engine = sim.engine();
    let q = engine.query();
    let mut total = 0usize;
    let mut completed = 0usize;
    let mut durations: Vec<f64> = Vec::new();
    let mut served_by: BTreeMap<String, usize> = BTreeMap::new();
    for flow in [FLOW_NERSC, FLOW_ALCF] {
        let home = if flow == FLOW_NERSC { "nersc" } else { "alcf" };
        for run in q.runs_of(flow) {
            if !run.state.is_terminal() {
                continue;
            }
            total += 1;
            if run.state == FlowState::Completed {
                completed += 1;
                if let Some(d) = run.duration() {
                    durations.push(d.as_secs_f64());
                }
                let site = run
                    .parameters
                    .get("failover")
                    .map(String::as_str)
                    .unwrap_or(home);
                *served_by.entry(site.to_string()).or_insert(0) += 1;
            }
        }
    }
    durations.sort_by(f64::total_cmp);
    RoutingOutcome {
        mode: match sim.cfg.router_mode {
            RouterMode::CostAware => "cost_aware",
            RouterMode::OneShot => "one_shot",
        },
        facilities: sim.router.enabled_facilities().len(),
        scans,
        branch_flows_total: total,
        branch_flows_completed: completed,
        completion_rate: if total > 0 {
            completed as f64 / total as f64
        } else {
            0.0
        },
        failover_count: sim.failover_count,
        remote_cancels: sim.remote_cancel_count,
        max_route_hops: sim.max_route_hops(),
        duplicate_side_effects: sim.duplicate_side_effects,
        p50_flow_s: percentile(&durations, 50.0),
        p95_flow_s: percentile(&durations, 95.0),
        served_by,
    }
}

/// Same scans, same rolling outages: 3-facility cost-aware routing vs
/// the legacy 2-facility one-shot failover.
pub fn routing_comparison(n_scans: usize, seed: u64, plan: &FaultPlan) -> RoutingComparison {
    let three = run_routing_sim(n_scans, seed, true, RouterMode::CostAware, plan);
    let two = run_routing_sim(n_scans, seed, false, RouterMode::OneShot, plan);
    RoutingComparison {
        cost_aware_3fac: routing_outcome_of(&three, n_scans),
        one_shot_2fac: routing_outcome_of(&two, n_scans),
    }
}

/// The full R4 experiment.
pub fn routing_experiment(n_scans: usize, seed: u64) -> RoutingReport {
    RoutingReport {
        rolling: routing_comparison(n_scans, seed, &rolling_outage_plan()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_plan_covers_all_three_facilities() {
        let p = rolling_outage_plan();
        assert_eq!(p.windows.len(), 3);
        let kinds: Vec<FaultKind> = p.windows.iter().map(|w| w.kind).collect();
        assert!(kinds.contains(&FaultKind::OlcfOutage));
        assert!(kinds.contains(&FaultKind::NerscOutage));
        assert!(kinds.contains(&FaultKind::AlcfOutage));
    }

    #[test]
    fn three_way_cost_aware_survives_where_one_shot_does_not() {
        let cmp = routing_comparison(24, 5, &rolling_outage_plan());
        let three = &cmp.cost_aware_3fac;
        let two = &cmp.one_shot_2fac;
        assert_eq!(
            three.completion_rate, 1.0,
            "cost-aware 3-facility routing must finish the campaign: {three:?}"
        );
        assert!(
            two.completion_rate < 0.9,
            "the one-shot 2-facility router should lose >10% of branches \
             under a rolling outage: {two:?}"
        );
        // the double outage forces at least one branch through a second
        // redirect — the thing the one-shot router cannot do
        assert!(three.max_route_hops >= 2, "{three:?}");
        assert!(three.failover_count > two.failover_count);
        // the one-shot router leaves work stranded at dead facilities
        // until each op's deadline cancels it; the cost-aware router's
        // stale-sweep re-routes on the outage itself, so its redirects
        // ride the kill events instead of deadline cancels
        assert!(two.remote_cancels > 0, "{two:?}");
        // OLCF actually served work (it is not a paper fleet member)
        assert!(three.served_by.get("olcf").copied().unwrap_or(0) > 0);
        // re-routing never duplicated a facility-side mutation
        assert_eq!(three.duplicate_side_effects, 0);
        assert_eq!(two.duplicate_side_effects, 0);
        // latency is reported for the surviving arm
        assert!(three.p50_flow_s.is_some());
    }

    #[test]
    fn routing_comparison_is_deterministic() {
        let a = routing_comparison(10, 9, &rolling_outage_plan());
        let b = routing_comparison(10, 9, &rolling_outage_plan());
        assert_eq!(a, b);
    }
}
