//! # als-flows
//!
//! The paper's primary contribution, reimplemented in Rust: the
//! multi-facility workflow infrastructure that connects the ALS
//! microtomography beamline (8.3.2) to NERSC and ALCF.
//!
//! Two execution modes:
//!
//! * **Real mode** — the streaming branch runs for real: detector frames
//!   from [`als_phantom`] flow through [`als_stream`]'s PVA mirror into
//!   the file writer and the streaming reconstruction service, and actual
//!   reconstructions come back. Used by the examples and the quality
//!   experiments.
//! * **Simulated mode** — the multi-facility campaign replays at paper
//!   scale (20–30 GB scans, 100-scan campaigns) on the deterministic
//!   event kernel: Globus transfers over the ESnet model, SFAPI/Slurm at
//!   NERSC with `realtime` QOS, Globus Compute pilot jobs at ALCF, flow
//!   lifecycle recorded in the Prefect-substitute engine. Table 2 and the
//!   lifecycle/incident experiments come from this mode.
//!
//! Module map:
//!
//! * [`users`] — Table 1's user archetypes;
//! * [`scan`] — scan workload model (sizes, cadence, scaled dimensions);
//! * [`sim`] — the multi-facility discrete-event simulation: the
//!   `new_file_832`, `nersc_recon_flow`, and `alcf_recon_flow` state
//!   machines over the shared services;
//! * [`campaign`] — campaign driver + Table 2 report;
//! * [`streaming_model`] — paper-scale streaming-branch timing (S1) and
//!   the >100× historical speedup comparison (S2);
//! * [`lifecycle`] — data-lifecycle / pruning experiment (S3);
//! * [`incident`] — the §5.3 prune-burst incident reproduction (S4);
//! * [`realmode`] — glue running the real-threaded end-to-end path;
//! * [`dynamic`] — the §6 4D time-resolved extension (future work,
//!   implemented);
//! * [`archive`] — HPSS archival flows via Slurm/SFAPI (§4.2.3);
//! * [`multibeamline`] — the §6 fleet-scaling / reserved-compute
//!   experiment.

pub mod alignment;
pub mod archive;
pub mod campaign;
pub mod dynamic;
pub mod faults;
pub mod incident;
pub mod lifecycle;
pub mod multibeamline;
pub mod observability;
pub mod realmode;
pub mod recovery;
pub mod resilience;
pub mod routing;
pub mod scan;
pub mod shard_recovery;
pub mod sim;
pub mod streaming_model;
pub mod users;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use faults::{FaultKind, FaultPlan, FaultWindow, OrchestratorCrash};
pub use observability::{
    run_observability, run_observability_sim, ObservabilityBundle, ObservabilityReport,
};
pub use recovery::{
    recovery_comparison, recovery_experiment, RecoveryComparison, RecoveryOutcome, RecoveryReport,
};
pub use resilience::{
    resilience_comparison, resilience_experiment, ResilienceComparison, ResilienceOutcome,
    ResilienceReport,
};
pub use routing::{
    routing_comparison, routing_experiment, RoutingComparison, RoutingOutcome, RoutingReport,
};
pub use scan::{Scan, ScanId, ScanWorkload};
pub use shard_recovery::{
    run_shard_chaos_sim, shard_chaos_experiment, shard_chaos_outcome, ShardChaosOutcome,
    ShardChaosReport,
};
pub use sim::{FacilitySim, SimConfig};
pub use users::{user_archetypes, UserArchetype};
