//! Zarr-like multiscale chunked volume store.
//!
//! The file-based flows produce "a multi-scale reconstructed volume (Zarr
//! format)" for the itk-vtk-viewer web app. This store mirrors the layout:
//! a directory containing a JSON metadata document plus one binary file
//! per chunk per resolution level (`L{level}/{cz}.{cy}.{cx}`), each chunk
//! CRC-protected. Level 0 is full resolution; each higher level halves
//! every axis (box-filtered), which is what progressive web viewers pull.

use crate::checksum::crc32;
use als_tomo::Volume;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the multiscale store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Corrupt(String),
    Meta(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt chunk: {m}"),
            StoreError::Meta(m) => write!(f, "bad metadata: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Per-level metadata.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct LevelMeta {
    pub shape: [usize; 3],
    pub chunk: [usize; 3],
}

/// Store metadata document (`.mzarr.json`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct StoreMeta {
    pub name: String,
    pub dtype: String,
    pub levels: Vec<LevelMeta>,
}

/// A multiscale volume store rooted at a directory.
#[derive(Debug, Clone)]
pub struct MultiscaleStore {
    root: PathBuf,
    meta: StoreMeta,
}

fn chunk_grid(shape: [usize; 3], chunk: [usize; 3]) -> [usize; 3] {
    [
        shape[0].div_ceil(chunk[0]),
        shape[1].div_ceil(chunk[1]),
        shape[2].div_ceil(chunk[2]),
    ]
}

impl MultiscaleStore {
    /// Build a pyramid from `vol` with `n_levels` levels (level 0 = full
    /// resolution, each level halves all axes) and write it under `root`.
    pub fn create(
        root: &Path,
        name: &str,
        vol: &Volume,
        chunk: [usize; 3],
        n_levels: usize,
    ) -> Result<MultiscaleStore, StoreError> {
        assert!(n_levels >= 1, "need at least one level");
        assert!(chunk.iter().all(|&c| c > 0), "chunk dims must be nonzero");
        std::fs::create_dir_all(root)?;
        let mut levels = Vec::with_capacity(n_levels);
        let mut current = vol.clone();
        for level in 0..n_levels {
            let shape = [current.nz, current.ny, current.nx];
            levels.push(LevelMeta { shape, chunk });
            write_level(root, level, &current, chunk)?;
            if level + 1 < n_levels {
                current = downsample2(&current);
            }
        }
        let meta = StoreMeta {
            name: name.to_string(),
            dtype: "f32".into(),
            levels,
        };
        let meta_json =
            serde_json::to_string_pretty(&meta).map_err(|e| StoreError::Meta(e.to_string()))?;
        std::fs::write(root.join(".mzarr.json"), meta_json)?;
        Ok(MultiscaleStore {
            root: root.to_path_buf(),
            meta,
        })
    }

    /// Open an existing store.
    pub fn open(root: &Path) -> Result<MultiscaleStore, StoreError> {
        let meta_raw = std::fs::read_to_string(root.join(".mzarr.json"))?;
        let meta: StoreMeta =
            serde_json::from_str(&meta_raw).map_err(|e| StoreError::Meta(e.to_string()))?;
        if meta.dtype != "f32" {
            return Err(StoreError::Meta(format!(
                "unsupported dtype {}",
                meta.dtype
            )));
        }
        Ok(MultiscaleStore {
            root: root.to_path_buf(),
            meta,
        })
    }

    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    pub fn n_levels(&self) -> usize {
        self.meta.levels.len()
    }

    /// Read back an entire level as a volume, validating every chunk
    /// checksum.
    pub fn read_level(&self, level: usize) -> Result<Volume, StoreError> {
        let lm = self
            .meta
            .levels
            .get(level)
            .ok_or_else(|| StoreError::Meta(format!("no level {level}")))?;
        let [nz, ny, nx] = lm.shape;
        let chunk = lm.chunk;
        let mut vol = Volume::zeros(nx, ny, nz);
        let grid = chunk_grid(lm.shape, chunk);
        for cz in 0..grid[0] {
            for cy in 0..grid[1] {
                for cx in 0..grid[2] {
                    let path = self.chunk_path(level, cz, cy, cx);
                    let mut buf = Vec::new();
                    std::fs::File::open(&path)?.read_to_end(&mut buf)?;
                    if buf.len() < 4 {
                        return Err(StoreError::Corrupt(format!("{path:?} truncated")));
                    }
                    let stored = u32::from_le_bytes(buf[..4].try_into().unwrap());
                    let payload = &buf[4..];
                    if crc32(payload) != stored {
                        return Err(StoreError::Corrupt(format!("{path:?} checksum mismatch")));
                    }
                    let vals: Vec<f32> = payload
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    scatter_chunk(&mut vol, lm, (cz, cy, cx), &vals)?;
                }
            }
        }
        Ok(vol)
    }

    /// Total bytes across all chunk files (payloads + checksums).
    pub fn disk_bytes(&self) -> u64 {
        fn walk(dir: &Path) -> u64 {
            std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .map(|e| {
                            let p = e.path();
                            if p.is_dir() {
                                walk(&p)
                            } else {
                                e.metadata().map(|m| m.len()).unwrap_or(0)
                            }
                        })
                        .sum()
                })
                .unwrap_or(0)
        }
        walk(&self.root)
    }

    fn chunk_path(&self, level: usize, cz: usize, cy: usize, cx: usize) -> PathBuf {
        self.root
            .join(format!("L{level}"))
            .join(format!("{cz}.{cy}.{cx}"))
    }
}

fn write_level(
    root: &Path,
    level: usize,
    vol: &Volume,
    chunk: [usize; 3],
) -> Result<(), StoreError> {
    let dir = root.join(format!("L{level}"));
    std::fs::create_dir_all(&dir)?;
    let shape = [vol.nz, vol.ny, vol.nx];
    let grid = chunk_grid(shape, chunk);
    for cz in 0..grid[0] {
        for cy in 0..grid[1] {
            for cx in 0..grid[2] {
                let mut payload: Vec<u8> = Vec::new();
                let z0 = cz * chunk[0];
                let y0 = cy * chunk[1];
                let x0 = cx * chunk[2];
                for dz in 0..chunk[0].min(shape[0] - z0) {
                    for dy in 0..chunk[1].min(shape[1] - y0) {
                        for dx in 0..chunk[2].min(shape[2] - x0) {
                            payload.extend_from_slice(
                                &vol.get(x0 + dx, y0 + dy, z0 + dz).to_le_bytes(),
                            );
                        }
                    }
                }
                let mut f = std::fs::File::create(dir.join(format!("{cz}.{cy}.{cx}")))?;
                f.write_all(&crc32(&payload).to_le_bytes())?;
                f.write_all(&payload)?;
            }
        }
    }
    Ok(())
}

fn scatter_chunk(
    vol: &mut Volume,
    lm: &LevelMeta,
    (cz, cy, cx): (usize, usize, usize),
    vals: &[f32],
) -> Result<(), StoreError> {
    let [nz, ny, nx] = lm.shape;
    let chunk = lm.chunk;
    let z0 = cz * chunk[0];
    let y0 = cy * chunk[1];
    let x0 = cx * chunk[2];
    let lz = chunk[0].min(nz - z0);
    let ly = chunk[1].min(ny - y0);
    let lx = chunk[2].min(nx - x0);
    if vals.len() != lz * ly * lx {
        return Err(StoreError::Corrupt(format!(
            "chunk ({cz},{cy},{cx}) has {} values, expected {}",
            vals.len(),
            lz * ly * lx
        )));
    }
    let mut i = 0;
    for dz in 0..lz {
        for dy in 0..ly {
            for dx in 0..lx {
                vol.set(x0 + dx, y0 + dy, z0 + dz, vals[i]);
                i += 1;
            }
        }
    }
    Ok(())
}

/// Halve every axis with 2×2×2 box averaging. Output slices are
/// independent, so the work is parallelized over output z (each voxel's
/// accumulation order is unchanged — results are identical at any
/// thread count).
pub fn downsample2(vol: &Volume) -> Volume {
    use rayon::prelude::*;
    let nx = (vol.nx / 2).max(1);
    let ny = (vol.ny / 2).max(1);
    let nz = (vol.nz / 2).max(1);
    let mut out = Volume::zeros(nx, ny, nz);
    out.data
        .par_chunks_mut(nx * ny)
        .enumerate()
        .for_each(|(z, slice)| {
            for y in 0..ny {
                for x in 0..nx {
                    let mut acc = 0.0f64;
                    let mut cnt = 0u32;
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let sx = x * 2 + dx;
                                let sy = y * 2 + dy;
                                let sz = z * 2 + dz;
                                if sx < vol.nx && sy < vol.ny && sz < vol.nz {
                                    acc += vol.get(sx, sy, sz) as f64;
                                    cnt += 1;
                                }
                            }
                        }
                    }
                    slice[y * nx + x] = (acc / cnt.max(1) as f64) as f32;
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_volume() -> Volume {
        let mut vol = Volume::zeros(20, 18, 10);
        for z in 0..10 {
            for y in 0..18 {
                for x in 0..20 {
                    vol.set(x, y, z, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
        vol
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mzarr_{name}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn level0_roundtrips_exactly() {
        let dir = tmpdir("roundtrip");
        let vol = test_volume();
        let store = MultiscaleStore::create(&dir, "test", &vol, [4, 8, 8], 3).unwrap();
        let back = store.read_level(0).unwrap();
        assert_eq!(back, vol);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pyramid_shapes_halve() {
        let dir = tmpdir("shapes");
        let vol = test_volume();
        let store = MultiscaleStore::create(&dir, "test", &vol, [4, 4, 4], 3).unwrap();
        assert_eq!(store.meta().levels[0].shape, [10, 18, 20]);
        assert_eq!(store.meta().levels[1].shape, [5, 9, 10]);
        assert_eq!(store.meta().levels[2].shape, [2, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sees_created_metadata() {
        let dir = tmpdir("open");
        let vol = test_volume();
        let created = MultiscaleStore::create(&dir, "scan42", &vol, [4, 8, 8], 2).unwrap();
        let opened = MultiscaleStore::open(&dir).unwrap();
        assert_eq!(opened.meta(), created.meta());
        assert_eq!(opened.meta().name, "scan42");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn downsample_preserves_mean() {
        let vol = test_volume();
        let ds = downsample2(&vol);
        let mean_full: f64 =
            vol.data.iter().map(|&v| v as f64).sum::<f64>() / vol.data.len() as f64;
        let mean_ds: f64 = ds.data.iter().map(|&v| v as f64).sum::<f64>() / ds.data.len() as f64;
        assert!((mean_full - mean_ds).abs() / mean_full < 0.05);
    }

    #[test]
    fn chunk_corruption_detected_on_read() {
        let dir = tmpdir("corrupt");
        let vol = test_volume();
        let store = MultiscaleStore::create(&dir, "t", &vol, [4, 8, 8], 1).unwrap();
        // tamper with one chunk payload byte
        let victim = dir.join("L0").join("0.0.0");
        let mut bytes = std::fs::read(&victim).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&victim, bytes).unwrap();
        match store.read_level(0) {
            Err(StoreError::Corrupt(m)) => assert!(m.contains("checksum"), "{m}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_usage_shrinks_per_level() {
        let dir = tmpdir("usage");
        let vol = test_volume();
        MultiscaleStore::create(&dir, "t", &vol, [4, 8, 8], 2).unwrap();
        let l0: u64 = walkdir_size(&dir.join("L0"));
        let l1: u64 = walkdir_size(&dir.join("L1"));
        assert!(l1 < l0 / 4, "L1 {l1} should be ~1/8 of L0 {l0}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn walkdir_size(dir: &Path) -> u64 {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.metadata().unwrap().len())
            .sum()
    }

    #[test]
    fn missing_store_fails_to_open() {
        assert!(MultiscaleStore::open(Path::new("/nonexistent/store")).is_err());
    }
}
