//! SDF — a small hierarchical scientific container (HDF5 substitute).
//!
//! Groups form a tree addressed with `/`-separated paths; each group holds
//! attributes and child groups/datasets; datasets are typed n-dimensional
//! arrays. The binary encoding is little-endian with length-prefixed
//! strings and a CRC-32 per dataset payload, so corruption is detected on
//! load — the property the transfer-verification experiments rely on.

use crate::checksum::crc32;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Errors from container operations.
#[derive(Debug)]
pub enum SdfError {
    /// Path does not exist.
    NotFound(String),
    /// Path exists but is the wrong kind (group vs dataset) or type.
    WrongType(String),
    /// Binary payload failed validation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::NotFound(p) => write!(f, "path not found: {p}"),
            SdfError::WrongType(p) => write!(f, "wrong node type at: {p}"),
            SdfError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            SdfError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SdfError {}

impl From<std::io::Error> for SdfError {
    fn from(e: std::io::Error) -> Self {
        SdfError::Io(e)
    }
}

/// A scalar attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    Str(String),
    Int(i64),
    Float(f64),
}

/// Typed dataset payload.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetData {
    U16(Vec<u16>),
    F32(Vec<f32>),
    F64(Vec<f64>),
    I64(Vec<i64>),
    Bytes(Vec<u8>),
}

impl DatasetData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            DatasetData::U16(v) => v.len(),
            DatasetData::F32(v) => v.len(),
            DatasetData::F64(v) => v.len(),
            DatasetData::I64(v) => v.len(),
            DatasetData::Bytes(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the payload.
    pub fn nbytes(&self) -> usize {
        match self {
            DatasetData::U16(v) => v.len() * 2,
            DatasetData::F32(v) => v.len() * 4,
            DatasetData::F64(v) => v.len() * 8,
            DatasetData::I64(v) => v.len() * 8,
            DatasetData::Bytes(v) => v.len(),
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            DatasetData::U16(_) => 0,
            DatasetData::F32(_) => 1,
            DatasetData::F64(_) => 2,
            DatasetData::I64(_) => 3,
            DatasetData::Bytes(_) => 4,
        }
    }

    fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            DatasetData::U16(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DatasetData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DatasetData::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DatasetData::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            DatasetData::Bytes(v) => v.clone(),
        }
    }

    fn from_le_bytes(tag: u8, bytes: &[u8]) -> Result<DatasetData, SdfError> {
        let chunked = |n: usize| -> Result<(), SdfError> {
            if bytes.len() % n != 0 {
                Err(SdfError::Corrupt(format!(
                    "payload length {} not a multiple of {n}",
                    bytes.len()
                )))
            } else {
                Ok(())
            }
        };
        Ok(match tag {
            0 => {
                chunked(2)?;
                DatasetData::U16(
                    bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                )
            }
            1 => {
                chunked(4)?;
                DatasetData::F32(
                    bytes
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            }
            2 => {
                chunked(8)?;
                DatasetData::F64(
                    bytes
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            3 => {
                chunked(8)?;
                DatasetData::I64(
                    bytes
                        .chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            4 => DatasetData::Bytes(bytes.to_vec()),
            t => return Err(SdfError::Corrupt(format!("unknown dataset type tag {t}"))),
        })
    }
}

/// An n-dimensional typed array.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dimensions, outermost first.
    pub shape: Vec<usize>,
    pub data: DatasetData,
}

impl Dataset {
    /// Build with shape validation.
    pub fn new(shape: Vec<usize>, data: DatasetData) -> Result<Dataset, SdfError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(SdfError::Corrupt(format!(
                "shape {:?} implies {} elements, payload has {}",
                shape,
                expected,
                data.len()
            )));
        }
        Ok(Dataset { shape, data })
    }

    pub fn f32_1d(v: Vec<f32>) -> Dataset {
        Dataset {
            shape: vec![v.len()],
            data: DatasetData::F32(v),
        }
    }

    pub fn u16_3d(d0: usize, d1: usize, d2: usize, v: Vec<u16>) -> Result<Dataset, SdfError> {
        Dataset::new(vec![d0, d1, d2], DatasetData::U16(v))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Group(Group),
    Dataset(Dataset),
}

/// A group: attributes plus named children.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Group {
    pub attrs: BTreeMap<String, Attribute>,
    children: BTreeMap<String, Node>,
}

impl Group {
    /// Names of child groups and datasets, sorted.
    pub fn child_names(&self) -> Vec<&str> {
        self.children.keys().map(|s| s.as_str()).collect()
    }
}

/// An in-memory SDF container.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfFile {
    root: Group,
}

fn split_path(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

impl SdfFile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create all groups along `path` (like `mkdir -p`).
    pub fn create_group(&mut self, path: &str) -> Result<(), SdfError> {
        let mut cur = &mut self.root;
        for part in split_path(path) {
            let entry = cur
                .children
                .entry(part.to_string())
                .or_insert_with(|| Node::Group(Group::default()));
            match entry {
                Node::Group(g) => cur = g,
                Node::Dataset(_) => return Err(SdfError::WrongType(path.to_string())),
            }
        }
        Ok(())
    }

    fn group_mut(&mut self, path: &str) -> Result<&mut Group, SdfError> {
        let mut cur = &mut self.root;
        for part in split_path(path) {
            match cur.children.get_mut(part) {
                Some(Node::Group(g)) => cur = g,
                Some(Node::Dataset(_)) => return Err(SdfError::WrongType(path.to_string())),
                None => return Err(SdfError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Immutable group lookup. The empty path / `"/"` is the root.
    pub fn group(&self, path: &str) -> Result<&Group, SdfError> {
        let mut cur = &self.root;
        for part in split_path(path) {
            match cur.children.get(part) {
                Some(Node::Group(g)) => cur = g,
                Some(Node::Dataset(_)) => return Err(SdfError::WrongType(path.to_string())),
                None => return Err(SdfError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Write a dataset at `path`, creating parent groups as needed.
    /// Overwrites an existing dataset at the same path.
    pub fn write_dataset(&mut self, path: &str, ds: Dataset) -> Result<(), SdfError> {
        let parts = split_path(path);
        let (name, parents) = parts
            .split_last()
            .ok_or_else(|| SdfError::WrongType("empty dataset path".into()))?;
        let parent_path = parents.join("/");
        self.create_group(&parent_path)?;
        let parent = self.group_mut(&parent_path)?;
        if let Some(Node::Group(_)) = parent.children.get(*name) {
            return Err(SdfError::WrongType(path.to_string()));
        }
        parent.children.insert(name.to_string(), Node::Dataset(ds));
        Ok(())
    }

    /// Read a dataset.
    pub fn dataset(&self, path: &str) -> Result<&Dataset, SdfError> {
        let parts = split_path(path);
        let (name, parents) = parts
            .split_last()
            .ok_or_else(|| SdfError::NotFound(path.to_string()))?;
        let parent = self.group(&parents.join("/"))?;
        match parent.children.get(*name) {
            Some(Node::Dataset(d)) => Ok(d),
            Some(Node::Group(_)) => Err(SdfError::WrongType(path.to_string())),
            None => Err(SdfError::NotFound(path.to_string())),
        }
    }

    /// Set an attribute on a group (creating the group if needed).
    pub fn set_attr(&mut self, group: &str, name: &str, value: Attribute) -> Result<(), SdfError> {
        self.create_group(group)?;
        self.group_mut(group)?.attrs.insert(name.to_string(), value);
        Ok(())
    }

    /// Read an attribute.
    pub fn attr(&self, group: &str, name: &str) -> Result<&Attribute, SdfError> {
        self.group(group)?
            .attrs
            .get(name)
            .ok_or_else(|| SdfError::NotFound(format!("{group}@{name}")))
    }

    /// Walk the tree and return every dataset path, sorted.
    pub fn dataset_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(g: &Group, prefix: &str, out: &mut Vec<String>) {
            for (name, node) in &g.children {
                let p = format!("{prefix}/{name}");
                match node {
                    Node::Dataset(_) => out.push(p),
                    Node::Group(child) => walk(child, &p, out),
                }
            }
        }
        walk(&self.root, "", &mut out);
        out
    }

    /// Total payload bytes across all datasets.
    pub fn total_bytes(&self) -> u64 {
        fn walk(g: &Group) -> u64 {
            g.children
                .values()
                .map(|n| match n {
                    Node::Dataset(d) => d.data.nbytes() as u64,
                    Node::Group(child) => walk(child),
                })
                .sum()
        }
        walk(&self.root)
    }

    // ---- binary encoding ----

    const MAGIC: &'static [u8; 4] = b"SDF1";

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        encode_group(&self.root, &mut out);
        out
    }

    /// Deserialize, validating magic and per-dataset checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<SdfFile, SdfError> {
        if bytes.len() < 4 || &bytes[..4] != Self::MAGIC {
            return Err(SdfError::Corrupt("bad magic".into()));
        }
        let mut cursor = 4usize;
        let root = decode_group(bytes, &mut cursor)?;
        Ok(SdfFile { root })
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), SdfError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<SdfFile, SdfError> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        SdfFile::from_bytes(&buf)
    }
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_group(g: &Group, out: &mut Vec<u8>) {
    out.extend_from_slice(&(g.attrs.len() as u32).to_le_bytes());
    for (name, attr) in &g.attrs {
        put_str(name, out);
        match attr {
            Attribute::Str(s) => {
                out.push(0);
                put_str(s, out);
            }
            Attribute::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Attribute::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(g.children.len() as u32).to_le_bytes());
    for (name, node) in &g.children {
        put_str(name, out);
        match node {
            Node::Group(child) => {
                out.push(0);
                encode_group(child, out);
            }
            Node::Dataset(d) => {
                out.push(1);
                out.push(d.data.type_tag());
                out.extend_from_slice(&(d.shape.len() as u32).to_le_bytes());
                for &dim in &d.shape {
                    out.extend_from_slice(&(dim as u64).to_le_bytes());
                }
                let payload = d.data.to_le_bytes();
                out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                out.extend_from_slice(&crc32(&payload).to_le_bytes());
                out.extend_from_slice(&payload);
            }
        }
    }
}

fn take<'a>(bytes: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], SdfError> {
    if *cursor + n > bytes.len() {
        return Err(SdfError::Corrupt("unexpected end of data".into()));
    }
    let s = &bytes[*cursor..*cursor + n];
    *cursor += n;
    Ok(s)
}

fn get_u32(bytes: &[u8], cursor: &mut usize) -> Result<u32, SdfError> {
    Ok(u32::from_le_bytes(
        take(bytes, cursor, 4)?.try_into().unwrap(),
    ))
}

fn get_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, SdfError> {
    Ok(u64::from_le_bytes(
        take(bytes, cursor, 8)?.try_into().unwrap(),
    ))
}

fn get_str(bytes: &[u8], cursor: &mut usize) -> Result<String, SdfError> {
    let len = get_u32(bytes, cursor)? as usize;
    let s = take(bytes, cursor, len)?;
    String::from_utf8(s.to_vec()).map_err(|_| SdfError::Corrupt("invalid utf-8".into()))
}

fn decode_group(bytes: &[u8], cursor: &mut usize) -> Result<Group, SdfError> {
    let mut g = Group::default();
    let n_attrs = get_u32(bytes, cursor)?;
    for _ in 0..n_attrs {
        let name = get_str(bytes, cursor)?;
        let tag = take(bytes, cursor, 1)?[0];
        let attr = match tag {
            0 => Attribute::Str(get_str(bytes, cursor)?),
            1 => Attribute::Int(i64::from_le_bytes(
                take(bytes, cursor, 8)?.try_into().unwrap(),
            )),
            2 => Attribute::Float(f64::from_le_bytes(
                take(bytes, cursor, 8)?.try_into().unwrap(),
            )),
            t => return Err(SdfError::Corrupt(format!("unknown attr tag {t}"))),
        };
        g.attrs.insert(name, attr);
    }
    let n_children = get_u32(bytes, cursor)?;
    for _ in 0..n_children {
        let name = get_str(bytes, cursor)?;
        let tag = take(bytes, cursor, 1)?[0];
        let node = match tag {
            0 => Node::Group(decode_group(bytes, cursor)?),
            1 => {
                let type_tag = take(bytes, cursor, 1)?[0];
                let ndim = get_u32(bytes, cursor)? as usize;
                let mut shape = Vec::with_capacity(ndim);
                for _ in 0..ndim {
                    shape.push(get_u64(bytes, cursor)? as usize);
                }
                let payload_len = get_u64(bytes, cursor)? as usize;
                let stored_crc = get_u32(bytes, cursor)?;
                let payload = take(bytes, cursor, payload_len)?;
                if crc32(payload) != stored_crc {
                    return Err(SdfError::Corrupt(format!(
                        "checksum mismatch in dataset '{name}'"
                    )));
                }
                let data = DatasetData::from_le_bytes(type_tag, payload)?;
                Node::Dataset(Dataset::new(shape, data)?)
            }
            t => return Err(SdfError::Corrupt(format!("unknown node tag {t}"))),
        };
        g.children.insert(name, node);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> SdfFile {
        let mut f = SdfFile::new();
        f.create_group("/exchange").unwrap();
        f.set_attr("/exchange", "facility", Attribute::Str("ALS 8.3.2".into()))
            .unwrap();
        f.set_attr("/exchange", "n_angles", Attribute::Int(1969))
            .unwrap();
        f.set_attr("/exchange", "pixel_um", Attribute::Float(0.65))
            .unwrap();
        f.write_dataset(
            "/exchange/data",
            Dataset::u16_3d(2, 2, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]).unwrap(),
        )
        .unwrap();
        f.write_dataset("/process/angles", Dataset::f32_1d(vec![0.0, 0.5, 1.0]))
            .unwrap();
        f
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample_file();
        let bytes = f.to_bytes();
        let g = SdfFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("sdf_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.sdf");
        let f = sample_file();
        f.save(&path).unwrap();
        let g = SdfFile::load(&path).unwrap();
        assert_eq!(f, g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attrs_are_typed() {
        let f = sample_file();
        assert_eq!(
            f.attr("/exchange", "facility").unwrap(),
            &Attribute::Str("ALS 8.3.2".into())
        );
        assert_eq!(
            f.attr("/exchange", "n_angles").unwrap(),
            &Attribute::Int(1969)
        );
        assert!(f.attr("/exchange", "missing").is_err());
    }

    #[test]
    fn dataset_paths_are_sorted_and_complete() {
        let f = sample_file();
        assert_eq!(
            f.dataset_paths(),
            vec!["/exchange/data".to_string(), "/process/angles".to_string()]
        );
    }

    #[test]
    fn total_bytes_counts_payloads() {
        let f = sample_file();
        // 12 u16 = 24 bytes + 3 f32 = 12 bytes
        assert_eq!(f.total_bytes(), 36);
    }

    #[test]
    fn corruption_is_detected() {
        let f = sample_file();
        let mut bytes = f.to_bytes();
        // flip a byte near the end (inside a dataset payload)
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        match SdfFile::from_bytes(&bytes) {
            Err(SdfError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            SdfFile::from_bytes(b"NOPE"),
            Err(SdfError::Corrupt(_))
        ));
        assert!(matches!(
            SdfFile::from_bytes(b""),
            Err(SdfError::Corrupt(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        assert!(Dataset::new(vec![2, 3], DatasetData::F32(vec![0.0; 5])).is_err());
        assert!(Dataset::new(vec![2, 3], DatasetData::F32(vec![0.0; 6])).is_ok());
    }

    #[test]
    fn dataset_cannot_shadow_group() {
        let mut f = SdfFile::new();
        f.create_group("/a/b").unwrap();
        assert!(matches!(
            f.write_dataset("/a", Dataset::f32_1d(vec![1.0])),
            Err(SdfError::WrongType(_))
        ));
        // and a group cannot be created through a dataset
        f.write_dataset("/x", Dataset::f32_1d(vec![1.0])).unwrap();
        assert!(f.create_group("/x/y").is_err());
    }

    #[test]
    fn overwrite_replaces_dataset() {
        let mut f = SdfFile::new();
        f.write_dataset("/d", Dataset::f32_1d(vec![1.0])).unwrap();
        f.write_dataset("/d", Dataset::f32_1d(vec![2.0, 3.0]))
            .unwrap();
        assert_eq!(f.dataset("/d").unwrap().shape, vec![2]);
    }

    #[test]
    fn empty_container_roundtrips() {
        let f = SdfFile::new();
        assert_eq!(SdfFile::from_bytes(&f.to_bytes()).unwrap(), f);
        assert!(f.dataset_paths().is_empty());
        assert_eq!(f.total_bytes(), 0);
    }
}
