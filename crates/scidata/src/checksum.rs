//! CRC-32 (IEEE 802.3 polynomial) with a streaming interface.
//!
//! The paper enables "checksum verification to ensure data integrity when
//! moving files and folders between locations"; the transfer layer uses
//! these digests the way Globus uses MD5.

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the digest.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard CRC-32 check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let base = crc32(&data);
        for i in (0..data.len()).step_by(17) {
            let mut tampered = data.clone();
            tampered[i] ^= 0x01;
            assert_ne!(crc32(&tampered), base, "flip at byte {i} undetected");
        }
    }
}
