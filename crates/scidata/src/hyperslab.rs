//! Hyperslab (sub-array) reads over SDF datasets.
//!
//! HDF5 consumers rarely read whole datasets: the streaming service pulls
//! single frames, JupyterLab users pull slice ranges, previews pull one
//! row. This module provides the equivalent strided sub-array reads for
//! SDF datasets without copying the full payload first.

use crate::container::{Dataset, DatasetData, SdfError};

/// A rectangular selection: per-dimension `start` and `count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyperslab {
    pub start: Vec<usize>,
    pub count: Vec<usize>,
}

impl Hyperslab {
    /// Select everything in `shape`.
    pub fn all(shape: &[usize]) -> Hyperslab {
        Hyperslab {
            start: vec![0; shape.len()],
            count: shape.to_vec(),
        }
    }

    /// Select one index along the first (outermost) dimension, everything
    /// in the rest — e.g. one frame of `/exchange/data`.
    pub fn index0(shape: &[usize], idx: usize) -> Hyperslab {
        let mut start = vec![0; shape.len()];
        let mut count = shape.to_vec();
        start[0] = idx;
        count[0] = 1;
        Hyperslab { start, count }
    }

    /// Validate against a dataset shape.
    pub fn validate(&self, shape: &[usize]) -> Result<(), SdfError> {
        if self.start.len() != shape.len() || self.count.len() != shape.len() {
            return Err(SdfError::Corrupt(format!(
                "hyperslab rank {} does not match dataset rank {}",
                self.start.len(),
                shape.len()
            )));
        }
        for (d, ((&s, &c), &dim)) in self
            .start
            .iter()
            .zip(self.count.iter())
            .zip(shape.iter())
            .enumerate()
        {
            if c == 0 || s + c > dim {
                return Err(SdfError::Corrupt(format!(
                    "hyperslab [{s}, {}) out of bounds for dim {d} of size {dim}",
                    s + c
                )));
            }
        }
        Ok(())
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.count.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Gather the flat element indices selected by a hyperslab, in row-major
/// order of the selection.
fn gather_indices(shape: &[usize], slab: &Hyperslab, out: &mut Vec<usize>) {
    // row-major strides
    let mut strides = vec![1usize; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    let rank = shape.len();
    let mut idx = slab.start.clone();
    loop {
        let flat: usize = idx.iter().zip(strides.iter()).map(|(&i, &s)| i * s).sum();
        out.push(flat);
        // odometer increment over the selection
        let mut d = rank;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < slab.start[d] + slab.count[d] {
                break;
            }
            idx[d] = slab.start[d];
            if d == 0 {
                return;
            }
        }
    }
}

/// Read a hyperslab of an f32 dataset.
pub fn read_f32(ds: &Dataset, slab: &Hyperslab) -> Result<Vec<f32>, SdfError> {
    slab.validate(&ds.shape)?;
    let DatasetData::F32(data) = &ds.data else {
        return Err(SdfError::WrongType("expected f32 dataset".into()));
    };
    let mut idxs = Vec::with_capacity(slab.len());
    gather_indices(&ds.shape, slab, &mut idxs);
    Ok(idxs.into_iter().map(|i| data[i]).collect())
}

/// Read a hyperslab of a u16 dataset (e.g. one frame of raw projections).
pub fn read_u16(ds: &Dataset, slab: &Hyperslab) -> Result<Vec<u16>, SdfError> {
    slab.validate(&ds.shape)?;
    let DatasetData::U16(data) = &ds.data else {
        return Err(SdfError::WrongType("expected u16 dataset".into()));
    };
    let mut idxs = Vec::with_capacity(slab.len());
    gather_indices(&ds.shape, slab, &mut idxs);
    Ok(idxs.into_iter().map(|i| data[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Dataset;

    fn dataset_3d() -> Dataset {
        // shape [2, 3, 4], values 0..24
        Dataset::new(vec![2, 3, 4], DatasetData::U16((0..24).collect())).unwrap()
    }

    #[test]
    fn full_selection_reads_everything() {
        let ds = dataset_3d();
        let slab = Hyperslab::all(&ds.shape);
        let v = read_u16(&ds, &slab).unwrap();
        assert_eq!(v, (0..24).collect::<Vec<u16>>());
    }

    #[test]
    fn single_frame_selection() {
        let ds = dataset_3d();
        let slab = Hyperslab::index0(&ds.shape, 1);
        let v = read_u16(&ds, &slab).unwrap();
        assert_eq!(v, (12..24).collect::<Vec<u16>>());
    }

    #[test]
    fn interior_block() {
        let ds = dataset_3d();
        // rows 1..3 of frame 0, columns 1..3
        let slab = Hyperslab {
            start: vec![0, 1, 1],
            count: vec![1, 2, 2],
        };
        let v = read_u16(&ds, &slab).unwrap();
        // frame 0 layout: row r = 4r..4r+4; rows 1,2 cols 1,2 = 5,6,9,10
        assert_eq!(v, vec![5, 6, 9, 10]);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let ds = dataset_3d();
        let slab = Hyperslab {
            start: vec![0, 2, 0],
            count: vec![1, 2, 4], // rows 2..4 of a 3-row dim
        };
        assert!(read_u16(&ds, &slab).is_err());
        let wrong_rank = Hyperslab {
            start: vec![0, 0],
            count: vec![1, 1],
        };
        assert!(read_u16(&ds, &wrong_rank).is_err());
        let zero = Hyperslab {
            start: vec![0, 0, 0],
            count: vec![1, 0, 1],
        };
        assert!(read_u16(&ds, &zero).is_err());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let ds = dataset_3d();
        let slab = Hyperslab::all(&ds.shape);
        assert!(read_f32(&ds, &slab).is_err());
    }

    #[test]
    fn f32_selection_works() {
        let ds = Dataset::new(vec![2, 2], DatasetData::F32(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
        let slab = Hyperslab {
            start: vec![1, 0],
            count: vec![1, 2],
        };
        assert_eq!(read_f32(&ds, &slab).unwrap(), vec![3.0, 4.0]);
    }
}
