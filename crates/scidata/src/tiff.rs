//! Minimal little-endian TIFF writer/reader for reconstructed slices.
//!
//! The file-based flows publish "a stack of TIFF images" per scan; this
//! module writes spec-conforming single-strip grayscale TIFFs (32-bit
//! float, sample format IEEE FP) plus a reader that round-trips the files
//! it writes — enough for ImageJ-class consumption of the slice stacks.

use als_tomo::Image;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Errors from TIFF I/O.
#[derive(Debug)]
pub enum TiffError {
    Io(std::io::Error),
    Malformed(String),
    Unsupported(String),
}

impl std::fmt::Display for TiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiffError::Io(e) => write!(f, "io: {e}"),
            TiffError::Malformed(m) => write!(f, "malformed tiff: {m}"),
            TiffError::Unsupported(m) => write!(f, "unsupported tiff feature: {m}"),
        }
    }
}

impl std::error::Error for TiffError {}

impl From<std::io::Error> for TiffError {
    fn from(e: std::io::Error) -> Self {
        TiffError::Io(e)
    }
}

// TIFF tag ids
const TAG_WIDTH: u16 = 256;
const TAG_HEIGHT: u16 = 257;
const TAG_BITS_PER_SAMPLE: u16 = 258;
const TAG_COMPRESSION: u16 = 259;
const TAG_PHOTOMETRIC: u16 = 262;
const TAG_STRIP_OFFSETS: u16 = 273;
const TAG_ROWS_PER_STRIP: u16 = 278;
const TAG_STRIP_BYTE_COUNTS: u16 = 279;
const TAG_SAMPLE_FORMAT: u16 = 339;

const TYPE_SHORT: u16 = 3;
const TYPE_LONG: u16 = 4;

struct IfdEntry {
    tag: u16,
    typ: u16,
    count: u32,
    value: u32,
}

/// Encode an image as a 32-bit float grayscale TIFF.
pub fn encode_f32(img: &Image) -> Vec<u8> {
    let pixel_bytes: Vec<u8> = img.data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let n_entries: u16 = 9;
    // layout: 8-byte header | pixel data | IFD
    let data_offset = 8u32;
    let ifd_offset = data_offset + pixel_bytes.len() as u32;

    let entries = [
        IfdEntry {
            tag: TAG_WIDTH,
            typ: TYPE_LONG,
            count: 1,
            value: img.width as u32,
        },
        IfdEntry {
            tag: TAG_HEIGHT,
            typ: TYPE_LONG,
            count: 1,
            value: img.height as u32,
        },
        IfdEntry {
            tag: TAG_BITS_PER_SAMPLE,
            typ: TYPE_SHORT,
            count: 1,
            value: 32,
        },
        IfdEntry {
            tag: TAG_COMPRESSION,
            typ: TYPE_SHORT,
            count: 1,
            value: 1,
        }, // none
        IfdEntry {
            tag: TAG_PHOTOMETRIC,
            typ: TYPE_SHORT,
            count: 1,
            value: 1,
        }, // min-is-black
        IfdEntry {
            tag: TAG_STRIP_OFFSETS,
            typ: TYPE_LONG,
            count: 1,
            value: data_offset,
        },
        IfdEntry {
            tag: TAG_ROWS_PER_STRIP,
            typ: TYPE_LONG,
            count: 1,
            value: img.height as u32,
        },
        IfdEntry {
            tag: TAG_STRIP_BYTE_COUNTS,
            typ: TYPE_LONG,
            count: 1,
            value: pixel_bytes.len() as u32,
        },
        IfdEntry {
            tag: TAG_SAMPLE_FORMAT,
            typ: TYPE_SHORT,
            count: 1,
            value: 3,
        }, // IEEE float
    ];

    let mut out = Vec::with_capacity(8 + pixel_bytes.len() + 2 + 12 * n_entries as usize + 4);
    // header: II, magic 42, offset of first IFD
    out.extend_from_slice(b"II");
    out.extend_from_slice(&42u16.to_le_bytes());
    out.extend_from_slice(&ifd_offset.to_le_bytes());
    out.extend_from_slice(&pixel_bytes);
    // IFD
    out.extend_from_slice(&n_entries.to_le_bytes());
    for e in &entries {
        out.extend_from_slice(&e.tag.to_le_bytes());
        out.extend_from_slice(&e.typ.to_le_bytes());
        out.extend_from_slice(&e.count.to_le_bytes());
        // SHORT values are left-justified in the 4-byte field
        if e.typ == TYPE_SHORT {
            out.extend_from_slice(&(e.value as u16).to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
        } else {
            out.extend_from_slice(&e.value.to_le_bytes());
        }
    }
    out.extend_from_slice(&0u32.to_le_bytes()); // no next IFD
    out
}

/// Decode a TIFF produced by [`encode_f32`] (single strip, f32, LE).
pub fn decode_f32(bytes: &[u8]) -> Result<Image, TiffError> {
    if bytes.len() < 8 || &bytes[0..2] != b"II" {
        return Err(TiffError::Malformed("not a little-endian TIFF".into()));
    }
    let magic = u16::from_le_bytes([bytes[2], bytes[3]]);
    if magic != 42 {
        return Err(TiffError::Malformed(format!("bad magic {magic}")));
    }
    let ifd = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    if ifd + 2 > bytes.len() {
        return Err(TiffError::Malformed("IFD offset out of range".into()));
    }
    let n = u16::from_le_bytes([bytes[ifd], bytes[ifd + 1]]) as usize;
    let mut width = 0u32;
    let mut height = 0u32;
    let mut offset = 0u32;
    let mut count = 0u32;
    let mut bits = 0u32;
    let mut fmt = 1u32;
    for i in 0..n {
        let at = ifd + 2 + i * 12;
        if at + 12 > bytes.len() {
            return Err(TiffError::Malformed("truncated IFD".into()));
        }
        let tag = u16::from_le_bytes([bytes[at], bytes[at + 1]]);
        let typ = u16::from_le_bytes([bytes[at + 2], bytes[at + 3]]);
        let value = if typ == TYPE_SHORT {
            u16::from_le_bytes([bytes[at + 8], bytes[at + 9]]) as u32
        } else {
            u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap())
        };
        match tag {
            TAG_WIDTH => width = value,
            TAG_HEIGHT => height = value,
            TAG_STRIP_OFFSETS => offset = value,
            TAG_STRIP_BYTE_COUNTS => count = value,
            TAG_BITS_PER_SAMPLE => bits = value,
            TAG_SAMPLE_FORMAT => fmt = value,
            TAG_COMPRESSION if value != 1 => {
                return Err(TiffError::Unsupported("compressed tiff".into()))
            }
            _ => {}
        }
    }
    if bits != 32 || fmt != 3 {
        return Err(TiffError::Unsupported(format!(
            "only 32-bit float supported (bits={bits}, fmt={fmt})"
        )));
    }
    let expected = (width * height * 4) as usize;
    if count as usize != expected {
        return Err(TiffError::Malformed("strip byte count mismatch".into()));
    }
    let start = offset as usize;
    if start + expected > bytes.len() {
        return Err(TiffError::Malformed("pixel data out of range".into()));
    }
    let data: Vec<f32> = bytes[start..start + expected]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(Image::from_vec(width as usize, height as usize, data))
}

/// Write a stack of slices into `dir` as `slice_0000.tif`, ... Returns
/// the written paths.
pub fn write_stack(dir: &Path, slices: &[Image]) -> Result<Vec<PathBuf>, TiffError> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(slices.len());
    for (i, img) in slices.iter().enumerate() {
        let p = dir.join(format!("slice_{i:04}.tif"));
        let mut f = std::fs::File::create(&p)?;
        f.write_all(&encode_f32(img))?;
        paths.push(p);
    }
    Ok(paths)
}

/// Read back a stack written by [`write_stack`], in slice order.
pub fn read_stack(dir: &Path) -> Result<Vec<Image>, TiffError> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tif"))
        .collect();
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for p in names {
        let mut buf = Vec::new();
        std::fs::File::open(&p)?.read_to_end(&mut buf)?;
        out.push(decode_f32(&buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Image {
        let mut img = Image::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, (x * 10 + y) as f32 * 0.25 - 3.0);
            }
        }
        img
    }

    #[test]
    fn encode_decode_roundtrip() {
        let img = gradient(17, 9);
        let bytes = encode_f32(&img);
        let back = decode_f32(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_is_valid_tiff() {
        let bytes = encode_f32(&gradient(4, 4));
        assert_eq!(&bytes[0..2], b"II");
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 42);
    }

    #[test]
    fn negative_and_special_values_survive() {
        let mut img = Image::zeros(3, 1);
        img.data = vec![-1.5e-20, 0.0, 3.4e20];
        let back = decode_f32(&encode_f32(&img)).unwrap();
        assert_eq!(back.data, img.data);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_f32(b"").is_err());
        assert!(decode_f32(b"MM\x00\x2a").is_err());
        assert!(decode_f32(&[0u8; 64]).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = encode_f32(&gradient(8, 8));
        assert!(decode_f32(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn stack_roundtrip_preserves_order() {
        let dir = std::env::temp_dir().join("tiff_stack_test");
        std::fs::remove_dir_all(&dir).ok();
        let slices: Vec<Image> = (0..12)
            .map(|i| {
                let mut img = gradient(6, 6);
                img.set(0, 0, i as f32);
                img
            })
            .collect();
        let paths = write_stack(&dir, &slices).unwrap();
        assert_eq!(paths.len(), 12);
        assert!(paths[3]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("0003"));
        let back = read_stack(&dir).unwrap();
        assert_eq!(back, slices);
        std::fs::remove_dir_all(&dir).ok();
    }
}
