//! Archive adapters for the scan-to-archive pipeline
//! (`als_tomo::pipeline`): a [`ProjectionSource`] view over [`ScanFile`]
//! and streaming [`SliceSink`]s for the two archive products the
//! file-based branch publishes — the per-slice TIFF stack and the
//! multiscale chunked store.
//!
//! Both sinks consume z-ordered slabs incrementally on the pipeline's
//! I/O thread, so archive writes overlap reconstruction instead of
//! serializing after it, and both produce **byte-identical** output to
//! their batch counterparts (`tiff::write_stack`,
//! `MultiscaleStore::create`) — asserted by tests.

use crate::multiscale::{LevelMeta, StoreMeta};
use crate::scanfile::ScanFile;
use crate::{crc32, tiff};
use als_tomo::pipeline::{ProjectionSource, SliceSink};
use als_tomo::Image;
use std::io::Write;
use std::path::{Path, PathBuf};

impl ProjectionSource for ScanFile {
    fn dims(&self) -> (usize, usize, usize) {
        self.shape()
    }

    fn scan_angles(&self) -> Vec<f64> {
        self.angles()
    }

    fn dark_frame(&self) -> &[u16] {
        self.dark()
    }

    fn flat_frame(&self) -> &[u16] {
        self.flat()
    }

    fn frame(&self, a: usize) -> &[u16] {
        self.frame_data(a)
    }
}

/// Streams reconstructed slices into a TIFF stack directory, one
/// `slice_{z:04}.tif` per slice, byte-identical to
/// [`tiff::write_stack`] over the full volume.
#[derive(Debug)]
pub struct TiffStackSink {
    dir: PathBuf,
    nx: usize,
    ny: usize,
    written: usize,
}

impl TiffStackSink {
    pub fn new(dir: &Path) -> TiffStackSink {
        TiffStackSink {
            dir: dir.to_path_buf(),
            nx: 0,
            ny: 0,
            written: 0,
        }
    }

    pub fn slices_written(&self) -> usize {
        self.written
    }
}

impl SliceSink for TiffStackSink {
    fn begin(&mut self, nx: usize, ny: usize, _nz: usize) -> Result<(), String> {
        self.nx = nx;
        self.ny = ny;
        std::fs::create_dir_all(&self.dir).map_err(|e| e.to_string())
    }

    fn write_slab(&mut self, z0: usize, n_slices: usize, data: &[f32]) -> Result<(), String> {
        let px = self.nx * self.ny;
        if data.len() != n_slices * px {
            return Err(format!(
                "slab size {} != {n_slices} slices of {px}",
                data.len()
            ));
        }
        for i in 0..n_slices {
            let img = Image::from_vec(self.nx, self.ny, data[i * px..(i + 1) * px].to_vec());
            let path = self.dir.join(format!("slice_{:04}.tif", z0 + i));
            std::fs::write(&path, tiff::encode_f32(&img)).map_err(|e| e.to_string())?;
            self.written += 1;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// One pyramid level being streamed: slices arrive in z order, get
/// buffered until a full chunk-row (`chunk[0]` slices) can be written,
/// and are pairwise z-downsampled to feed the next level.
#[derive(Debug)]
struct LevelState {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Slices of this level accumulated toward the next chunk-row.
    buf: Vec<f32>,
    /// First z index held in `buf`.
    buf_z0: usize,
    /// An unpaired slice awaiting its partner for the next level's
    /// 2×2×2 box filter.
    pending: Option<Vec<f32>>,
}

/// Streams reconstructed slices into a multiscale chunked store,
/// producing byte-identical output (chunk files and `.mzarr.json`) to
/// `MultiscaleStore::create` over the assembled volume — without ever
/// holding more than a chunk-row per level in memory.
///
/// Downsampling happens incrementally: each pair of level-`L` slices is
/// box-filtered into one level-`L+1` slice with the same loop order and
/// f64 accumulation as the batch [`crate::multiscale::downsample2`], so
/// every level matches the batch pyramid bit-for-bit (an odd z tail is
/// dropped exactly like the batch path's `(nz / 2).max(1)` output
/// extent).
#[derive(Debug)]
pub struct MultiscaleWriter {
    root: PathBuf,
    name: String,
    chunk: [usize; 3],
    n_levels: usize,
    levels: Vec<LevelState>,
}

impl MultiscaleWriter {
    pub fn new(root: &Path, name: &str, chunk: [usize; 3], n_levels: usize) -> MultiscaleWriter {
        assert!(n_levels >= 1, "need at least one level");
        assert!(chunk.iter().all(|&c| c > 0), "chunk dims must be nonzero");
        MultiscaleWriter {
            root: root.to_path_buf(),
            name: name.to_string(),
            chunk,
            n_levels,
            levels: Vec::new(),
        }
    }

    fn push_slice(&mut self, level: usize, slice: Vec<f32>) -> Result<(), String> {
        let (nx, ny, nz) = {
            let ls = &self.levels[level];
            (ls.nx, ls.ny, ls.nz)
        };
        // feed the next level before moving `slice` into the buffer
        if level + 1 < self.n_levels {
            if nz == 1 {
                // single-slice level: the batch path still emits one
                // output slice, filtered over the lone z plane
                let ds = downsample_slice_pair(&slice, None, nx, ny);
                self.push_slice(level + 1, ds)?;
            } else if let Some(prev) = self.levels[level].pending.take() {
                let ds = downsample_slice_pair(&prev, Some(&slice), nx, ny);
                self.push_slice(level + 1, ds)?;
            } else {
                self.levels[level].pending = Some(slice.clone());
            }
        }
        let ls = &mut self.levels[level];
        ls.buf.extend_from_slice(&slice);
        let buffered = ls.buf.len() / (nx * ny);
        let row_len = self.chunk[0].min(nz - ls.buf_z0);
        if buffered == row_len {
            self.flush_chunk_row(level)?;
        }
        Ok(())
    }

    /// Write every `(cy, cx)` chunk of the current chunk-row and clear
    /// the buffer. Payload layout matches the batch writer: z-major
    /// within the chunk, CRC-32 prefix.
    fn flush_chunk_row(&mut self, level: usize) -> Result<(), String> {
        let ls = &mut self.levels[level];
        let (nx, ny) = (ls.nx, ls.ny);
        let lz = ls.buf.len() / (nx * ny);
        if lz == 0 {
            return Ok(());
        }
        let cz = ls.buf_z0 / self.chunk[0];
        let dir = self.root.join(format!("L{level}"));
        let grid_y = ny.div_ceil(self.chunk[1]);
        let grid_x = nx.div_ceil(self.chunk[2]);
        for cy in 0..grid_y {
            let y0 = cy * self.chunk[1];
            let ly = self.chunk[1].min(ny - y0);
            for cx in 0..grid_x {
                let x0 = cx * self.chunk[2];
                let lx = self.chunk[2].min(nx - x0);
                let mut payload: Vec<u8> = Vec::with_capacity(lz * ly * lx * 4);
                for dz in 0..lz {
                    for dy in 0..ly {
                        for dx in 0..lx {
                            let v = ls.buf[(dz * ny + y0 + dy) * nx + x0 + dx];
                            payload.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                let mut f = std::fs::File::create(dir.join(format!("{cz}.{cy}.{cx}")))
                    .map_err(|e| e.to_string())?;
                f.write_all(&crc32(&payload).to_le_bytes())
                    .map_err(|e| e.to_string())?;
                f.write_all(&payload).map_err(|e| e.to_string())?;
            }
        }
        ls.buf_z0 += lz;
        ls.buf.clear();
        Ok(())
    }
}

/// Box-filter one output slice of the next pyramid level from a pair of
/// source slices (`b = None` for a single-slice level), replicating
/// `downsample2`'s exact per-voxel loop order and f64 accumulation.
fn downsample_slice_pair(a: &[f32], b: Option<&[f32]>, nx: usize, ny: usize) -> Vec<f32> {
    let onx = (nx / 2).max(1);
    let ony = (ny / 2).max(1);
    let mut out = vec![0.0f32; onx * ony];
    for y in 0..ony {
        for x in 0..onx {
            let mut acc = 0.0f64;
            let mut cnt = 0u32;
            for dz in 0..2usize {
                let src = match dz {
                    0 => a,
                    _ => match b {
                        Some(s) => s,
                        None => continue,
                    },
                };
                for dy in 0..2 {
                    let sy = y * 2 + dy;
                    if sy >= ny {
                        continue;
                    }
                    for dx in 0..2 {
                        let sx = x * 2 + dx;
                        if sx >= nx {
                            continue;
                        }
                        acc += src[sy * nx + sx] as f64;
                        cnt += 1;
                    }
                }
            }
            out[y * onx + x] = (acc / cnt.max(1) as f64) as f32;
        }
    }
    out
}

impl SliceSink for MultiscaleWriter {
    fn begin(&mut self, nx: usize, ny: usize, nz: usize) -> Result<(), String> {
        let (mut lx, mut ly, mut lz) = (nx, ny, nz);
        self.levels.clear();
        for level in 0..self.n_levels {
            std::fs::create_dir_all(self.root.join(format!("L{level}")))
                .map_err(|e| e.to_string())?;
            self.levels.push(LevelState {
                nx: lx,
                ny: ly,
                nz: lz,
                buf: Vec::new(),
                buf_z0: 0,
                pending: None,
            });
            lx = (lx / 2).max(1);
            ly = (ly / 2).max(1);
            lz = (lz / 2).max(1);
        }
        Ok(())
    }

    fn write_slab(&mut self, _z0: usize, n_slices: usize, data: &[f32]) -> Result<(), String> {
        let px = self.levels[0].nx * self.levels[0].ny;
        if data.len() != n_slices * px {
            return Err(format!(
                "slab size {} != {n_slices} slices of {px}",
                data.len()
            ));
        }
        for i in 0..n_slices {
            self.push_slice(0, data[i * px..(i + 1) * px].to_vec())?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), String> {
        // flush partial chunk-rows (odd unpaired slices are dropped,
        // matching the batch pyramid's floor-halved z extents)
        for level in 0..self.n_levels {
            self.flush_chunk_row(level)?;
        }
        let meta = StoreMeta {
            name: self.name.clone(),
            dtype: "f32".into(),
            levels: self
                .levels
                .iter()
                .map(|ls| LevelMeta {
                    shape: [ls.nz, ls.ny, ls.nx],
                    chunk: self.chunk,
                })
                .collect(),
        };
        let meta_json = serde_json::to_string_pretty(&meta).map_err(|e| e.to_string())?;
        std::fs::write(self.root.join(".mzarr.json"), meta_json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiscale::MultiscaleStore;
    use als_tomo::Volume;

    fn test_volume(nx: usize, ny: usize, nz: usize) -> Volume {
        let mut vol = Volume::zeros(nx, ny, nz);
        for (i, v) in vol.data.iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin() * 100.0;
        }
        vol
    }

    fn drive_sink(sink: &mut dyn SliceSink, vol: &Volume, slab: usize) {
        sink.begin(vol.nx, vol.ny, vol.nz).unwrap();
        let px = vol.nx * vol.ny;
        let mut z = 0;
        while z < vol.nz {
            let k = slab.min(vol.nz - z);
            sink.write_slab(z, k, &vol.data[z * px..(z + k) * px])
                .unwrap();
            z += k;
        }
        sink.finish().unwrap();
    }

    fn tree_bytes(dir: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
        fn walk(dir: &Path, base: &Path, out: &mut std::collections::BTreeMap<String, Vec<u8>>) {
            for e in std::fs::read_dir(dir).unwrap().filter_map(|e| e.ok()) {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, base, out);
                } else {
                    let rel = p.strip_prefix(base).unwrap().to_string_lossy().into_owned();
                    out.insert(rel, std::fs::read(&p).unwrap());
                }
            }
        }
        let mut out = std::collections::BTreeMap::new();
        walk(dir, dir, &mut out);
        out
    }

    #[test]
    fn tiff_sink_matches_batch_write_stack() {
        let vol = test_volume(20, 20, 7);
        let base = std::env::temp_dir().join("tiff_sink_eq");
        std::fs::remove_dir_all(&base).ok();
        let batch_dir = base.join("batch");
        let sink_dir = base.join("sink");
        let slices: Vec<Image> = (0..vol.nz).map(|z| vol.slice_xy(z)).collect();
        tiff::write_stack(&batch_dir, &slices).unwrap();
        let mut sink = TiffStackSink::new(&sink_dir);
        drive_sink(&mut sink, &vol, 3);
        assert_eq!(sink.slices_written(), 7);
        assert_eq!(tree_bytes(&batch_dir), tree_bytes(&sink_dir));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn multiscale_writer_matches_batch_create() {
        // exercises uneven chunk tails and both odd and even z extents
        for (nx, ny, nz, chunk, levels, slab) in [
            (20, 18, 10, [4, 8, 8], 3, 4),
            (16, 16, 9, [4, 4, 4], 3, 2),
            (12, 12, 1, [2, 8, 8], 2, 1),
            (10, 14, 6, [3, 5, 5], 2, 5),
        ] {
            let vol = test_volume(nx, ny, nz);
            let base = std::env::temp_dir().join(format!("mzarr_sink_eq_{nx}_{ny}_{nz}"));
            std::fs::remove_dir_all(&base).ok();
            let batch_dir = base.join("batch");
            let sink_dir = base.join("sink");
            MultiscaleStore::create(&batch_dir, "scan", &vol, chunk, levels).unwrap();
            let mut sink = MultiscaleWriter::new(&sink_dir, "scan", chunk, levels);
            drive_sink(&mut sink, &vol, slab);
            assert_eq!(
                tree_bytes(&batch_dir),
                tree_bytes(&sink_dir),
                "{nx}x{ny}x{nz} chunk {chunk:?} levels {levels} slab {slab}"
            );
            // and the streamed store opens + round-trips through the reader
            let store = MultiscaleStore::open(&sink_dir).unwrap();
            assert_eq!(store.read_level(0).unwrap(), vol);
            std::fs::remove_dir_all(&base).ok();
        }
    }
}
