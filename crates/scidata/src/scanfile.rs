//! The beamline scan file: raw projections, reference fields, and
//! acquisition metadata in the DataExchange-style layout ALS 8.3.2 writes
//! (`/exchange/data`, `/exchange/data_white`, `/exchange/data_dark`).

use crate::container::{Attribute, Dataset, DatasetData, SdfError, SdfFile};
use als_phantom::Frame;

/// A typed wrapper over an [`SdfFile`] holding one complete acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanFile {
    inner: SdfFile,
}

impl ScanFile {
    /// Assemble a scan file from acquired frames and reference fields.
    ///
    /// `frames` must all share the same shape and be in acquisition order;
    /// `dark`/`flat` are `rows × cols` reference images.
    pub fn from_frames(
        scan_name: &str,
        frames: &[Frame],
        dark: &[u16],
        flat: &[u16],
        angles: &[f64],
    ) -> Result<ScanFile, SdfError> {
        if frames.is_empty() {
            return Err(SdfError::Corrupt("scan has no frames".into()));
        }
        let rows = frames[0].meta.rows;
        let cols = frames[0].meta.cols;
        for f in frames {
            if f.meta.rows != rows || f.meta.cols != cols {
                return Err(SdfError::Corrupt("inconsistent frame shapes".into()));
            }
        }
        if angles.len() != frames.len() {
            return Err(SdfError::Corrupt(format!(
                "{} angles for {} frames",
                angles.len(),
                frames.len()
            )));
        }
        let mut data = Vec::with_capacity(frames.len() * rows * cols);
        for f in frames {
            data.extend_from_slice(&f.data);
        }
        Self::from_raw_parts(
            scan_name,
            frames.len(),
            rows,
            cols,
            data,
            dark,
            flat,
            angles,
        )
    }

    /// Assemble a scan file from an already-contiguous projection stack.
    ///
    /// This is the zero-copy streaming path: the file writer appends each
    /// validated frame's pixels into one growing buffer as they arrive and
    /// hands the buffer over here by value — no per-frame `Frame` clones
    /// and no second whole-scan copy at completion time.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        scan_name: &str,
        n_frames: usize,
        rows: usize,
        cols: usize,
        data: Vec<u16>,
        dark: &[u16],
        flat: &[u16],
        angles: &[f64],
    ) -> Result<ScanFile, SdfError> {
        if n_frames == 0 {
            return Err(SdfError::Corrupt("scan has no frames".into()));
        }
        if data.len() != n_frames * rows * cols {
            return Err(SdfError::Corrupt(format!(
                "projection stack holds {} pixels, expected {}x{}x{}",
                data.len(),
                n_frames,
                rows,
                cols
            )));
        }
        if angles.len() != n_frames {
            return Err(SdfError::Corrupt(format!(
                "{} angles for {} frames",
                angles.len(),
                n_frames
            )));
        }
        let mut file = SdfFile::new();
        file.write_dataset(
            "/exchange/data",
            Dataset::new(vec![n_frames, rows, cols], DatasetData::U16(data))?,
        )?;
        file.write_dataset(
            "/exchange/data_dark",
            Dataset::new(vec![1, rows, cols], DatasetData::U16(dark.to_vec()))?,
        )?;
        file.write_dataset(
            "/exchange/data_white",
            Dataset::new(vec![1, rows, cols], DatasetData::U16(flat.to_vec()))?,
        )?;
        file.write_dataset(
            "/exchange/theta",
            Dataset::new(vec![angles.len()], DatasetData::F64(angles.to_vec()))?,
        )?;
        file.set_attr("/", "scan_name", Attribute::Str(scan_name.to_string()))?;
        file.set_attr("/", "beamline", Attribute::Str("8.3.2".into()))?;
        file.set_attr(
            "/process/acquisition",
            "n_angles",
            Attribute::Int(n_frames as i64),
        )?;
        file.set_attr("/process/acquisition", "rows", Attribute::Int(rows as i64))?;
        file.set_attr("/process/acquisition", "cols", Attribute::Int(cols as i64))?;
        Ok(ScanFile { inner: file })
    }

    /// Wrap an existing container, validating the layout.
    pub fn from_container(inner: SdfFile) -> Result<ScanFile, SdfError> {
        for required in [
            "/exchange/data",
            "/exchange/data_dark",
            "/exchange/data_white",
        ] {
            inner.dataset(required)?;
        }
        Ok(ScanFile { inner })
    }

    pub fn scan_name(&self) -> String {
        match self.inner.attr("/", "scan_name") {
            Ok(Attribute::Str(s)) => s.clone(),
            _ => "unnamed".to_string(),
        }
    }

    /// (n_angles, rows, cols).
    pub fn shape(&self) -> (usize, usize, usize) {
        let ds = self
            .inner
            .dataset("/exchange/data")
            .expect("validated layout");
        (ds.shape[0], ds.shape[1], ds.shape[2])
    }

    /// Raw projection counts for frame `a`, row-major `rows × cols`.
    pub fn frame_data(&self, a: usize) -> &[u16] {
        let ds = self
            .inner
            .dataset("/exchange/data")
            .expect("validated layout");
        let (n, rows, cols) = (ds.shape[0], ds.shape[1], ds.shape[2]);
        assert!(a < n, "frame index {a} out of range ({n})");
        match &ds.data {
            DatasetData::U16(v) => &v[a * rows * cols..(a + 1) * rows * cols],
            _ => unreachable!("exchange/data is always u16"),
        }
    }

    pub fn dark(&self) -> &[u16] {
        match &self.inner.dataset("/exchange/data_dark").unwrap().data {
            DatasetData::U16(v) => v,
            _ => unreachable!(),
        }
    }

    pub fn flat(&self) -> &[u16] {
        match &self.inner.dataset("/exchange/data_white").unwrap().data {
            DatasetData::U16(v) => v,
            _ => unreachable!(),
        }
    }

    pub fn angles(&self) -> Vec<f64> {
        match self.inner.dataset("/exchange/theta") {
            Ok(ds) => match &ds.data {
                DatasetData::F64(v) => v.clone(),
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        }
    }

    /// The raw payload size (what Globus would move).
    pub fn nbytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    pub fn container(&self) -> &SdfFile {
        &self.inner
    }

    pub fn into_container(self) -> SdfFile {
        self.inner
    }

    pub fn save(&self, path: &std::path::Path) -> Result<(), SdfError> {
        self.inner.save(path)
    }

    pub fn load(path: &std::path::Path) -> Result<ScanFile, SdfError> {
        ScanFile::from_container(SdfFile::load(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
    use als_tomo::Geometry;

    fn make_scan() -> (ScanFile, ScanSimulator) {
        let vol = shepp_logan_volume(32, 3);
        let geom = Geometry::parallel_180(12, 32);
        let mut sim = ScanSimulator::new(&vol, geom.clone(), DetectorConfig::default(), 5);
        let frames = sim.all_frames();
        let scan = ScanFile::from_frames(
            "20260704_120000_test",
            &frames,
            sim.dark_field(),
            sim.flat_field(),
            &geom.angles,
        )
        .unwrap();
        (scan, sim)
    }

    #[test]
    fn layout_matches_dataexchange() {
        let (scan, _) = make_scan();
        let paths = scan.container().dataset_paths();
        assert!(paths.contains(&"/exchange/data".to_string()));
        assert!(paths.contains(&"/exchange/data_dark".to_string()));
        assert!(paths.contains(&"/exchange/data_white".to_string()));
        assert!(paths.contains(&"/exchange/theta".to_string()));
        assert_eq!(scan.shape(), (12, 3, 32));
        assert_eq!(scan.scan_name(), "20260704_120000_test");
    }

    #[test]
    fn frame_data_matches_original_frames() {
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(6, 32);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom.clone(), cfg, 9);
        let frames = sim.all_frames();
        let scan = ScanFile::from_frames(
            "t",
            &frames,
            sim.dark_field(),
            sim.flat_field(),
            &geom.angles,
        )
        .unwrap();
        for (a, f) in frames.iter().enumerate() {
            assert_eq!(scan.frame_data(a), &f.data[..]);
        }
        assert_eq!(scan.angles(), geom.angles);
    }

    #[test]
    fn disk_roundtrip() {
        let (scan, _) = make_scan();
        let dir = std::env::temp_dir().join("scanfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.sdf");
        scan.save(&path).unwrap();
        let loaded = ScanFile::load(&path).unwrap();
        assert_eq!(loaded, scan);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        assert!(ScanFile::from_frames("x", &[], &[], &[], &[]).is_err());
        let (scan, sim) = make_scan();
        // wrong angle count
        let frames: Vec<Frame> = (0..scan.shape().0)
            .map(|a| Frame {
                meta: als_phantom::FrameMeta {
                    frame_id: a,
                    angle_rad: 0.0,
                    n_angles: scan.shape().0,
                    rows: 3,
                    cols: 32,
                },
                data: vec![0; 96],
            })
            .collect();
        assert!(
            ScanFile::from_frames("x", &frames, sim.dark_field(), sim.flat_field(), &[0.0])
                .is_err()
        );
    }

    #[test]
    fn from_container_validates_layout() {
        let empty = SdfFile::new();
        assert!(ScanFile::from_container(empty).is_err());
    }
}
