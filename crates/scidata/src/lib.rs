//! # als-scidata
//!
//! Scientific data containers for the beamline pipeline — the workspace's
//! substitute for the HDF5 / TIFF / Zarr stack the paper uses:
//!
//! * [`checksum`] — CRC-32 and streaming digests; Globus-style transfer
//!   verification is built on these;
//! * [`container`] — **SDF**, a hierarchical HDF5-like container (groups,
//!   typed datasets, attributes) with a compact binary encoding and
//!   per-dataset checksums;
//! * [`scanfile`] — the beamline scan layout inside an SDF container
//!   (`/exchange/data`, `/exchange/data_white`, `/exchange/data_dark`,
//!   acquisition metadata), mirroring the DataExchange HDF5 layout ALS
//!   writes;
//! * [`tiff`] — a minimal but spec-conforming little-endian TIFF writer
//!   for reconstructed slices (the paper's per-slice TIFF stacks);
//! * [`multiscale`] — a Zarr-like chunked multiscale volume store backed
//!   by a directory tree, powering the itk-vtk-viewer-style access layer;
//! * [`sink`] — streaming archive writers (TIFF stack, multiscale store)
//!   plus the `ProjectionSource` adapter that lets the scan-to-archive
//!   pipeline (`als_tomo::pipeline`) read a [`ScanFile`] directly.

pub mod checksum;
pub mod container;
pub mod hyperslab;
pub mod multiscale;
pub mod scanfile;
pub mod sink;
pub mod tiff;

pub use checksum::{crc32, Crc32};
pub use container::{Attribute, Dataset, DatasetData, Group, SdfError, SdfFile};
pub use hyperslab::{read_f32 as read_hyperslab_f32, read_u16 as read_hyperslab_u16, Hyperslab};
pub use multiscale::MultiscaleStore;
pub use scanfile::ScanFile;
pub use sink::{MultiscaleWriter, TiffStackSink};
