//! Equivalence of the plan-based engine against the retained pre-plan
//! reference kernels ([`als_tomo::reference`]).
//!
//! The plan engine changes the *arithmetic schedule* everywhere — packed
//! two-row real FFTs, table-driven twiddles, incremental backprojection
//! with hoisted bounds — but none of the math, so on the Shepp-Logan
//! phantom plan and reference reconstructions must agree to float
//! round-off (the acceptance bar is 1e-5 RMSE; measured drift is orders
//! of magnitude smaller). The clipped forward projector must be
//! *bit-identical*: the samples it skips are exact zeros.

use als_phantom::shepp_logan_2d;
use als_tomo::fft::{Complex, FftPlan};
use als_tomo::gridrec::{gridrec_slice, GridrecConfig};
use als_tomo::image::{Image, Sinogram};
use als_tomo::radon::forward_project;
use als_tomo::{
    fbp_slice, reference, FbpConfig, FilterKind, FilterPlan, Geometry, PrepPlan, ReconPlan,
    SimdPath,
};
use proptest::prelude::*;

fn rmse(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.data.len(), b.data.len());
    let e: f64 = a
        .data
        .iter()
        .zip(b.data.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum();
    (e / a.data.len() as f64).sqrt()
}

fn shepp_sinogram(n: usize, n_angles: usize) -> (Sinogram, Geometry) {
    let truth = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(n_angles, n);
    (forward_project(&truth, &geom), geom)
}

#[test]
fn plan_fbp_matches_reference_on_shepp_logan() {
    let (sino, geom) = shepp_sinogram(64, 180);
    for filter in [FilterKind::SheppLogan, FilterKind::RamLak, FilterKind::None] {
        for mask_disk in [true, false] {
            let cfg = FbpConfig { filter, mask_disk };
            let plan = fbp_slice(&sino, &geom, &cfg).unwrap();
            let reference = reference::fbp_slice(&sino, &geom, &cfg).unwrap();
            let e = rmse(&plan, &reference);
            assert!(e < 1e-5, "{filter:?} mask={mask_disk}: rmse {e}");
        }
    }
}

#[test]
fn plan_fbp_volume_matches_reference_volume() {
    let (sino, geom) = shepp_sinogram(48, 96);
    let sinos = vec![sino; 4];
    let cfg = FbpConfig::default();
    let vol = als_tomo::fbp_volume(&sinos, &geom, &cfg).unwrap();
    let ref_vol = reference::fbp_volume(&sinos, &geom, &cfg).unwrap();
    assert_eq!(
        (vol.nx, vol.ny, vol.nz),
        (ref_vol.nx, ref_vol.ny, ref_vol.nz)
    );
    for z in 0..vol.nz {
        let e = rmse(&vol.slice_xy(z), &ref_vol.slice_xy(z));
        assert!(e < 1e-5, "slice {z}: rmse {e}");
    }
}

#[test]
fn plan_gridrec_matches_reference_on_shepp_logan() {
    let (sino, geom) = shepp_sinogram(64, 180);
    for window in [FilterKind::Hann, FilterKind::RamLak] {
        for oversample in [2, 3] {
            let cfg = GridrecConfig {
                window,
                oversample,
                mask_disk: true,
            };
            let plan = gridrec_slice(&sino, &geom, &cfg).unwrap();
            let reference = reference::gridrec_slice(&sino, &geom, &cfg).unwrap();
            let e = rmse(&plan, &reference);
            assert!(e < 1e-5, "{window:?} os={oversample}: rmse {e}");
        }
    }
}

#[test]
fn clipped_forward_projection_is_bit_identical() {
    let n = 48;
    let truth = shepp_logan_2d(n);
    // off-center rotation axis exercises asymmetric clip intervals
    for center in [(n as f64 - 1.0) / 2.0, 19.25] {
        let geom = Geometry::parallel_180(60, n).with_center(center);
        let clipped = forward_project(&truth, &geom);
        let mut full = Sinogram::zeros(geom.n_angles(), geom.n_det);
        reference::forward_project_into(&truth, &geom, &mut full);
        assert_eq!(clipped, full, "center {center}");
    }
}

#[test]
fn filter_sinogram_matches_reference() {
    let (sino, _) = shepp_sinogram(64, 90);
    for kind in FilterKind::ALL {
        let a = als_tomo::filter::filter_sinogram(&sino, kind);
        let b = reference::filter_sinogram(&sino, kind);
        let worst = a
            .data
            .iter()
            .zip(b.data.iter())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-4, "{kind:?}: worst row diff {worst}");
    }
}

#[test]
fn iterative_solvers_stay_close_to_reference_scheme() {
    // the solvers now run on the plan projectors; sanity-check SIRT still
    // converges to the same image the pre-plan scheme would (loose bound:
    // float drift compounds over iterations)
    let n = 32;
    let truth = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(40, n);
    let sino = forward_project(&truth, &geom);
    let rec = als_tomo::sirt_slice(
        &sino,
        &geom,
        &als_tomo::IterConfig {
            iterations: 20,
            ..Default::default()
        },
    )
    .unwrap();
    let e = rmse(&rec, &truth);
    assert!(e < 0.2, "SIRT drifted from truth: rmse {e}");
}

#[test]
fn simd_fbp_matches_scalar_fbp_on_shepp_logan() {
    // On non-AVX2 hosts `with_simd_path(Avx2)` clamps back to scalar and
    // this degenerates to scalar-vs-scalar — still a valid (vacuous) gate.
    for (n, n_angles) in [(64usize, 180usize), (128, 90)] {
        let (sino, geom) = shepp_sinogram(n, n_angles);
        for mask_disk in [true, false] {
            let cfg = FbpConfig {
                filter: FilterKind::SheppLogan,
                mask_disk,
            };
            let scalar_plan = ReconPlan::new(&geom, &cfg)
                .unwrap()
                .with_simd_path(SimdPath::Scalar);
            let wide_plan = ReconPlan::new(&geom, &cfg)
                .unwrap()
                .with_simd_path(SimdPath::Avx2);
            let mut s1 = scalar_plan.make_scratch();
            let mut s2 = wide_plan.make_scratch();
            let a = scalar_plan.fbp_slice_with(&sino, &mut s1).unwrap();
            let b = wide_plan.fbp_slice_with(&sino, &mut s2).unwrap();
            let e = rmse(&a, &b);
            assert!(e < 1e-5, "n={n} mask={mask_disk}: simd-vs-scalar rmse {e}");
        }
    }
}

#[test]
fn simd_fbp_matches_reference_on_shepp_logan() {
    // the full gate the issue asks for: SIMD plan vs the pre-plan
    // reference kernels, not just vs the scalar plan
    let (sino, geom) = shepp_sinogram(64, 180);
    let cfg = FbpConfig::default();
    let plan = ReconPlan::new(&geom, &cfg)
        .unwrap()
        .with_simd_path(SimdPath::Avx2);
    let mut scratch = plan.make_scratch();
    let a = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
    let b = reference::fbp_slice(&sino, &geom, &cfg).unwrap();
    let e = rmse(&a, &b);
    assert!(e < 1e-5, "simd-vs-reference rmse {e}");
}

#[test]
fn fused_ring_suppression_is_bit_identical_to_remove_stripes() {
    let n_angles = 37;
    let n_det = 53;
    let mut raw = Sinogram::zeros(n_angles, n_det);
    for (i, v) in raw.data.iter_mut().enumerate() {
        *v = 400.0 + ((i * 31 + 7) % 900) as f32 + if i % n_det == 13 { 120.0 } else { 0.0 };
    }
    let dark = vec![90.0f32; n_det];
    let flat = vec![1100.0f32; n_det];
    let expected = {
        let mut s = raw.clone();
        PrepPlan::new(&dark, &flat, Some(0.5)).apply(&mut s);
        als_tomo::prep::remove_stripes(&s, 7)
    };
    let plan = PrepPlan::new(&dark, &flat, Some(0.5)).with_ring(7);
    let mut scratch = plan.make_post_scratch();
    let mut fused = raw;
    plan.apply_with(&mut fused, &mut scratch);
    assert_eq!(
        expected.data, fused.data,
        "fused ring detrend must match remove_stripes bit-for-bit"
    );
}

#[test]
fn fused_ring_paganin_chain_matches_reference_prep_chain() {
    let n_angles = 41;
    let n_det = 61;
    let mut raw = Sinogram::zeros(n_angles, n_det);
    for (i, v) in raw.data.iter_mut().enumerate() {
        *v = 300.0 + ((i * 17 + 3) % 1000) as f32 + if i % n_det == 20 { 90.0 } else { 0.0 };
    }
    let dark: Vec<f32> = (0..n_det).map(|t| 80.0 + (t % 7) as f32 * 4.0).collect();
    let flat: Vec<f32> = (0..n_det).map(|t| 1000.0 + (t % 11) as f32 * 9.0).collect();
    for &(ring, paganin) in &[
        (Some(9usize), Some(40.0f64)),
        (None, Some(25.0)),
        (Some(5), None),
    ] {
        let expected = reference::prep_chain(&raw, &dark, &flat, Some(0.5), ring, paganin);
        let mut plan = PrepPlan::new(&dark, &flat, Some(0.5));
        if let Some(w) = ring {
            plan = plan.with_ring(w);
        }
        if let Some(db) = paganin {
            plan = plan.with_paganin(db);
        }
        let mut scratch = plan.make_post_scratch();
        let mut fused = raw.clone();
        plan.apply_with(&mut fused, &mut scratch);
        let e: f64 = expected
            .data
            .iter()
            .zip(fused.data.iter())
            .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
            .sum::<f64>()
            / expected.data.len() as f64;
        let e = e.sqrt();
        assert!(e < 1e-5, "ring {ring:?} paganin {paganin:?}: rmse {e}");
    }
}

#[test]
fn scratch_independent_of_sharing() {
    // two slices through one scratch == two slices through two scratches
    let (sino, geom) = shepp_sinogram(48, 60);
    let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
    let mut shared = plan.make_scratch();
    let a1 = plan.fbp_slice_with(&sino, &mut shared).unwrap();
    let a2 = plan.fbp_slice_with(&sino, &mut shared).unwrap();
    let mut fresh = plan.make_scratch();
    let b = plan.fbp_slice_with(&sino, &mut fresh).unwrap();
    assert_eq!(a1, b);
    assert_eq!(a2, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed two-row real-FFT filtering must equal row-at-a-time
    /// filtering for arbitrary row pairs (and odd row counts, which
    /// leave an unpaired final row).
    #[test]
    fn packed_filtering_equals_row_at_a_time(
        n_angles in 1usize..6,
        n_det in 4usize..48,
        fill in proptest::collection::vec(-100.0f64..100.0, 0..288),
        kind_idx in 0usize..7,
    ) {
        let kind = FilterKind::ALL[kind_idx];
        let mut sino = Sinogram::zeros(n_angles, n_det);
        for (v, &x) in sino.data.iter_mut().zip(fill.iter().cycle()) {
            *v = x as f32;
        }
        // packed path (two rows per complex FFT)
        let plan = FilterPlan::new(kind, n_det);
        let mut buf = plan.make_buf();
        let mut packed = Sinogram::zeros(n_angles, n_det);
        plan.filter_rows(&sino, &mut buf, &mut packed);
        // reference path (one full complex FFT per row)
        let row_at_a_time = reference::filter_sinogram(&sino, kind);
        for (i, (&p, &r)) in packed.data.iter().zip(row_at_a_time.data.iter()).enumerate() {
            let tol = 1e-4f32 * (1.0 + r.abs());
            prop_assert!(
                (p - r).abs() <= tol,
                "{:?} sample {}: packed {} vs reference {}",
                kind, i, p, r
            );
        }
    }

    /// The AVX butterfly kernel must be bit-identical to the scalar
    /// stage loop for every transform size and arbitrary data — the
    /// equivalence that lets `FftPlan::new` default to the wide path
    /// everywhere (gridrec, packed filtering, streaming). On non-AVX2
    /// hosts both plans run scalar and the property holds vacuously.
    #[test]
    fn simd_fft_is_bit_exact_for_any_signal(
        log_n in 1u32..10,
        fill in proptest::collection::vec(-1e3f64..1e3, 2..64),
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let scalar = FftPlan::new(n).with_simd_path(SimdPath::Scalar);
        let wide = FftPlan::new(n).with_simd_path(SimdPath::Avx2);
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let re = fill[i % fill.len()];
                let im = fill[(i * 7 + 3) % fill.len()];
                Complex::new(re, im)
            })
            .collect();
        let mut a = orig.clone();
        let mut b = orig;
        if inverse {
            scalar.inverse(&mut a);
            wide.inverse(&mut b);
        } else {
            scalar.forward(&mut a);
            wide.forward(&mut b);
        }
        prop_assert_eq!(a, b, "n {} inverse {}", n, inverse);
    }

    /// SIMD-filtered rows must be bit-identical to scalar-filtered rows
    /// across odd detector widths and both packed/unpacked final rows
    /// (the spectrum multiply is one rounding per lane on either path).
    #[test]
    fn simd_filter_is_bit_exact_across_widths(
        n_angles in 1usize..6,
        n_det in 3usize..70,
        fill in proptest::collection::vec(-100.0f64..100.0, 1..128),
        kind_idx in 0usize..7,
    ) {
        let kind = FilterKind::ALL[kind_idx];
        let mut sino = Sinogram::zeros(n_angles, n_det);
        for (v, &x) in sino.data.iter_mut().zip(fill.iter().cycle()) {
            *v = x as f32;
        }
        let scalar = FilterPlan::new(kind, n_det).with_simd_path(SimdPath::Scalar);
        let wide = FilterPlan::new(kind, n_det).with_simd_path(SimdPath::Avx2);
        let mut buf_a = scalar.make_buf();
        let mut buf_b = wide.make_buf();
        let mut out_a = Sinogram::zeros(n_angles, n_det);
        let mut out_b = Sinogram::zeros(n_angles, n_det);
        scalar.filter_rows(&sino, &mut buf_a, &mut out_a);
        wide.filter_rows(&sino, &mut buf_b, &mut out_b);
        prop_assert_eq!(out_a.data, out_b.data, "{:?} nd {}", kind, n_det);
    }
}
