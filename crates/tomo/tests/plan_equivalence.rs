//! Equivalence of the plan-based engine against the retained pre-plan
//! reference kernels ([`als_tomo::reference`]).
//!
//! The plan engine changes the *arithmetic schedule* everywhere — packed
//! two-row real FFTs, table-driven twiddles, incremental backprojection
//! with hoisted bounds — but none of the math, so on the Shepp-Logan
//! phantom plan and reference reconstructions must agree to float
//! round-off (the acceptance bar is 1e-5 RMSE; measured drift is orders
//! of magnitude smaller). The clipped forward projector must be
//! *bit-identical*: the samples it skips are exact zeros.

use als_phantom::shepp_logan_2d;
use als_tomo::gridrec::{gridrec_slice, GridrecConfig};
use als_tomo::image::{Image, Sinogram};
use als_tomo::radon::forward_project;
use als_tomo::{fbp_slice, reference, FbpConfig, FilterKind, FilterPlan, Geometry, ReconPlan};
use proptest::prelude::*;

fn rmse(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.data.len(), b.data.len());
    let e: f64 = a
        .data
        .iter()
        .zip(b.data.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum();
    (e / a.data.len() as f64).sqrt()
}

fn shepp_sinogram(n: usize, n_angles: usize) -> (Sinogram, Geometry) {
    let truth = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(n_angles, n);
    (forward_project(&truth, &geom), geom)
}

#[test]
fn plan_fbp_matches_reference_on_shepp_logan() {
    let (sino, geom) = shepp_sinogram(64, 180);
    for filter in [FilterKind::SheppLogan, FilterKind::RamLak, FilterKind::None] {
        for mask_disk in [true, false] {
            let cfg = FbpConfig { filter, mask_disk };
            let plan = fbp_slice(&sino, &geom, &cfg).unwrap();
            let reference = reference::fbp_slice(&sino, &geom, &cfg).unwrap();
            let e = rmse(&plan, &reference);
            assert!(e < 1e-5, "{filter:?} mask={mask_disk}: rmse {e}");
        }
    }
}

#[test]
fn plan_fbp_volume_matches_reference_volume() {
    let (sino, geom) = shepp_sinogram(48, 96);
    let sinos = vec![sino; 4];
    let cfg = FbpConfig::default();
    let vol = als_tomo::fbp_volume(&sinos, &geom, &cfg).unwrap();
    let ref_vol = reference::fbp_volume(&sinos, &geom, &cfg).unwrap();
    assert_eq!(
        (vol.nx, vol.ny, vol.nz),
        (ref_vol.nx, ref_vol.ny, ref_vol.nz)
    );
    for z in 0..vol.nz {
        let e = rmse(&vol.slice_xy(z), &ref_vol.slice_xy(z));
        assert!(e < 1e-5, "slice {z}: rmse {e}");
    }
}

#[test]
fn plan_gridrec_matches_reference_on_shepp_logan() {
    let (sino, geom) = shepp_sinogram(64, 180);
    for window in [FilterKind::Hann, FilterKind::RamLak] {
        for oversample in [2, 3] {
            let cfg = GridrecConfig {
                window,
                oversample,
                mask_disk: true,
            };
            let plan = gridrec_slice(&sino, &geom, &cfg).unwrap();
            let reference = reference::gridrec_slice(&sino, &geom, &cfg).unwrap();
            let e = rmse(&plan, &reference);
            assert!(e < 1e-5, "{window:?} os={oversample}: rmse {e}");
        }
    }
}

#[test]
fn clipped_forward_projection_is_bit_identical() {
    let n = 48;
    let truth = shepp_logan_2d(n);
    // off-center rotation axis exercises asymmetric clip intervals
    for center in [(n as f64 - 1.0) / 2.0, 19.25] {
        let geom = Geometry::parallel_180(60, n).with_center(center);
        let clipped = forward_project(&truth, &geom);
        let mut full = Sinogram::zeros(geom.n_angles(), geom.n_det);
        reference::forward_project_into(&truth, &geom, &mut full);
        assert_eq!(clipped, full, "center {center}");
    }
}

#[test]
fn filter_sinogram_matches_reference() {
    let (sino, _) = shepp_sinogram(64, 90);
    for kind in FilterKind::ALL {
        let a = als_tomo::filter::filter_sinogram(&sino, kind);
        let b = reference::filter_sinogram(&sino, kind);
        let worst = a
            .data
            .iter()
            .zip(b.data.iter())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-4, "{kind:?}: worst row diff {worst}");
    }
}

#[test]
fn iterative_solvers_stay_close_to_reference_scheme() {
    // the solvers now run on the plan projectors; sanity-check SIRT still
    // converges to the same image the pre-plan scheme would (loose bound:
    // float drift compounds over iterations)
    let n = 32;
    let truth = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(40, n);
    let sino = forward_project(&truth, &geom);
    let rec = als_tomo::sirt_slice(
        &sino,
        &geom,
        &als_tomo::IterConfig {
            iterations: 20,
            ..Default::default()
        },
    )
    .unwrap();
    let e = rmse(&rec, &truth);
    assert!(e < 0.2, "SIRT drifted from truth: rmse {e}");
}

#[test]
fn scratch_independent_of_sharing() {
    // two slices through one scratch == two slices through two scratches
    let (sino, geom) = shepp_sinogram(48, 60);
    let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
    let mut shared = plan.make_scratch();
    let a1 = plan.fbp_slice_with(&sino, &mut shared).unwrap();
    let a2 = plan.fbp_slice_with(&sino, &mut shared).unwrap();
    let mut fresh = plan.make_scratch();
    let b = plan.fbp_slice_with(&sino, &mut fresh).unwrap();
    assert_eq!(a1, b);
    assert_eq!(a2, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed two-row real-FFT filtering must equal row-at-a-time
    /// filtering for arbitrary row pairs (and odd row counts, which
    /// leave an unpaired final row).
    #[test]
    fn packed_filtering_equals_row_at_a_time(
        n_angles in 1usize..6,
        n_det in 4usize..48,
        fill in proptest::collection::vec(-100.0f64..100.0, 0..288),
        kind_idx in 0usize..7,
    ) {
        let kind = FilterKind::ALL[kind_idx];
        let mut sino = Sinogram::zeros(n_angles, n_det);
        for (v, &x) in sino.data.iter_mut().zip(fill.iter().cycle()) {
            *v = x as f32;
        }
        // packed path (two rows per complex FFT)
        let plan = FilterPlan::new(kind, n_det);
        let mut buf = plan.make_buf();
        let mut packed = Sinogram::zeros(n_angles, n_det);
        plan.filter_rows(&sino, &mut buf, &mut packed);
        // reference path (one full complex FFT per row)
        let row_at_a_time = reference::filter_sinogram(&sino, kind);
        for (i, (&p, &r)) in packed.data.iter().zip(row_at_a_time.data.iter()).enumerate() {
            let tol = 1e-4f32 * (1.0 + r.abs());
            prop_assert!(
                (p - r).abs() <= tol,
                "{:?} sample {}: packed {} vs reference {}",
                kind, i, p, r
            );
        }
    }
}
