//! Iterative reconstruction: SIRT, ART, and MLEM.
//!
//! These are the "longer-running ... iterative algorithms" behind the
//! paper's high-quality file-based branch: slower than FBP/gridrec but
//! markedly better on noisy or angle-starved data.
//!
//! SIRT — the solver the file-based branch runs for 100 iterations per
//! slice — is dominated by the forward projection inside its update
//! loop (~80% of the per-iteration cost). [`IterPlan`] is the
//! scan-level plan for it: built once per `(Geometry, IterConfig)`, it
//! precomputes the row/column sums of the system matrix **and** a
//! per-ray sample table for the forward projector — every integer step
//! of every ray that can touch the image, stored as a flat
//! `(pixel index, fx, fy)` list. The per-sample coordinate math,
//! bounds tests and branchy bilinear gather of the reference projector
//! collapse into a table walk of fused lerps, and rays are pre-clipped
//! to the reconstruction-disk chord (exact for SIRT: iterates are
//! disk-masked, so samples whose four neighbours lie outside the disk
//! contribute exactly zero). One plan serves every slice of a scan and
//! every worker thread; per-thread state lives in an [`IterScratch`].
//!
//! The pre-plan per-slice path is retained verbatim as
//! [`sirt_slice_baseline`] for equivalence tests and same-run
//! benchmarking.

use crate::fbp::FbpConfig;
use crate::filter::FilterKind;
use crate::geometry::Geometry;
use crate::image::{Image, Sinogram};
use crate::plan::ReconPlan;
use crate::radon::{apply_disk_mask, in_recon_disk};
use crate::TomoError;
use serde::{Deserialize, Serialize};

/// Shared configuration for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterConfig {
    /// Number of outer iterations.
    pub iterations: usize,
    /// Relaxation factor (SIRT/ART). 1.0 is the textbook value; smaller is
    /// more stable on noisy data.
    pub relaxation: f64,
    /// Clamp negatives to zero after each iteration (attenuation is
    /// physically non-negative).
    pub nonneg: bool,
    /// Mask updates to the inscribed circle.
    pub mask_disk: bool,
}

impl Default for IterConfig {
    fn default() -> Self {
        IterConfig {
            iterations: 30,
            relaxation: 1.0,
            nonneg: true,
            mask_disk: true,
        }
    }
}

fn validate(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<(), TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    validate_cfg(cfg)
}

fn validate_cfg(cfg: &IterConfig) -> Result<(), TomoError> {
    if cfg.iterations == 0 {
        return Err(TomoError::BadParameter("iterations must be > 0".into()));
    }
    if cfg.relaxation <= 0.0 || cfg.relaxation > 2.0 {
        return Err(TomoError::BadParameter(format!(
            "relaxation {} outside (0, 2]",
            cfg.relaxation
        )));
    }
    Ok(())
}

/// Build the projector plan the iterative solvers share: no filtering,
/// backprojection extents matching the solver's disk mask. Amortizes the
/// per-angle trig tables across all iterations × angles.
fn projector_plan(geom: &Geometry, cfg: &IterConfig) -> Result<ReconPlan, TomoError> {
    ReconPlan::new(
        geom,
        &FbpConfig {
            filter: FilterKind::None,
            mask_disk: cfg.mask_disk,
        },
    )
}

fn post_iterate(img: &mut Image, cfg: &IterConfig) {
    if cfg.nonneg {
        for v in img.data.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
    if cfg.mask_disk {
        apply_disk_mask(img);
    }
}

/// One precomputed forward-projection sample: base pixel index plus the
/// bilinear fractions. 12 bytes, walked sequentially per ray.
#[derive(Debug, Clone, Copy)]
struct RaySample {
    idx: u32,
    fx: f32,
    fy: f32,
}

/// Smallest `r` in `[lo, hi)` for which `cond` holds, assuming `cond` is
/// monotone false→true over the range (returns `hi` when none does).
fn lower_bound_i64(mut lo: i64, mut hi: i64, cond: impl Fn(i64) -> bool) -> i64 {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cond(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Scan-level SIRT plan: the projector plan, the row/column sums of the
/// system matrix, and the forward-projection sample table — everything
/// that [`sirt_slice_baseline`] used to re-derive per slice (and, for
/// the per-sample work, per iteration).
#[derive(Debug, Clone)]
pub struct IterPlan {
    cfg: IterConfig,
    plan: ReconPlan,
    n: usize,
    n_angles: usize,
    /// Flat sample table, rays concatenated in `(angle, detector)` order.
    samples: Vec<RaySample>,
    /// Per-ray `[start, end)` range into `samples`.
    ranges: Vec<(u32, u32)>,
    /// Forward projection of an all-ones image (system-matrix row sums).
    row_sums: Sinogram,
    /// Backprojection of an all-ones sinogram (column sums).
    col_sums: Image,
}

/// Reusable per-thread buffers for plan-based SIRT.
#[derive(Debug, Clone)]
pub struct IterScratch {
    fwd: Sinogram,
    resid: Sinogram,
    update: Image,
}

impl IterPlan {
    /// Build the plan. The sample table enumerates, for every ray, the
    /// exact set of integer ray steps at which the reference projector's
    /// bilinear sample can be nonzero (`x ∈ [0, w−1)` and
    /// `y ∈ [0, h−1)`), found by binary search on the same float
    /// expressions the reference evaluates — so the table-driven forward
    /// sums the identical sample set, merely reassociated.
    pub fn new(geom: &Geometry, cfg: &IterConfig) -> Result<IterPlan, TomoError> {
        validate_cfg(cfg)?;
        let plan = projector_plan(geom, cfg)?;
        let n = geom.n_det;
        let n_angles = geom.n_angles();

        // Row sums: projection of an all-ones image (NOT disk-supported,
        // so it must use the unclipped reference projector); column
        // sums: backprojection of an all-ones sinogram. Both were
        // previously recomputed per slice.
        let mut ones_img = Image::square(n);
        ones_img.data.iter_mut().for_each(|v| *v = 1.0);
        let mut row_sums = Sinogram::zeros(n_angles, n);
        plan.forward_into(&ones_img, &mut row_sums);
        let mut ones_sino = Sinogram::zeros(n_angles, n);
        ones_sino.data.iter_mut().for_each(|v| *v = 1.0);
        let mut col_sums = Image::square(n);
        plan.backproject_acc(&ones_sino, &mut col_sums.data, 1.0);

        let (samples, ranges) = build_ray_table(geom, n, cfg.mask_disk);
        Ok(IterPlan {
            cfg: *cfg,
            plan,
            n,
            n_angles,
            samples,
            ranges,
            row_sums,
            col_sums,
        })
    }

    pub fn geometry(&self) -> &Geometry {
        self.plan.geometry()
    }

    pub fn config(&self) -> &IterConfig {
        &self.cfg
    }

    /// Approximate heap size of the sample table (the plan's dominant
    /// memory cost; ~12 bytes per ray sample).
    pub fn table_bytes(&self) -> usize {
        self.samples.len() * std::mem::size_of::<RaySample>()
            + self.ranges.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// Allocate the mutable buffers one worker thread needs. Create one
    /// per thread and reuse it for every slice that thread processes.
    pub fn make_scratch(&self) -> IterScratch {
        IterScratch {
            fwd: Sinogram::zeros(self.n_angles, self.n),
            resid: Sinogram::zeros(self.n_angles, self.n),
            update: Image::square(self.n),
        }
    }

    /// Table-driven forward projection of a square `n × n` pixel buffer.
    ///
    /// When the plan was built with `mask_disk`, rays are pre-clipped to
    /// the reconstruction-disk chord, so the result is only exact for
    /// images that are zero outside the disk (which SIRT iterates are).
    pub fn forward_into(&self, img: &[f32], sino: &mut Sinogram) {
        debug_assert_eq!(img.len(), self.n * self.n);
        debug_assert_eq!((sino.n_angles, sino.n_det), (self.n_angles, self.n));
        let w = self.n;
        for (ray, out) in sino.data.iter_mut().enumerate() {
            let (s0, s1) = self.ranges[ray];
            let chunk = &self.samples[s0 as usize..s1 as usize];
            let mut acc0 = 0.0f64;
            let mut acc1 = 0.0f64;
            let mut it = chunk.chunks_exact(2);
            for pair in &mut it {
                let a = pair[0];
                let b = pair[1];
                let ia = a.idx as usize;
                let ib = b.idx as usize;
                let (fxa, fya) = (a.fx as f64, a.fy as f64);
                let (fxb, fyb) = (b.fx as f64, b.fy as f64);
                let ta = img[ia] as f64 + fxa * (img[ia + 1] as f64 - img[ia] as f64);
                let ua = img[ia + w] as f64 + fxa * (img[ia + w + 1] as f64 - img[ia + w] as f64);
                acc0 += ta + fya * (ua - ta);
                let tb = img[ib] as f64 + fxb * (img[ib + 1] as f64 - img[ib] as f64);
                let ub = img[ib + w] as f64 + fxb * (img[ib + w + 1] as f64 - img[ib + w] as f64);
                acc1 += tb + fyb * (ub - tb);
            }
            for s in it.remainder() {
                let i = s.idx as usize;
                let (fx, fy) = (s.fx as f64, s.fy as f64);
                let t = img[i] as f64 + fx * (img[i + 1] as f64 - img[i] as f64);
                let u = img[i + w] as f64 + fx * (img[i + w + 1] as f64 - img[i + w] as f64);
                acc0 += t + fy * (u - t);
            }
            *out = (acc0 + acc1) as f32;
        }
    }

    /// SIRT-reconstruct one sinogram directly into a caller-provided
    /// `n × n` pixel buffer (e.g. a volume slice). The buffer is fully
    /// overwritten. Shapes must match the plan's geometry.
    pub fn sirt_into(&self, sino: &Sinogram, scratch: &mut IterScratch, out: &mut [f32]) {
        assert_eq!(
            (sino.n_angles, sino.n_det),
            (self.n_angles, self.n),
            "sinogram shape does not match the plan geometry"
        );
        assert_eq!(out.len(), self.n * self.n, "output buffer size mismatch");
        let IterScratch { fwd, resid, update } = scratch;
        out.fill(0.0);
        for _ in 0..self.cfg.iterations {
            self.forward_into(out, fwd);
            for i in 0..resid.data.len() {
                let r = self.row_sums.data[i].max(1e-6);
                resid.data[i] = (sino.data[i] - fwd.data[i]) / r;
            }
            update.data.iter_mut().for_each(|v| *v = 0.0);
            self.plan.backproject_acc(resid, &mut update.data, 1.0);
            for (i, o) in out.iter_mut().enumerate() {
                let c = self.col_sums.data[i].max(1e-6);
                *o += self.cfg.relaxation as f32 * update.data[i] / c;
            }
            if self.cfg.nonneg {
                for v in out.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            if self.cfg.mask_disk {
                for y in 0..self.n {
                    for x in 0..self.n {
                        if !in_recon_disk(x, y, self.n) {
                            out[y * self.n + x] = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// SIRT-reconstruct one sinogram, returning a fresh image. Validates
    /// shapes.
    pub fn sirt_slice_with(
        &self,
        sino: &Sinogram,
        scratch: &mut IterScratch,
    ) -> Result<Image, TomoError> {
        self.geometry().validate(sino.n_angles, sino.n_det)?;
        let mut img = Image::square(self.n);
        self.sirt_into(sino, scratch, &mut img.data);
        Ok(img)
    }
}

/// Enumerate the forward-projection sample table for every `(angle,
/// detector)` ray of the geometry over a square `n × n` image.
fn build_ray_table(
    geom: &Geometry,
    n: usize,
    disk_clip: bool,
) -> (Vec<RaySample>, Vec<(u32, u32)>) {
    let w = n;
    let cx = (n as f64 - 1.0) / 2.0;
    let cy = cx;
    let last_x = n as f64 - 1.0;
    let last_y = last_x;
    let half_len = (((n * n + n * n) as f64).sqrt() / 2.0).ceil() as i64;
    // Disk-chord clip radius: a bilinear sample can only be nonzero on a
    // disk-supported image if it lies within √2 of some in-disk pixel,
    // so clip at the disk radius plus a 1.5-pixel safety margin.
    let r_disk = (n as f64 / 2.0 - 1.0) + 1.5;
    let mut samples = Vec::new();
    let mut ranges = Vec::with_capacity(geom.n_angles() * geom.n_det);
    for &theta in &geom.angles {
        let (sin_t, cos_t) = theta.sin_cos();
        for t in 0..geom.n_det {
            let s = t as f64 - geom.center;
            let bx = cx + s * cos_t;
            let by = cy + s * sin_t;
            // The same float expressions the reference projector
            // evaluates per sample; both are weakly monotone in r.
            let x_of = |r: i64| bx - r as f64 * sin_t;
            let y_of = |r: i64| by + r as f64 * cos_t;
            let mut lo = -half_len;
            let mut hi = half_len + 1;
            if disk_clip {
                // `bx,by` is the foot of the perpendicular from the
                // image center, so the chord |ray ∩ disk| is symmetric
                // around r = 0: r² ≤ r_disk² − s².
                let disc = r_disk * r_disk - s * s;
                if disc < 0.0 {
                    let at = samples.len() as u32;
                    ranges.push((at, at));
                    continue;
                }
                let q = disc.sqrt();
                lo = lo.max((-q).floor() as i64 - 1);
                hi = hi.min(q.ceil() as i64 + 2);
            }
            // x(r) ∈ [0, last_x): a single r-interval per predicate
            // because x(r) is monotone (affine map, monotone rounding).
            let (xa, xb) = if sin_t > 0.0 {
                (
                    lower_bound_i64(lo, hi, |r| x_of(r) < last_x),
                    lower_bound_i64(lo, hi, |r| x_of(r) < 0.0),
                )
            } else if sin_t < 0.0 {
                (
                    lower_bound_i64(lo, hi, |r| x_of(r) >= 0.0),
                    lower_bound_i64(lo, hi, |r| x_of(r) >= last_x),
                )
            } else if bx >= 0.0 && bx < last_x {
                (lo, hi)
            } else {
                (lo, lo)
            };
            let (ya, yb) = if cos_t > 0.0 {
                (
                    lower_bound_i64(lo, hi, |r| y_of(r) >= 0.0),
                    lower_bound_i64(lo, hi, |r| y_of(r) >= last_y),
                )
            } else if cos_t < 0.0 {
                (
                    lower_bound_i64(lo, hi, |r| y_of(r) < last_y),
                    lower_bound_i64(lo, hi, |r| y_of(r) < 0.0),
                )
            } else if by >= 0.0 && by < last_y {
                (lo, hi)
            } else {
                (lo, lo)
            };
            let (ra, rb) = (xa.max(ya), xb.min(yb));
            let start = samples.len() as u32;
            for r in ra..rb {
                let x = x_of(r);
                let y = y_of(r);
                let ix = x as usize;
                let iy = y as usize;
                samples.push(RaySample {
                    idx: (iy * w + ix) as u32,
                    fx: (x - ix as f64) as f32,
                    fy: (y - iy as f64) as f32,
                });
            }
            ranges.push((start, samples.len() as u32));
        }
    }
    (samples, ranges)
}

/// Simultaneous Iterative Reconstruction Technique.
///
/// Update: `x ← x + λ · C · Aᵀ · R · (p − A x)` where `R` and `C` normalize
/// by row and column sums of the system matrix (approximated with
/// projections of a unit image).
///
/// Convenience wrapper that builds an [`IterPlan`] per call; anything
/// reconstructing more than one slice of the same geometry should hold a
/// plan and call [`IterPlan::sirt_slice_with`] to amortize the sample
/// table and the row/column sums across slices.
pub fn sirt_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    let plan = IterPlan::new(geom, cfg)?;
    let mut scratch = plan.make_scratch();
    plan.sirt_slice_with(sino, &mut scratch)
}

/// The retained pre-[`IterPlan`] SIRT path: per-call projector plan and
/// row/column sums, reference forward projector inside the update loop.
/// Kept as the equivalence baseline and for same-run benchmarking — do
/// not optimise it.
pub fn sirt_slice_baseline(
    sino: &Sinogram,
    geom: &Geometry,
    cfg: &IterConfig,
) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    // Row sums: projection of an all-ones image; column sums: back
    // projection of an all-ones sinogram.
    let mut ones_img = Image::square(n);
    ones_img.data.iter_mut().for_each(|v| *v = 1.0);
    let mut row_sums = Sinogram::zeros(sino.n_angles, sino.n_det);
    plan.forward_into(&ones_img, &mut row_sums);
    let mut ones_sino = Sinogram::zeros(sino.n_angles, sino.n_det);
    ones_sino.data.iter_mut().for_each(|v| *v = 1.0);
    let mut col_sums = Image::square(n);
    plan.backproject_acc(&ones_sino, &mut col_sums.data, 1.0);

    let mut x = Image::square(n);
    let mut fwd = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut resid = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut update = Image::square(n);

    for _ in 0..cfg.iterations {
        plan.forward_into(&x, &mut fwd);
        for i in 0..resid.data.len() {
            let r = row_sums.data[i].max(1e-6);
            resid.data[i] = (sino.data[i] - fwd.data[i]) / r;
        }
        update.data.iter_mut().for_each(|v| *v = 0.0);
        plan.backproject_acc(&resid, &mut update.data, 1.0);
        for i in 0..x.data.len() {
            let c = col_sums.data[i].max(1e-6);
            x.data[i] += cfg.relaxation as f32 * update.data[i] / c;
        }
        post_iterate(&mut x, cfg);
    }
    Ok(x)
}

/// Algebraic Reconstruction Technique (Kaczmarz row action, one sweep of
/// all angles per iteration). Uses angle-blocks rather than single rays,
/// which converges similarly and vectorizes better.
pub fn art_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    let mut ones_img = Image::square(n);
    ones_img.data.iter_mut().for_each(|v| *v = 1.0);
    let mut row_sums = Sinogram::zeros(sino.n_angles, sino.n_det);
    plan.forward_into(&ones_img, &mut row_sums);

    let mut x = Image::square(n);
    // per-angle scratch rows reused across the whole sweep
    let mut fwd = vec![0.0f32; n];
    let mut resid = vec![0.0f32; n];
    for _ in 0..cfg.iterations {
        for a in 0..geom.n_angles() {
            plan.forward_angle_into(&x, a, &mut fwd);
            for t in 0..n {
                let norm = row_sums.get(a, t).max(1e-6);
                resid[t] = cfg.relaxation as f32 * (sino.get(a, t) - fwd[t]) / norm;
            }
            plan.backproject_angle_acc(&resid, a, &mut x.data, 1.0);
        }
        post_iterate(&mut x, cfg);
    }
    Ok(x)
}

/// Maximum-Likelihood Expectation-Maximization for emission-style data.
/// Multiplicative updates keep the image non-negative by construction.
/// Requires a non-negative sinogram.
pub fn mlem_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    if sino.data.iter().any(|&v| v < 0.0) {
        return Err(TomoError::BadParameter(
            "MLEM requires a non-negative sinogram".into(),
        ));
    }
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    let mut ones_sino = Sinogram::zeros(sino.n_angles, sino.n_det);
    ones_sino.data.iter_mut().for_each(|v| *v = 1.0);
    let mut sens = Image::square(n);
    plan.backproject_acc(&ones_sino, &mut sens.data, 1.0);

    let mut x = Image::square(n);
    // start from a uniform positive image inside the disk
    for y in 0..n {
        for x_i in 0..n {
            if in_recon_disk(x_i, y, n) {
                x.set(x_i, y, 1.0);
            }
        }
    }

    let mut fwd = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut ratio = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut corr = Image::square(n);

    for _ in 0..cfg.iterations {
        plan.forward_into(&x, &mut fwd);
        for i in 0..ratio.data.len() {
            ratio.data[i] = sino.data[i] / fwd.data[i].max(1e-6);
        }
        corr.data.iter_mut().for_each(|v| *v = 0.0);
        plan.backproject_acc(&ratio, &mut corr.data, 1.0);
        for i in 0..x.data.len() {
            let s = sens.data[i].max(1e-6);
            x.data[i] *= corr.data[i] / s;
        }
        if cfg.mask_disk {
            apply_disk_mask(&mut x);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radon::forward_project;

    fn two_disk_phantom(n: usize) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if ((dx + 6.0).powi(2) + dy * dy).sqrt() < n as f64 * 0.15 {
                    img.set(x, y, 1.0);
                }
                if ((dx - 7.0).powi(2) + (dy - 3.0).powi(2)).sqrt() < n as f64 * 0.1 {
                    img.set(x, y, 0.5);
                }
            }
        }
        img
    }

    fn rmse_in_disk(a: &Image, b: &Image) -> f64 {
        let n = a.width;
        let mut e = 0.0;
        let mut cnt = 0usize;
        for y in 0..n {
            for x in 0..n {
                if in_recon_disk(x, y, n) {
                    e += (a.get(x, y) as f64 - b.get(x, y) as f64).powi(2);
                    cnt += 1;
                }
            }
        }
        (e / cnt as f64).sqrt()
    }

    #[test]
    fn sirt_converges_toward_truth() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(40, n);
        let sino = forward_project(&truth, &geom);
        let cfg5 = IterConfig {
            iterations: 5,
            ..Default::default()
        };
        let cfg40 = IterConfig {
            iterations: 40,
            ..Default::default()
        };
        let r5 = sirt_slice(&sino, &geom, &cfg5).unwrap();
        let r40 = sirt_slice(&sino, &geom, &cfg40).unwrap();
        let e5 = rmse_in_disk(&r5, &truth);
        let e40 = rmse_in_disk(&r40, &truth);
        assert!(
            e40 < e5,
            "SIRT should improve with iterations: {e5} -> {e40}"
        );
        assert!(e40 < 0.12, "SIRT final error too high: {e40}");
    }

    #[test]
    fn sirt_beats_fbp_with_few_angles() {
        // angle-starved acquisition is where iterative methods shine
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(14, n);
        let sino = forward_project(&truth, &geom);
        let sirt = sirt_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let fbp = crate::fbp::fbp_slice(&sino, &geom, &crate::fbp::FbpConfig::default()).unwrap();
        let e_sirt = rmse_in_disk(&sirt, &truth);
        let e_fbp = rmse_in_disk(&fbp, &truth);
        assert!(
            e_sirt < e_fbp,
            "SIRT ({e_sirt}) should beat FBP ({e_fbp}) at 14 angles"
        );
    }

    #[test]
    fn plan_sirt_matches_baseline_sirt() {
        // the table-driven forward inside IterPlan reassociates sums but
        // walks the identical sample set: reconstructions must agree to
        // well below the workspace's 1e-5 RMSE equivalence bar
        let n = 48;
        let truth = two_disk_phantom(n);
        for &(n_angles, mask_disk) in &[(40usize, true), (17, false)] {
            let geom = Geometry::parallel_180(n_angles, n);
            let sino = forward_project(&truth, &geom);
            let cfg = IterConfig {
                iterations: 25,
                mask_disk,
                ..Default::default()
            };
            let base = sirt_slice_baseline(&sino, &geom, &cfg).unwrap();
            let fast = sirt_slice(&sino, &geom, &cfg).unwrap();
            let rmse = rmse_in_disk(&base, &fast);
            let max = base
                .data
                .iter()
                .zip(fast.data.iter())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                rmse < 1e-5 && max < 1e-4,
                "plan vs baseline SIRT diverged: rmse {rmse}, max {max} (mask_disk {mask_disk})"
            );
        }
    }

    #[test]
    fn plan_forward_matches_reference_on_disk_supported_image() {
        let n = 40;
        let mut img = two_disk_phantom(n);
        apply_disk_mask(&mut img);
        let geom = Geometry::parallel_180(33, n);
        let cfg = IterConfig::default();
        let plan = IterPlan::new(&geom, &cfg).unwrap();
        let reference = forward_project(&img, &geom);
        let mut fast = Sinogram::zeros(geom.n_angles(), n);
        plan.forward_into(&img.data, &mut fast);
        for (i, (&a, &b)) in reference.data.iter().zip(fast.data.iter()).enumerate() {
            assert!((a - b).abs() < 1e-4, "ray {i}: reference {a} vs table {b}");
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(20, n);
        let sino = forward_project(&truth, &geom);
        let cfg = IterConfig {
            iterations: 10,
            ..Default::default()
        };
        let plan = IterPlan::new(&geom, &cfg).unwrap();
        let mut scratch = plan.make_scratch();
        let a = plan.sirt_slice_with(&sino, &mut scratch).unwrap();
        let b = plan.sirt_slice_with(&sino, &mut scratch).unwrap();
        assert_eq!(a, b, "dirty scratch must not leak into the next slice");
    }

    #[test]
    fn art_reconstructs_reasonably() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(30, n);
        let sino = forward_project(&truth, &geom);
        let rec = art_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 8,
                relaxation: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let e = rmse_in_disk(&rec, &truth);
        assert!(e < 0.15, "ART rmse {e}");
    }

    #[test]
    fn mlem_stays_nonnegative_and_converges() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(30, n);
        let sino = forward_project(&truth, &geom);
        let rec = mlem_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 30,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rec.data.iter().all(|&v| v >= 0.0));
        let e = rmse_in_disk(&rec, &truth);
        assert!(e < 0.15, "MLEM rmse {e}");
    }

    #[test]
    fn mlem_rejects_negative_sinogram() {
        let geom = Geometry::parallel_180(4, 8);
        let mut sino = Sinogram::zeros(4, 8);
        sino.data[3] = -1.0;
        assert!(mlem_slice(&sino, &geom, &IterConfig::default()).is_err());
    }

    #[test]
    fn bad_config_is_rejected() {
        let geom = Geometry::parallel_180(4, 8);
        let sino = Sinogram::zeros(4, 8);
        let zero_iter = IterConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(sirt_slice(&sino, &geom, &zero_iter).is_err());
        assert!(IterPlan::new(&geom, &zero_iter).is_err());
        let bad_relax = IterConfig {
            relaxation: 3.0,
            ..Default::default()
        };
        assert!(sirt_slice(&sino, &geom, &bad_relax).is_err());
    }

    #[test]
    fn zero_sinogram_reconstructs_to_zero() {
        let geom = Geometry::parallel_180(8, 16);
        let sino = Sinogram::zeros(8, 16);
        let rec = sirt_slice(&sino, &geom, &IterConfig::default()).unwrap();
        assert!(rec.data.iter().all(|&v| v.abs() < 1e-6));
    }
}
