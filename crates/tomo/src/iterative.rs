//! Iterative reconstruction: SIRT, ART, and MLEM.
//!
//! These are the "longer-running ... iterative algorithms" behind the
//! paper's high-quality file-based branch: slower than FBP/gridrec but
//! markedly better on noisy or angle-starved data.

use crate::fbp::FbpConfig;
use crate::filter::FilterKind;
use crate::geometry::Geometry;
use crate::image::{Image, Sinogram};
use crate::plan::ReconPlan;
use crate::radon::{apply_disk_mask, in_recon_disk};
use crate::TomoError;
use serde::{Deserialize, Serialize};

/// Shared configuration for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterConfig {
    /// Number of outer iterations.
    pub iterations: usize,
    /// Relaxation factor (SIRT/ART). 1.0 is the textbook value; smaller is
    /// more stable on noisy data.
    pub relaxation: f64,
    /// Clamp negatives to zero after each iteration (attenuation is
    /// physically non-negative).
    pub nonneg: bool,
    /// Mask updates to the inscribed circle.
    pub mask_disk: bool,
}

impl Default for IterConfig {
    fn default() -> Self {
        IterConfig {
            iterations: 30,
            relaxation: 1.0,
            nonneg: true,
            mask_disk: true,
        }
    }
}

fn validate(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<(), TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    if cfg.iterations == 0 {
        return Err(TomoError::BadParameter("iterations must be > 0".into()));
    }
    if cfg.relaxation <= 0.0 || cfg.relaxation > 2.0 {
        return Err(TomoError::BadParameter(format!(
            "relaxation {} outside (0, 2]",
            cfg.relaxation
        )));
    }
    Ok(())
}

/// Build the projector plan the iterative solvers share: no filtering,
/// backprojection extents matching the solver's disk mask. Amortizes the
/// per-angle trig tables across all iterations × angles.
fn projector_plan(geom: &Geometry, cfg: &IterConfig) -> Result<ReconPlan, TomoError> {
    ReconPlan::new(
        geom,
        &FbpConfig {
            filter: FilterKind::None,
            mask_disk: cfg.mask_disk,
        },
    )
}

fn post_iterate(img: &mut Image, cfg: &IterConfig) {
    if cfg.nonneg {
        for v in img.data.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
    if cfg.mask_disk {
        apply_disk_mask(img);
    }
}

/// Simultaneous Iterative Reconstruction Technique.
///
/// Update: `x ← x + λ · C · Aᵀ · R · (p − A x)` where `R` and `C` normalize
/// by row and column sums of the system matrix (approximated with
/// projections of a unit image).
pub fn sirt_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    // Row sums: projection of an all-ones image; column sums: back
    // projection of an all-ones sinogram.
    let mut ones_img = Image::square(n);
    ones_img.data.iter_mut().for_each(|v| *v = 1.0);
    let mut row_sums = Sinogram::zeros(sino.n_angles, sino.n_det);
    plan.forward_into(&ones_img, &mut row_sums);
    let mut ones_sino = Sinogram::zeros(sino.n_angles, sino.n_det);
    ones_sino.data.iter_mut().for_each(|v| *v = 1.0);
    let mut col_sums = Image::square(n);
    plan.backproject_acc(&ones_sino, &mut col_sums.data, 1.0);

    let mut x = Image::square(n);
    let mut fwd = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut resid = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut update = Image::square(n);

    for _ in 0..cfg.iterations {
        plan.forward_into(&x, &mut fwd);
        for i in 0..resid.data.len() {
            let r = row_sums.data[i].max(1e-6);
            resid.data[i] = (sino.data[i] - fwd.data[i]) / r;
        }
        update.data.iter_mut().for_each(|v| *v = 0.0);
        plan.backproject_acc(&resid, &mut update.data, 1.0);
        for i in 0..x.data.len() {
            let c = col_sums.data[i].max(1e-6);
            x.data[i] += cfg.relaxation as f32 * update.data[i] / c;
        }
        post_iterate(&mut x, cfg);
    }
    Ok(x)
}

/// Algebraic Reconstruction Technique (Kaczmarz row action, one sweep of
/// all angles per iteration). Uses angle-blocks rather than single rays,
/// which converges similarly and vectorizes better.
pub fn art_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    let mut ones_img = Image::square(n);
    ones_img.data.iter_mut().for_each(|v| *v = 1.0);
    let mut row_sums = Sinogram::zeros(sino.n_angles, sino.n_det);
    plan.forward_into(&ones_img, &mut row_sums);

    let mut x = Image::square(n);
    // per-angle scratch rows reused across the whole sweep
    let mut fwd = vec![0.0f32; n];
    let mut resid = vec![0.0f32; n];
    for _ in 0..cfg.iterations {
        for a in 0..geom.n_angles() {
            plan.forward_angle_into(&x, a, &mut fwd);
            for t in 0..n {
                let norm = row_sums.get(a, t).max(1e-6);
                resid[t] = cfg.relaxation as f32 * (sino.get(a, t) - fwd[t]) / norm;
            }
            plan.backproject_angle_acc(&resid, a, &mut x.data, 1.0);
        }
        post_iterate(&mut x, cfg);
    }
    Ok(x)
}

/// Maximum-Likelihood Expectation-Maximization for emission-style data.
/// Multiplicative updates keep the image non-negative by construction.
/// Requires a non-negative sinogram.
pub fn mlem_slice(sino: &Sinogram, geom: &Geometry, cfg: &IterConfig) -> Result<Image, TomoError> {
    validate(sino, geom, cfg)?;
    if sino.data.iter().any(|&v| v < 0.0) {
        return Err(TomoError::BadParameter(
            "MLEM requires a non-negative sinogram".into(),
        ));
    }
    let n = geom.n_det;
    let plan = projector_plan(geom, cfg)?;

    let mut ones_sino = Sinogram::zeros(sino.n_angles, sino.n_det);
    ones_sino.data.iter_mut().for_each(|v| *v = 1.0);
    let mut sens = Image::square(n);
    plan.backproject_acc(&ones_sino, &mut sens.data, 1.0);

    let mut x = Image::square(n);
    // start from a uniform positive image inside the disk
    for y in 0..n {
        for x_i in 0..n {
            if in_recon_disk(x_i, y, n) {
                x.set(x_i, y, 1.0);
            }
        }
    }

    let mut fwd = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut ratio = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut corr = Image::square(n);

    for _ in 0..cfg.iterations {
        plan.forward_into(&x, &mut fwd);
        for i in 0..ratio.data.len() {
            ratio.data[i] = sino.data[i] / fwd.data[i].max(1e-6);
        }
        corr.data.iter_mut().for_each(|v| *v = 0.0);
        plan.backproject_acc(&ratio, &mut corr.data, 1.0);
        for i in 0..x.data.len() {
            let s = sens.data[i].max(1e-6);
            x.data[i] *= corr.data[i] / s;
        }
        if cfg.mask_disk {
            apply_disk_mask(&mut x);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radon::forward_project;

    fn two_disk_phantom(n: usize) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if ((dx + 6.0).powi(2) + dy * dy).sqrt() < n as f64 * 0.15 {
                    img.set(x, y, 1.0);
                }
                if ((dx - 7.0).powi(2) + (dy - 3.0).powi(2)).sqrt() < n as f64 * 0.1 {
                    img.set(x, y, 0.5);
                }
            }
        }
        img
    }

    fn rmse_in_disk(a: &Image, b: &Image) -> f64 {
        let n = a.width;
        let mut e = 0.0;
        let mut cnt = 0usize;
        for y in 0..n {
            for x in 0..n {
                if in_recon_disk(x, y, n) {
                    e += (a.get(x, y) as f64 - b.get(x, y) as f64).powi(2);
                    cnt += 1;
                }
            }
        }
        (e / cnt as f64).sqrt()
    }

    #[test]
    fn sirt_converges_toward_truth() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(40, n);
        let sino = forward_project(&truth, &geom);
        let cfg5 = IterConfig {
            iterations: 5,
            ..Default::default()
        };
        let cfg40 = IterConfig {
            iterations: 40,
            ..Default::default()
        };
        let r5 = sirt_slice(&sino, &geom, &cfg5).unwrap();
        let r40 = sirt_slice(&sino, &geom, &cfg40).unwrap();
        let e5 = rmse_in_disk(&r5, &truth);
        let e40 = rmse_in_disk(&r40, &truth);
        assert!(
            e40 < e5,
            "SIRT should improve with iterations: {e5} -> {e40}"
        );
        assert!(e40 < 0.12, "SIRT final error too high: {e40}");
    }

    #[test]
    fn sirt_beats_fbp_with_few_angles() {
        // angle-starved acquisition is where iterative methods shine
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(14, n);
        let sino = forward_project(&truth, &geom);
        let sirt = sirt_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let fbp = crate::fbp::fbp_slice(&sino, &geom, &crate::fbp::FbpConfig::default()).unwrap();
        let e_sirt = rmse_in_disk(&sirt, &truth);
        let e_fbp = rmse_in_disk(&fbp, &truth);
        assert!(
            e_sirt < e_fbp,
            "SIRT ({e_sirt}) should beat FBP ({e_fbp}) at 14 angles"
        );
    }

    #[test]
    fn art_reconstructs_reasonably() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(30, n);
        let sino = forward_project(&truth, &geom);
        let rec = art_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 8,
                relaxation: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let e = rmse_in_disk(&rec, &truth);
        assert!(e < 0.15, "ART rmse {e}");
    }

    #[test]
    fn mlem_stays_nonnegative_and_converges() {
        let n = 32;
        let truth = two_disk_phantom(n);
        let geom = Geometry::parallel_180(30, n);
        let sino = forward_project(&truth, &geom);
        let rec = mlem_slice(
            &sino,
            &geom,
            &IterConfig {
                iterations: 30,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rec.data.iter().all(|&v| v >= 0.0));
        let e = rmse_in_disk(&rec, &truth);
        assert!(e < 0.15, "MLEM rmse {e}");
    }

    #[test]
    fn mlem_rejects_negative_sinogram() {
        let geom = Geometry::parallel_180(4, 8);
        let mut sino = Sinogram::zeros(4, 8);
        sino.data[3] = -1.0;
        assert!(mlem_slice(&sino, &geom, &IterConfig::default()).is_err());
    }

    #[test]
    fn bad_config_is_rejected() {
        let geom = Geometry::parallel_180(4, 8);
        let sino = Sinogram::zeros(4, 8);
        let zero_iter = IterConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(sirt_slice(&sino, &geom, &zero_iter).is_err());
        let bad_relax = IterConfig {
            relaxation: 3.0,
            ..Default::default()
        };
        assert!(sirt_slice(&sino, &geom, &bad_relax).is_err());
    }

    #[test]
    fn zero_sinogram_reconstructs_to_zero() {
        let geom = Geometry::parallel_180(8, 16);
        let sino = Sinogram::zeros(8, 16);
        let rec = sirt_slice(&sino, &geom, &IterConfig::default()).unwrap();
        assert!(rec.data.iter().all(|&v| v.abs() < 1e-6));
    }
}
