//! Chunked scan-to-archive reconstruction pipeline.
//!
//! The paper's file-based branch is judged end to end — raw scan in,
//! TIFF stack + multiscale archive out — so this engine optimises the
//! whole path, not just the kernels, by streaming the scan through
//! bounded, overlapped stages:
//!
//! ```text
//!  loader thread          caller thread             sink thread
//!  ┌────────────┐  raw   ┌──────────────────┐ recon ┌─────────────┐
//!  │ slab       │ slabs  │ fused prep       │ slabs │ TIFF stack, │
//!  │ transpose  │ ─────▶ │ (RawPrepPlan) +  │ ────▶ │ multiscale, │
//!  │ (rows from │ chan   │ slice-parallel   │ chan  │ volume ...  │
//!  │ all frames)│ (≤d)   │ SIRT/FBP plan    │ (≤d)  │             │
//!  └────────────┘        └──────────────────┘       └─────────────┘
//! ```
//!
//! - **Slab transpose**: each slab reads a *contiguous* block of
//!   detector rows from every projection frame (one `copy_from_slice`
//!   per frame-row), replacing the one-element-per-frame gather of the
//!   old per-slice path.
//! - **Fused prep**: a [`RawPrepPlan`] turns raw counts into line
//!   integrals in a single in-place pass per row.
//! - **Recon**: one shared plan ([`IterPlan`] or [`ReconPlan`]) built
//!   once per scan; slices within a slab are parallelized over the
//!   vendored rayon work queue with per-worker scratch.
//! - **Sink**: writers run on a dedicated I/O thread fed by a bounded
//!   channel, so disk writes overlap the next slab's compute. Slabs
//!   arrive in z order, which lets streaming writers (TIFF stack,
//!   multiscale pyramid) emit incrementally.
//!
//! Channels are bounded ([`PipelineConfig::queue_depth`] slabs), so
//! memory stays at `O(queue_depth × slab)` regardless of scan size, and
//! a slow stage back-pressures the ones before it. The per-stage busy
//! times in the returned [`PipelineReport`] quantify the overlap.

use crate::fbp::FbpConfig;
use crate::geometry::Geometry;
use crate::image::Sinogram;
use crate::iterative::{IterConfig, IterPlan, IterScratch};
use crate::plan::{ReconPlan, ReconScratch};
use crate::prep::RawPrepPlan;
use crate::TomoError;
use als_telemetry::Registry;
use rayon::prelude::*;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of raw projection data: `n_angles` frames of `rows × cols`
/// detector counts plus dark/flat reference frames. Implemented by
/// `scidata::ScanFile`; the trait keeps `tomo` free of file-format
/// dependencies and lets tests drive the pipeline from memory.
pub trait ProjectionSource: Sync {
    /// `(n_angles, rows, cols)`.
    fn dims(&self) -> (usize, usize, usize);
    /// Projection angles in radians, length `n_angles`.
    fn scan_angles(&self) -> Vec<f64>;
    /// Dark reference frame, `rows × cols`.
    fn dark_frame(&self) -> &[u16];
    /// Flat (white) reference frame, `rows × cols`.
    fn flat_frame(&self) -> &[u16];
    /// Raw counts of projection `a`, `rows × cols`, row-major.
    fn frame(&self, a: usize) -> &[u16];
}

/// A consumer of reconstructed slices. Slabs arrive strictly in
/// ascending-z order with no gaps; all calls happen on the pipeline's
/// sink thread.
pub trait SliceSink: Send {
    /// Called once before any slab, with the final volume shape.
    fn begin(&mut self, nx: usize, ny: usize, nz: usize) -> Result<(), String>;
    /// `data` holds `n_slices` slices of `nx × ny` starting at depth `z0`.
    fn write_slab(&mut self, z0: usize, n_slices: usize, data: &[f32]) -> Result<(), String>;
    /// Called once after the last slab.
    fn finish(&mut self) -> Result<(), String>;
}

/// Which reconstruction engine the compute stage runs.
#[derive(Debug, Clone)]
pub enum ReconKind {
    /// Iterative SIRT via a scan-level [`IterPlan`] (file-based branch).
    Sirt(IterConfig),
    /// Filtered backprojection via a shared [`ReconPlan`] (streaming branch).
    Fbp(FbpConfig),
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub recon: ReconKind,
    /// Attenuation scale used by the raw→line-integral conversion.
    pub mu_scale: f64,
    /// Log-domain zinger threshold; `None` disables zinger removal.
    pub zinger_threshold: Option<f32>,
    /// Ring-suppression window for the fused per-slice post-stage;
    /// `None` disables ring removal (the historical behaviour).
    pub ring_window: Option<usize>,
    /// Paganin phase-filter strength (δ/β); `None` or ≤ 0 disables it.
    pub paganin_delta_beta: Option<f64>,
    /// Detector rows (= output slices) per slab; 0 picks a default.
    pub slab_rows: usize,
    /// Bounded-channel capacity between stages, in slabs.
    pub queue_depth: usize,
    /// Fleet metrics registry for stage-occupancy gauges, queue depths,
    /// and throughput counters. `None` runs against a private throwaway
    /// registry so the hot path has no conditionals.
    pub registry: Option<Arc<Registry>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            recon: ReconKind::Fbp(FbpConfig::default()),
            mu_scale: 1.0,
            zinger_threshold: None,
            ring_window: None,
            paganin_delta_beta: None,
            slab_rows: 0,
            queue_depth: 2,
            registry: None,
        }
    }
}

/// Wall time plus per-stage busy time for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Output slices reconstructed.
    pub slices: usize,
    /// Slabs that flowed through the pipeline.
    pub slabs: usize,
    /// End-to-end wall time, plan build included.
    pub wall: Duration,
    /// One-time cost of building the prep + recon plans.
    pub plan_build: Duration,
    /// Loader-stage busy time (slab transpose reads).
    pub load_busy: Duration,
    /// Fused-prep busy time (raw counts → sinogram rows).
    pub prep_busy: Duration,
    /// Reconstruction busy time (all worker threads' wall share).
    pub recon_busy: Duration,
    /// Sink-stage busy time (archive writes).
    pub sink_busy: Duration,
    /// Portion of `sink_busy` spent while the recon stage was
    /// simultaneously busy — direct evidence of I/O/compute overlap.
    pub sink_busy_overlapped: Duration,
}

impl PipelineReport {
    pub fn slices_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.slices as f64 / s
        } else {
            0.0
        }
    }

    /// Σ stage-busy / wall. Values above 1.0 are only reachable when
    /// stages genuinely ran concurrently.
    pub fn overlap_ratio(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            (self.load_busy + self.prep_busy + self.recon_busy + self.sink_busy).as_secs_f64()
                / wall
        } else {
            0.0
        }
    }
}

/// Pipeline failure: bad inputs, a reconstruction-plan error, or a sink
/// write error.
#[derive(Debug)]
pub enum PipelineError {
    BadInput(String),
    Recon(TomoError),
    Sink(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::BadInput(m) => write!(f, "bad pipeline input: {m}"),
            PipelineError::Recon(e) => write!(f, "reconstruction error: {e}"),
            PipelineError::Sink(m) => write!(f, "sink error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<TomoError> for PipelineError {
    fn from(e: TomoError) -> Self {
        PipelineError::Recon(e)
    }
}

enum Engine {
    Sirt(IterPlan),
    Fbp(ReconPlan),
}

enum Scratch {
    Sirt(IterScratch),
    Fbp(ReconScratch),
}

impl Engine {
    fn make_scratch(&self) -> Scratch {
        match self {
            Engine::Sirt(p) => Scratch::Sirt(p.make_scratch()),
            Engine::Fbp(p) => Scratch::Fbp(p.make_scratch()),
        }
    }

    fn recon_into(&self, sino: &Sinogram, scratch: &mut Scratch, out: &mut [f32]) {
        match (self, scratch) {
            (Engine::Sirt(p), Scratch::Sirt(s)) => p.sirt_into(sino, s, out),
            (Engine::Fbp(p), Scratch::Fbp(s)) => p.fbp_slice_into(sino, s, out),
            _ => unreachable!("scratch kind always matches engine kind"),
        }
    }
}

/// Default slab height: enough slices to keep the work queue fed on
/// small machines without ballooning the bounded-channel memory.
const DEFAULT_SLAB_ROWS: usize = 4;

/// Reconstruct an entire scan through the overlapped pipeline, fanning
/// the z-ordered output slabs out to every sink.
pub fn run(
    source: &dyn ProjectionSource,
    sinks: &mut [&mut dyn SliceSink],
    cfg: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    let (n_angles, rows, cols) = source.dims();
    if n_angles == 0 || rows == 0 || cols == 0 {
        return Err(PipelineError::BadInput(format!(
            "empty scan: {n_angles} angles, {rows}×{cols} frames"
        )));
    }
    let angles = source.scan_angles();
    if angles.len() != n_angles {
        return Err(PipelineError::BadInput(format!(
            "{} angles for {n_angles} frames",
            angles.len()
        )));
    }
    if source.dark_frame().len() != rows * cols || source.flat_frame().len() != rows * cols {
        return Err(PipelineError::BadInput(
            "dark/flat frame shape mismatch".into(),
        ));
    }
    if cfg.mu_scale <= 0.0 {
        return Err(PipelineError::BadInput(format!(
            "mu_scale {} must be positive",
            cfg.mu_scale
        )));
    }

    let t0 = Instant::now();
    let geom = Geometry {
        angles,
        n_det: cols,
        center: (cols as f64 - 1.0) / 2.0,
    };
    let engine = match &cfg.recon {
        ReconKind::Sirt(c) => Engine::Sirt(IterPlan::new(&geom, c)?),
        ReconKind::Fbp(c) => Engine::Fbp(ReconPlan::new(&geom, c)?),
    };
    let prep = RawPrepPlan::new(
        source.dark_frame(),
        source.flat_frame(),
        rows,
        cols,
        cfg.mu_scale,
        cfg.zinger_threshold,
    )
    .with_post(crate::prep::SinoPostPlan::new(
        cols,
        cfg.ring_window,
        cfg.paganin_delta_beta,
    ));
    let plan_build = t0.elapsed();

    let slab_rows = if cfg.slab_rows == 0 {
        DEFAULT_SLAB_ROWS
    } else {
        cfg.slab_rows
    }
    .min(rows);
    let queue_depth = cfg.queue_depth.max(1);
    let n_slabs = rows.div_ceil(slab_rows);

    for sink in sinks.iter_mut() {
        sink.begin(cols, cols, rows).map_err(PipelineError::Sink)?;
    }

    let mut report = PipelineReport {
        slices: rows,
        slabs: n_slabs,
        plan_build,
        ..Default::default()
    };

    // Stage-occupancy gauges double as the overlap detector: the sink
    // samples `recon` occupancy instead of a private flag, so the same
    // signal that feeds fleet dashboards drives `sink_busy_overlapped`.
    let private;
    let registry: &Registry = match &cfg.registry {
        Some(r) => r.as_ref(),
        None => {
            private = Registry::new();
            &private
        }
    };
    let stage_active = |s: &str| registry.gauge("pipeline_stage_active", &[("stage", s)]);
    let load_active = stage_active("load");
    let prep_active = stage_active("prep");
    let recon_active = stage_active("recon");
    let sink_active = stage_active("sink");
    let stage_busy = |s: &str| registry.histogram("pipeline_stage_busy_us", &[("stage", s)]);
    let load_busy_us = stage_busy("load");
    let prep_busy_us = stage_busy("prep");
    let recon_busy_us = stage_busy("recon");
    let sink_busy_us = stage_busy("sink");
    let raw_depth = registry.gauge("pipeline_queue_depth", &[("queue", "raw")]);
    let out_depth = registry.gauge("pipeline_queue_depth", &[("queue", "out")]);
    let slabs_total = registry.counter("pipeline_slabs_total", &[]);
    let slices_total = registry.counter("pipeline_slices_total", &[]);
    let frame_reads_total = registry.counter("pipeline_frame_reads_total", &[]);
    let sink_busy_total = registry.counter("pipeline_sink_busy_us_total", &[]);
    let sink_overlap_total = registry.counter("pipeline_sink_overlapped_us_total", &[]);

    let (prep_busy, recon_busy, load_busy, sink_result) = std::thread::scope(|scope| {
        // raw slabs: (first detector row, n slices, u16 data laid out as
        // [slice][angle][col] — each slice's block is already a sinogram
        // worth of raw counts)
        let (raw_tx, raw_rx) = sync_channel::<(usize, usize, Vec<u16>)>(queue_depth);
        // reconstructed slabs: (z0, n slices, f32 slices)
        let (out_tx, out_rx) = sync_channel::<(usize, usize, Vec<f32>)>(queue_depth);

        let loader = {
            let (load_active, load_busy_us) = (load_active.clone(), load_busy_us.clone());
            let (raw_depth, frame_reads_total) = (raw_depth.clone(), frame_reads_total.clone());
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                for slab in 0..n_slabs {
                    load_active.inc();
                    let t = Instant::now();
                    let r0 = slab * slab_rows;
                    let r1 = (r0 + slab_rows).min(rows);
                    let k = r1 - r0;
                    let mut raw = vec![0u16; k * n_angles * cols];
                    for a in 0..n_angles {
                        let frame = source.frame(a);
                        for r in r0..r1 {
                            let src = &frame[r * cols..(r + 1) * cols];
                            let dst = ((r - r0) * n_angles + a) * cols;
                            raw[dst..dst + cols].copy_from_slice(src);
                        }
                    }
                    let dt = t.elapsed();
                    busy += dt;
                    load_busy_us.record_secs(dt.as_secs_f64());
                    frame_reads_total.add(n_angles as u64);
                    load_active.dec();
                    if raw_tx.send((r0, k, raw)).is_err() {
                        break; // downstream failed and hung up
                    }
                    raw_depth.inc();
                }
                busy
            })
        };

        let sink_thread = {
            let (recon_active, sink_active) = (recon_active.clone(), sink_active.clone());
            let (sink_busy_us, out_depth) = (sink_busy_us.clone(), out_depth.clone());
            let (sink_busy_total, sink_overlap_total) =
                (sink_busy_total.clone(), sink_overlap_total.clone());
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                let mut overlapped = Duration::ZERO;
                while let Ok((z0, k, data)) = out_rx.recv() {
                    out_depth.dec();
                    // recon occupancy is sampled at both ends of the
                    // write: a short write that starts in the prep gap
                    // between slabs but finishes under the next slab's
                    // reconstruction still counts as overlapped
                    let mut concurrent = recon_active.get() > 0;
                    sink_active.inc();
                    let t = Instant::now();
                    let mut failed = None;
                    for sink in sinks.iter_mut() {
                        if let Err(e) = sink.write_slab(z0, k, &data) {
                            failed = Some(e);
                            break;
                        }
                    }
                    let dt = t.elapsed();
                    sink_active.dec();
                    if let Some(e) = failed {
                        return (busy, overlapped, Err(e));
                    }
                    concurrent |= recon_active.get() > 0;
                    busy += dt;
                    sink_busy_us.record_secs(dt.as_secs_f64());
                    sink_busy_total.add(dt.as_micros() as u64);
                    if concurrent {
                        overlapped += dt;
                        sink_overlap_total.add(dt.as_micros() as u64);
                    }
                }
                let t = Instant::now();
                for sink in sinks.iter_mut() {
                    if let Err(e) = sink.finish() {
                        return (busy + t.elapsed(), overlapped, Err(e));
                    }
                }
                let dt = t.elapsed();
                busy += dt;
                sink_busy_total.add(dt.as_micros() as u64);
                (busy, overlapped, Ok(()))
            })
        };

        // Compute stage runs on the caller thread: fused prep, then
        // slice-parallel reconstruction over the shared plan.
        let mut prep_busy = Duration::ZERO;
        let mut recon_busy = Duration::ZERO;
        let mut post_scratch = prep.make_post_scratch();
        while let Ok((r0, k, raw)) = raw_rx.recv() {
            raw_depth.dec();
            prep_active.inc();
            let t = Instant::now();
            let mut sinos: Vec<Sinogram> = Vec::with_capacity(k);
            for i in 0..k {
                let mut sino = Sinogram::zeros(n_angles, cols);
                let base = i * n_angles * cols;
                for a in 0..n_angles {
                    let off = base + a * cols;
                    prep.prep_angle_row(r0 + i, &raw[off..off + cols], sino.row_mut(a));
                }
                if !prep.post_is_empty() {
                    prep.finish_sinogram(&mut sino, &mut post_scratch);
                }
                sinos.push(sino);
            }
            let dt = t.elapsed();
            prep_busy += dt;
            prep_busy_us.record_secs(dt.as_secs_f64());
            prep_active.dec();

            recon_active.inc();
            let t = Instant::now();
            let mut out = vec![0.0f32; k * cols * cols];
            out.par_chunks_mut(cols * cols).enumerate().for_each_init(
                || engine.make_scratch(),
                |scratch, (i, slice)| engine.recon_into(&sinos[i], scratch, slice),
            );
            let dt = t.elapsed();
            recon_active.dec();
            recon_busy += dt;
            recon_busy_us.record_secs(dt.as_secs_f64());
            slabs_total.inc();
            slices_total.add(k as u64);

            if out_tx.send((r0, k, out)).is_err() {
                break; // sink failed and hung up
            }
            out_depth.inc();
        }
        drop(out_tx);
        // If the sink failed and we broke out early, the loader may be
        // blocked on a full channel; dropping the receiver unblocks it.
        drop(raw_rx);

        let load_busy = loader.join().expect("loader thread panicked");
        let (sink_busy, sink_overlapped, sink_result) =
            sink_thread.join().expect("sink thread panicked");
        report.sink_busy = sink_busy;
        report.sink_busy_overlapped = sink_overlapped;
        (prep_busy, recon_busy, load_busy, sink_result)
    });

    report.load_busy = load_busy;
    report.prep_busy = prep_busy;
    report.recon_busy = recon_busy;
    report.wall = t0.elapsed();
    sink_result.map_err(PipelineError::Sink)?;
    Ok(report)
}

/// A [`SliceSink`] that assembles the reconstructed slices into an
/// in-memory volume (`data` laid out slice-major, matching
/// `Volume`-style `(z·ny + y)·nx + x` indexing).
#[derive(Debug, Default)]
pub struct VolumeSink {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f32>,
}

impl VolumeSink {
    pub fn new() -> VolumeSink {
        VolumeSink::default()
    }

    /// `(nx, ny, nz)` once `begin` has run.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Consume the sink, yielding the collected voxel data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

impl SliceSink for VolumeSink {
    fn begin(&mut self, nx: usize, ny: usize, nz: usize) -> Result<(), String> {
        self.nx = nx;
        self.ny = ny;
        self.nz = nz;
        self.data = vec![0.0; nx * ny * nz];
        Ok(())
    }

    fn write_slab(&mut self, z0: usize, n_slices: usize, data: &[f32]) -> Result<(), String> {
        let slice = self.nx * self.ny;
        if (z0 + n_slices) > self.nz || data.len() != n_slices * slice {
            return Err(format!(
                "slab [{z0}, {}) out of range for nz {}",
                z0 + n_slices,
                self.nz
            ));
        }
        self.data[z0 * slice..(z0 + n_slices) * slice].copy_from_slice(data);
        Ok(())
    }

    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny in-memory scan with deterministic raw counts.
    struct MemScan {
        n_angles: usize,
        rows: usize,
        cols: usize,
        angles: Vec<f64>,
        dark: Vec<u16>,
        flat: Vec<u16>,
        frames: Vec<Vec<u16>>,
    }

    impl MemScan {
        fn synthetic(n_angles: usize, rows: usize, cols: usize) -> MemScan {
            let angles = (0..n_angles)
                .map(|a| a as f64 * std::f64::consts::PI / n_angles as f64)
                .collect();
            let dark = vec![100u16; rows * cols];
            let flat = vec![1000u16; rows * cols];
            let frames = (0..n_angles)
                .map(|a| {
                    (0..rows * cols)
                        .map(|i| 150 + ((a * 31 + i * 7) % 800) as u16)
                        .collect()
                })
                .collect();
            MemScan {
                n_angles,
                rows,
                cols,
                angles,
                dark,
                flat,
                frames,
            }
        }
    }

    impl ProjectionSource for MemScan {
        fn dims(&self) -> (usize, usize, usize) {
            (self.n_angles, self.rows, self.cols)
        }
        fn scan_angles(&self) -> Vec<f64> {
            self.angles.clone()
        }
        fn dark_frame(&self) -> &[u16] {
            &self.dark
        }
        fn flat_frame(&self) -> &[u16] {
            &self.flat
        }
        fn frame(&self, a: usize) -> &[u16] {
            &self.frames[a]
        }
    }

    fn run_volume(scan: &MemScan, cfg: &PipelineConfig) -> (Vec<f32>, PipelineReport) {
        let mut sink = VolumeSink::new();
        let report = {
            let mut sinks: [&mut dyn SliceSink; 1] = [&mut sink];
            run(scan, &mut sinks, cfg).expect("pipeline run")
        };
        (sink.into_data(), report)
    }

    #[test]
    fn pipeline_matches_slicewise_reference_fbp() {
        let scan = MemScan::synthetic(12, 6, 24);
        let cfg = PipelineConfig {
            recon: ReconKind::Fbp(FbpConfig::default()),
            mu_scale: 0.04,
            zinger_threshold: Some(0.5),
            slab_rows: 4,
            queue_depth: 2,
            ..Default::default()
        };
        let (vol, report) = run_volume(&scan, &cfg);
        assert_eq!(report.slices, 6);
        assert_eq!(report.slabs, 2);

        // per-slice reference: same prep plan, same recon plan, serial
        let geom = Geometry {
            angles: scan.scan_angles(),
            n_det: scan.cols,
            center: (scan.cols as f64 - 1.0) / 2.0,
        };
        let prep = RawPrepPlan::new(
            &scan.dark,
            &scan.flat,
            scan.rows,
            scan.cols,
            cfg.mu_scale,
            cfg.zinger_threshold,
        );
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        let mut scratch = plan.make_scratch();
        for r in 0..scan.rows {
            let mut sino = Sinogram::zeros(scan.n_angles, scan.cols);
            for a in 0..scan.n_angles {
                let f = &scan.frames[a][r * scan.cols..(r + 1) * scan.cols];
                prep.prep_angle_row(r, f, sino.row_mut(a));
            }
            let img = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
            let got = &vol[r * scan.cols * scan.cols..(r + 1) * scan.cols * scan.cols];
            assert_eq!(img.data.as_slice(), got, "slice {r}");
        }
    }

    #[test]
    fn slab_size_does_not_change_output() {
        let scan = MemScan::synthetic(10, 5, 20);
        let base_cfg = PipelineConfig {
            recon: ReconKind::Sirt(IterConfig {
                iterations: 5,
                ..Default::default()
            }),
            mu_scale: 0.04,
            zinger_threshold: Some(0.5),
            slab_rows: 1,
            queue_depth: 1,
            ..Default::default()
        };
        let (v1, _) = run_volume(&scan, &base_cfg);
        for slab_rows in [2, 3, 5] {
            let cfg = PipelineConfig {
                slab_rows,
                queue_depth: 3,
                ..base_cfg.clone()
            };
            let (v, _) = run_volume(&scan, &cfg);
            assert_eq!(v1, v, "slab_rows {slab_rows} changed the output");
        }
    }

    #[test]
    fn ring_and_paganin_flow_through_the_fused_post_stage() {
        let scan = MemScan::synthetic(12, 4, 24);
        let cfg = PipelineConfig {
            recon: ReconKind::Fbp(FbpConfig::default()),
            mu_scale: 0.04,
            zinger_threshold: Some(0.5),
            ring_window: Some(5),
            paganin_delta_beta: Some(30.0),
            slab_rows: 2,
            queue_depth: 2,
            registry: None,
        };
        let (vol, _) = run_volume(&scan, &cfg);

        // per-slice reference: same prep plan + the unfused
        // remove_stripes → paganin_filter chain, then the same recon plan
        let geom = Geometry {
            angles: scan.scan_angles(),
            n_det: scan.cols,
            center: (scan.cols as f64 - 1.0) / 2.0,
        };
        let prep = RawPrepPlan::new(
            &scan.dark,
            &scan.flat,
            scan.rows,
            scan.cols,
            cfg.mu_scale,
            cfg.zinger_threshold,
        );
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        let mut scratch = plan.make_scratch();
        for r in 0..scan.rows {
            let mut sino = Sinogram::zeros(scan.n_angles, scan.cols);
            for a in 0..scan.n_angles {
                let f = &scan.frames[a][r * scan.cols..(r + 1) * scan.cols];
                prep.prep_angle_row(r, f, sino.row_mut(a));
            }
            let sino = crate::prep::remove_stripes(&sino, 5);
            let sino = crate::prep::paganin_filter(&sino, 30.0);
            let img = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
            let got = &vol[r * scan.cols * scan.cols..(r + 1) * scan.cols * scan.cols];
            let rmse = (img
                .data
                .iter()
                .zip(got.iter())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / img.data.len() as f64)
                .sqrt();
            assert!(rmse < 1e-5, "slice {r}: fused post-stage rmse {rmse}");
        }
    }

    #[test]
    fn sink_error_propagates() {
        struct FailingSink;
        impl SliceSink for FailingSink {
            fn begin(&mut self, _: usize, _: usize, _: usize) -> Result<(), String> {
                Ok(())
            }
            fn write_slab(&mut self, _: usize, _: usize, _: &[f32]) -> Result<(), String> {
                Err("disk full".into())
            }
            fn finish(&mut self) -> Result<(), String> {
                Ok(())
            }
        }
        let scan = MemScan::synthetic(6, 4, 16);
        let mut sink = FailingSink;
        let mut sinks: [&mut dyn SliceSink; 1] = [&mut sink];
        let err = run(&scan, &mut sinks, &PipelineConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Sink(m) if m.contains("disk full")));
    }

    #[test]
    fn empty_scan_is_rejected() {
        let mut scan = MemScan::synthetic(4, 2, 8);
        scan.n_angles = 0;
        scan.frames.clear();
        scan.angles.clear();
        let mut sink = VolumeSink::new();
        let mut sinks: [&mut dyn SliceSink; 1] = [&mut sink];
        assert!(matches!(
            run(&scan, &mut sinks, &PipelineConfig::default()),
            Err(PipelineError::BadInput(_))
        ));
    }

    #[test]
    fn registry_sees_stage_occupancy_and_throughput() {
        let scan = MemScan::synthetic(16, 6, 32);
        let registry = Arc::new(Registry::new());
        let (_, report) = run_volume(
            &scan,
            &PipelineConfig {
                mu_scale: 0.04,
                slab_rows: 2,
                registry: Some(registry.clone()),
                ..Default::default()
            },
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pipeline_slabs_total"], 3);
        assert_eq!(snap.counters["pipeline_slices_total"], 6);
        assert_eq!(snap.counters["pipeline_frame_reads_total"], 3 * 16);
        // every stage went busy and idle again; queues drained
        for stage in ["load", "prep", "recon", "sink"] {
            let key = format!("pipeline_stage_active{{stage=\"{stage}\"}}");
            assert_eq!(snap.gauges[&key], 0, "{stage} occupancy drained");
            let busy = format!("pipeline_stage_busy_us{{stage=\"{stage}\"}}");
            assert!(snap.histograms[&busy].count >= 3, "{stage} busy samples");
        }
        assert_eq!(snap.gauges["pipeline_queue_depth{queue=\"raw\"}"], 0);
        assert_eq!(snap.gauges["pipeline_queue_depth{queue=\"out\"}"], 0);
        // the counters re-derive the report's overlap accounting
        let busy_us = snap.counters["pipeline_sink_busy_us_total"];
        let overlap_us = snap.counters["pipeline_sink_overlapped_us_total"];
        assert!(overlap_us <= busy_us);
        assert_eq!(overlap_us, report.sink_busy_overlapped.as_micros() as u64);
    }

    #[test]
    fn report_accounts_all_stages() {
        let scan = MemScan::synthetic(16, 6, 32);
        let (_, report) = run_volume(
            &scan,
            &PipelineConfig {
                mu_scale: 0.04,
                ..Default::default()
            },
        );
        assert!(report.wall > Duration::ZERO);
        assert!(report.recon_busy > Duration::ZERO);
        assert!(report.slices_per_sec() > 0.0);
        assert!(report.sink_busy_overlapped <= report.sink_busy);
    }
}
