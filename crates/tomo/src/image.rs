//! Core array types: 2D images, sinograms, and 3D volumes.
//!
//! All storage is `f32` row-major `Vec`s — the precision the paper's
//! reconstructed volumes use (2160×2560×2560 32-bit ≈ 50 GB).

use serde::{Deserialize, Serialize};

/// A 2D image, `height` rows × `width` columns, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    pub data: Vec<f32>,
}

impl Image {
    /// Zero-filled image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Build from parts.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "image buffer size mismatch");
        Image {
            width,
            height,
            data,
        }
    }

    /// Square zero image.
    pub fn square(n: usize) -> Self {
        Self::zeros(n, n)
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [f32] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Bilinear sample at fractional coordinates; returns 0 outside.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> f64 {
        if x < 0.0 || y < 0.0 {
            return 0.0;
        }
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        if x0 + 1 >= self.width || y0 + 1 >= self.height {
            return 0.0;
        }
        let fx = x - x0 as f64;
        let fy = y - y0 as f64;
        let v00 = self.get(x0, y0) as f64;
        let v10 = self.get(x0 + 1, y0) as f64;
        let v01 = self.get(x0, y0 + 1) as f64;
        let v11 = self.get(x0 + 1, y0 + 1) as f64;
        v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy
    }

    /// Minimum and maximum pixel values (0,0 for an empty image).
    pub fn min_max(&self) -> (f32, f32) {
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for &v in &self.data {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        if self.data.is_empty() {
            (0.0, 0.0)
        } else {
            (mn, mx)
        }
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Downsample by integer factor with box averaging.
    pub fn downsample(&self, factor: usize) -> Image {
        assert!(factor >= 1);
        if factor == 1 {
            return self.clone();
        }
        let w = (self.width / factor).max(1);
        let h = (self.height / factor).max(1);
        let mut out = Image::zeros(w, h);
        for oy in 0..h {
            for ox in 0..w {
                let mut acc = 0.0f64;
                let mut cnt = 0u32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let x = ox * factor + dx;
                        let y = oy * factor + dy;
                        if x < self.width && y < self.height {
                            acc += self.get(x, y) as f64;
                            cnt += 1;
                        }
                    }
                }
                out.set(ox, oy, (acc / cnt.max(1) as f64) as f32);
            }
        }
        out
    }
}

/// A parallel-beam sinogram: `n_angles` rows × `n_det` detector bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sinogram {
    pub n_angles: usize,
    pub n_det: usize,
    pub data: Vec<f32>,
}

impl Sinogram {
    pub fn zeros(n_angles: usize, n_det: usize) -> Self {
        Sinogram {
            n_angles,
            n_det,
            data: vec![0.0; n_angles * n_det],
        }
    }

    pub fn from_vec(n_angles: usize, n_det: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n_angles * n_det,
            "sinogram buffer size mismatch"
        );
        Sinogram {
            n_angles,
            n_det,
            data,
        }
    }

    #[inline]
    pub fn row(&self, a: usize) -> &[f32] {
        &self.data[a * self.n_det..(a + 1) * self.n_det]
    }

    #[inline]
    pub fn row_mut(&mut self, a: usize) -> &mut [f32] {
        &mut self.data[a * self.n_det..(a + 1) * self.n_det]
    }

    #[inline]
    pub fn get(&self, a: usize, t: usize) -> f32 {
        self.data[a * self.n_det + t]
    }

    #[inline]
    pub fn set(&mut self, a: usize, t: usize, v: f32) {
        self.data[a * self.n_det + t] = v;
    }

    /// Linear interpolation along the detector axis of row `a`; clamps to
    /// the row edges.
    pub fn sample_row(&self, a: usize, t: f64) -> f64 {
        let row = self.row(a);
        if row.is_empty() {
            return 0.0;
        }
        if t <= 0.0 {
            return row[0] as f64;
        }
        let last = (row.len() - 1) as f64;
        if t >= last {
            return row[row.len() - 1] as f64;
        }
        let i = t.floor() as usize;
        let f = t - i as f64;
        row[i] as f64 * (1.0 - f) + row[i + 1] as f64 * f
    }
}

/// A 3D volume: `nz` slices of `ny` rows × `nx` columns, slice-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volume {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<f32>,
}

impl Volume {
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Volume {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[(z * self.ny + y) * self.nx + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        self.data[(z * self.ny + y) * self.nx + x] = v;
    }

    /// Borrow slice `z` as an [`Image`]-shaped view (copied).
    pub fn slice_xy(&self, z: usize) -> Image {
        let start = z * self.nx * self.ny;
        Image::from_vec(
            self.nx,
            self.ny,
            self.data[start..start + self.nx * self.ny].to_vec(),
        )
    }

    /// Orthogonal slice in the XZ plane at row `y`.
    pub fn slice_xz(&self, y: usize) -> Image {
        let mut img = Image::zeros(self.nx, self.nz);
        for z in 0..self.nz {
            for x in 0..self.nx {
                img.set(x, z, self.get(x, y, z));
            }
        }
        img
    }

    /// Orthogonal slice in the YZ plane at column `x`.
    pub fn slice_yz(&self, x: usize) -> Image {
        let mut img = Image::zeros(self.ny, self.nz);
        for z in 0..self.nz {
            for y in 0..self.ny {
                img.set(y, z, self.get(x, y, z));
            }
        }
        img
    }

    /// Overwrite slice `z` from an image of matching shape.
    pub fn set_slice_xy(&mut self, z: usize, img: &Image) {
        assert_eq!((img.width, img.height), (self.nx, self.ny));
        let start = z * self.nx * self.ny;
        self.data[start..start + self.nx * self.ny].copy_from_slice(&img.data);
    }

    /// Total voxel count.
    pub fn voxels(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Size in bytes at f32 precision.
    pub fn nbytes(&self) -> u64 {
        (self.voxels() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_indexing_is_row_major() {
        let mut img = Image::zeros(3, 2);
        img.set(2, 1, 7.0);
        assert_eq!(img.data[5], 7.0);
        assert_eq!(img.get(2, 1), 7.0);
        assert_eq!(img.row(1), &[0.0, 0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_validates_len() {
        Image::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn bilinear_interpolates_linearly() {
        let img = Image::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(img.sample_bilinear(0.5, 0.0), 0.5);
        assert_eq!(img.sample_bilinear(0.0, 0.5), 1.0);
        assert_eq!(img.sample_bilinear(0.5, 0.5), 1.5);
        assert_eq!(img.sample_bilinear(-1.0, 0.0), 0.0);
        assert_eq!(img.sample_bilinear(5.0, 0.0), 0.0);
    }

    #[test]
    fn downsample_box_averages() {
        let img = Image::from_vec(4, 2, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
        let ds = img.downsample(2);
        assert_eq!((ds.width, ds.height), (2, 1));
        assert_eq!(ds.data, vec![5.0, 9.0]);
    }

    #[test]
    fn sinogram_row_sampling_clamps() {
        let s = Sinogram::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.sample_row(0, -1.0), 1.0);
        assert_eq!(s.sample_row(0, 1.5), 2.5);
        assert_eq!(s.sample_row(0, 99.0), 4.0);
    }

    #[test]
    fn volume_orthogonal_slices_agree() {
        let mut v = Volume::zeros(3, 4, 5);
        v.set(1, 2, 3, 42.0);
        assert_eq!(v.slice_xy(3).get(1, 2), 42.0);
        assert_eq!(v.slice_xz(2).get(1, 3), 42.0);
        assert_eq!(v.slice_yz(1).get(2, 3), 42.0);
    }

    #[test]
    fn volume_set_slice_roundtrips() {
        let mut v = Volume::zeros(2, 2, 2);
        let img = Image::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        v.set_slice_xy(1, &img);
        assert_eq!(v.slice_xy(1), img);
        assert_eq!(v.slice_xy(0).data, vec![0.0; 4]);
    }

    #[test]
    fn volume_nbytes_matches_f32() {
        let v = Volume::zeros(10, 10, 10);
        assert_eq!(v.nbytes(), 4000);
    }

    #[test]
    fn image_min_max_mean() {
        let img = Image::from_vec(2, 2, vec![1.0, -2.0, 3.0, 6.0]);
        assert_eq!(img.min_max(), (-2.0, 6.0));
        assert_eq!(img.mean(), 2.0);
    }
}
