//! Ramp filtering of sinogram rows for filtered back projection.
//!
//! The ramp is built in the spatial domain as the band-limited kernel of
//! Kak & Slaney (h(0)=1/4, h(odd n)=−1/(πn)², h(even n)=0) and transformed
//! with the in-house FFT; this gets the DC term right and avoids the
//! cupping artifact of a naive `|ω|` ramp. Apodizing windows mirror the
//! TomoPy filter family.

use crate::fft::{fft, next_pow2, Complex, FftPlan};
use crate::image::Sinogram;
use serde::{Deserialize, Serialize};

/// Apodizing window applied on top of the ramp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FilterKind {
    /// Pure band-limited ramp (Ram-Lak). Sharpest, noisiest.
    RamLak,
    /// Shepp-Logan: ramp × sinc. TomoPy's default; good noise/resolution
    /// trade-off, used by the streaming reconstructions.
    #[default]
    SheppLogan,
    /// Ramp × cosine.
    Cosine,
    /// Ramp × Hamming window.
    Hamming,
    /// Ramp × Hann window. Smoothest of the classic windows.
    Hann,
    /// Ramp × Butterworth low-pass (order 2, cutoff 0.5 of Nyquist).
    Butterworth,
    /// No filtering at all — plain back projection (used to demonstrate why
    /// filtering matters).
    None,
}

impl FilterKind {
    /// All selectable filters (handy for sweeps and CLI parsing).
    pub const ALL: [FilterKind; 7] = [
        FilterKind::RamLak,
        FilterKind::SheppLogan,
        FilterKind::Cosine,
        FilterKind::Hamming,
        FilterKind::Hann,
        FilterKind::Butterworth,
        FilterKind::None,
    ];

    /// Parse from the names TomoPy uses.
    pub fn parse(name: &str) -> Option<FilterKind> {
        match name.to_ascii_lowercase().as_str() {
            "ramlak" | "ram-lak" | "ramp" => Some(FilterKind::RamLak),
            "shepp" | "shepp-logan" | "shepp_logan" | "parzen" => Some(FilterKind::SheppLogan),
            "cosine" => Some(FilterKind::Cosine),
            "hamming" => Some(FilterKind::Hamming),
            "hann" | "hanning" => Some(FilterKind::Hann),
            "butterworth" => Some(FilterKind::Butterworth),
            "none" => Some(FilterKind::None),
            _ => None,
        }
    }

    /// Window gain at normalized frequency `w ∈ [0, 1]` (1 = Nyquist).
    fn window(self, w: f64) -> f64 {
        use std::f64::consts::PI;
        match self {
            FilterKind::RamLak | FilterKind::None => 1.0,
            FilterKind::SheppLogan => {
                if w == 0.0 {
                    1.0
                } else {
                    let x = PI * w / 2.0;
                    x.sin() / x
                }
            }
            FilterKind::Cosine => (PI * w / 2.0).cos(),
            FilterKind::Hamming => 0.54 + 0.46 * (PI * w).cos(),
            FilterKind::Hann => 0.5 * (1.0 + (PI * w).cos()),
            FilterKind::Butterworth => {
                let cutoff = 0.5;
                1.0 / (1.0 + (w / cutoff).powi(4))
            }
        }
    }

    /// Frequency response of the full filter (ramp × window) for an FFT of
    /// length `pad` (power of two). Returns one real gain per FFT bin.
    pub fn response(self, pad: usize) -> Vec<f64> {
        assert!(pad.is_power_of_two());
        if self == FilterKind::None {
            return vec![1.0; pad];
        }
        // Band-limited ramp kernel in the spatial domain, wrapped.
        let mut h = vec![Complex::ZERO; pad];
        h[0] = Complex::from_re(0.25);
        let mut n = 1usize;
        while n <= pad / 2 {
            if n % 2 == 1 {
                let v = -1.0 / (std::f64::consts::PI * n as f64).powi(2);
                h[n] = Complex::from_re(v);
                h[pad - n] = Complex::from_re(v);
            }
            n += 1;
        }
        fft(&mut h);
        (0..pad)
            .map(|k| {
                let f = if k <= pad / 2 { k } else { pad - k } as f64 / pad as f64;
                let w = 2.0 * f; // normalized to Nyquist
                                 // ramp response is real and non-negative by construction;
                                 // its magnitude is ≈ |f| cycles/sample (0.5 at Nyquist)
                h[k].re.max(0.0) * self.window(w)
            })
            .collect()
    }
}

/// Cached filtering state for one `(FilterKind, n_det)` pair: the padded
/// frequency response and a table-driven [`FftPlan`], built once and
/// reused for every row of every slice. [`crate::plan::ReconPlan`]
/// embeds one of these; [`filter_sinogram`] builds a throwaway one.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    n_det: usize,
    pad: usize,
    /// One real gain per FFT bin; empty for [`FilterKind::None`].
    response: Vec<f64>,
    /// `response` with each gain duplicated (`[g0, g0, g1, g1, ...]`) so
    /// the spectrum multiply can run two f64 lanes per complex bin.
    resp2: Vec<f64>,
    fft: FftPlan,
    path: crate::simd::SimdPath,
}

impl FilterPlan {
    pub fn new(kind: FilterKind, n_det: usize) -> FilterPlan {
        // zero-pad to at least twice the detector width to avoid
        // circular-convolution wraparound
        let pad = next_pow2(2 * n_det);
        let response = if kind == FilterKind::None {
            Vec::new()
        } else {
            kind.response(pad)
        };
        let resp2 = response.iter().flat_map(|&g| [g, g]).collect();
        FilterPlan {
            n_det,
            pad,
            response,
            resp2,
            fft: FftPlan::new(pad),
            path: crate::simd::detect(),
        }
    }

    /// Force a specific SIMD path (clamped to host capability), also
    /// propagated to the embedded FFT plan. Used by the benches and the
    /// SIMD-vs-scalar equivalence gates.
    pub fn with_simd_path(mut self, path: crate::simd::SimdPath) -> FilterPlan {
        self.path = path.clamp_to_host();
        self.fft = self.fft.with_simd_path(path);
        self
    }

    /// Which SIMD path the spectrum multiply dispatches to.
    pub fn simd_path(&self) -> crate::simd::SimdPath {
        self.path
    }

    /// Padded FFT length; the scratch buffer must be exactly this long.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Allocate a staging buffer compatible with [`FilterPlan::filter_rows`].
    pub fn make_buf(&self) -> Vec<Complex> {
        vec![Complex::ZERO; self.pad]
    }

    /// Filter every row of `sino` into `out` (same shape), packing two
    /// real rows per complex FFT: the response is real, so scaling the
    /// packed spectrum filters both rows at once and the inverse FFT
    /// leaves row `a` in the real parts and row `a+1` in the imaginary
    /// parts. `cbuf` is caller-owned scratch (reused across calls); only
    /// its padded tail is cleared — the head is overwritten by row data.
    pub fn filter_rows(&self, sino: &Sinogram, cbuf: &mut [Complex], out: &mut Sinogram) {
        assert_eq!(sino.n_det, self.n_det, "detector width mismatch");
        assert_eq!((out.n_angles, out.n_det), (sino.n_angles, sino.n_det));
        assert_eq!(cbuf.len(), self.pad, "scratch buffer length mismatch");
        if self.response.is_empty() {
            out.data.copy_from_slice(&sino.data);
            return;
        }
        let nd = sino.n_det;
        let mut a = 0usize;
        while a < sino.n_angles {
            let packed = a + 1 < sino.n_angles;
            let r0 = sino.row(a);
            if packed {
                let r1 = sino.row(a + 1);
                for ((c, &v0), &v1) in cbuf.iter_mut().zip(r0.iter()).zip(r1.iter()) {
                    *c = Complex::new(v0 as f64, v1 as f64);
                }
            } else {
                for (c, &v0) in cbuf.iter_mut().zip(r0.iter()) {
                    *c = Complex::from_re(v0 as f64);
                }
            }
            for c in cbuf[nd..].iter_mut() {
                *c = Complex::ZERO;
            }
            self.fft.forward(cbuf);
            crate::simd::scale_spectrum(self.path, cbuf, &self.resp2);
            self.fft.inverse(cbuf);
            for (o, c) in out.row_mut(a).iter_mut().zip(cbuf.iter()) {
                *o = c.re as f32;
            }
            if packed {
                for (o, c) in out.row_mut(a + 1).iter_mut().zip(cbuf.iter()) {
                    *o = c.im as f32;
                }
                a += 2;
            } else {
                a += 1;
            }
        }
    }
}

/// Filter every row of a sinogram, returning a new sinogram of the same
/// shape. Convenience wrapper that builds a [`FilterPlan`] per call;
/// hot loops should hold a plan (or a [`crate::plan::ReconPlan`]) and
/// reuse its scratch instead.
pub fn filter_sinogram(sino: &Sinogram, kind: FilterKind) -> Sinogram {
    if kind == FilterKind::None {
        return sino.clone();
    }
    let plan = FilterPlan::new(kind, sino.n_det);
    let mut buf = plan.make_buf();
    let mut out = Sinogram::zeros(sino.n_angles, sino.n_det);
    plan.filter_rows(sino, &mut buf, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_zero_at_dc_and_grows() {
        let r = FilterKind::RamLak.response(256);
        assert!(r[0].abs() < 5e-3, "DC gain {}", r[0]);
        // monotone growth up to Nyquist for the pure ramp
        assert!(r[64] > r[16]);
        assert!(r[128] > r[64]);
        // symmetric
        for k in 1..128 {
            assert!((r[k] - r[256 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn ramp_gain_tracks_frequency() {
        // ramp response should be ≈ |f| in cycles/sample
        let pad = 512;
        let r = FilterKind::RamLak.response(pad);
        for k in [8usize, 32, 64, 128] {
            let expected = k as f64 / pad as f64;
            assert!(
                (r[k] - expected).abs() / expected < 0.05,
                "bin {k}: {} vs {expected}",
                r[k]
            );
        }
    }

    #[test]
    fn windows_attenuate_high_frequencies() {
        let pad = 256;
        let ram = FilterKind::RamLak.response(pad);
        for kind in [
            FilterKind::SheppLogan,
            FilterKind::Cosine,
            FilterKind::Hamming,
            FilterKind::Hann,
            FilterKind::Butterworth,
        ] {
            let r = kind.response(pad);
            // near Nyquist every window is below the raw ramp
            assert!(
                r[pad / 2] < ram[pad / 2],
                "{kind:?} does not attenuate at Nyquist"
            );
            // near DC they are all close to the ramp
            assert!((r[2] - ram[2]).abs() / ram[2].max(1e-12) < 0.2, "{kind:?}");
        }
    }

    #[test]
    fn filtering_removes_mean() {
        // ramp filter kills DC: the interior of a constant row filters to
        // ~zero (the row ends see the box edges, which is physical)
        let mut sino = Sinogram::zeros(1, 64);
        sino.row_mut(0).iter_mut().for_each(|v| *v = 5.0);
        let f = filter_sinogram(&sino, FilterKind::SheppLogan);
        let peak = f.row(0)[16..48].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(
            peak < 0.25,
            "constant-row interior should be near zero, peak {peak}"
        );
    }

    #[test]
    fn none_filter_is_identity() {
        let mut sino = Sinogram::zeros(2, 16);
        for (i, v) in sino.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let f = filter_sinogram(&sino, FilterKind::None);
        assert_eq!(f, sino);
    }

    #[test]
    fn parse_accepts_tomopy_names() {
        assert_eq!(FilterKind::parse("shepp"), Some(FilterKind::SheppLogan));
        assert_eq!(FilterKind::parse("Ram-Lak"), Some(FilterKind::RamLak));
        assert_eq!(FilterKind::parse("HANN"), Some(FilterKind::Hann));
        assert_eq!(FilterKind::parse("bogus"), None);
    }

    #[test]
    fn filter_preserves_shape() {
        let sino = Sinogram::zeros(7, 33);
        let f = filter_sinogram(&sino, FilterKind::Hamming);
        assert_eq!((f.n_angles, f.n_det), (7, 33));
    }

    #[test]
    fn simd_filter_is_bit_identical_to_scalar_on_odd_widths() {
        use crate::simd::SimdPath;
        // odd detector widths exercise the padded tail and the unpacked
        // final row; the SIMD spectrum multiply must round identically
        for nd in [17usize, 33, 63, 129] {
            let mut sino = Sinogram::zeros(5, nd);
            for (i, v) in sino.data.iter_mut().enumerate() {
                *v = ((i as f32 * 0.37).sin() + 0.1) * 3.0;
            }
            let scalar =
                FilterPlan::new(FilterKind::SheppLogan, nd).with_simd_path(SimdPath::Scalar);
            let wide = FilterPlan::new(FilterKind::SheppLogan, nd).with_simd_path(SimdPath::Avx2);
            let mut buf_a = scalar.make_buf();
            let mut buf_b = wide.make_buf();
            let mut out_a = Sinogram::zeros(5, nd);
            let mut out_b = Sinogram::zeros(5, nd);
            scalar.filter_rows(&sino, &mut buf_a, &mut out_a);
            wide.filter_rows(&sino, &mut buf_b, &mut out_b);
            assert_eq!(out_a.data, out_b.data, "nd={nd} diverged across paths");
        }
    }
}
