//! Ramp filtering of sinogram rows for filtered back projection.
//!
//! The ramp is built in the spatial domain as the band-limited kernel of
//! Kak & Slaney (h(0)=1/4, h(odd n)=−1/(πn)², h(even n)=0) and transformed
//! with the in-house FFT; this gets the DC term right and avoids the
//! cupping artifact of a naive `|ω|` ramp. Apodizing windows mirror the
//! TomoPy filter family.

use crate::fft::{fft, ifft, next_pow2, Complex};
use crate::image::Sinogram;
use serde::{Deserialize, Serialize};

/// Apodizing window applied on top of the ramp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FilterKind {
    /// Pure band-limited ramp (Ram-Lak). Sharpest, noisiest.
    RamLak,
    /// Shepp-Logan: ramp × sinc. TomoPy's default; good noise/resolution
    /// trade-off, used by the streaming reconstructions.
    #[default]
    SheppLogan,
    /// Ramp × cosine.
    Cosine,
    /// Ramp × Hamming window.
    Hamming,
    /// Ramp × Hann window. Smoothest of the classic windows.
    Hann,
    /// Ramp × Butterworth low-pass (order 2, cutoff 0.5 of Nyquist).
    Butterworth,
    /// No filtering at all — plain back projection (used to demonstrate why
    /// filtering matters).
    None,
}

impl FilterKind {
    /// All selectable filters (handy for sweeps and CLI parsing).
    pub const ALL: [FilterKind; 7] = [
        FilterKind::RamLak,
        FilterKind::SheppLogan,
        FilterKind::Cosine,
        FilterKind::Hamming,
        FilterKind::Hann,
        FilterKind::Butterworth,
        FilterKind::None,
    ];

    /// Parse from the names TomoPy uses.
    pub fn parse(name: &str) -> Option<FilterKind> {
        match name.to_ascii_lowercase().as_str() {
            "ramlak" | "ram-lak" | "ramp" => Some(FilterKind::RamLak),
            "shepp" | "shepp-logan" | "shepp_logan" | "parzen" => Some(FilterKind::SheppLogan),
            "cosine" => Some(FilterKind::Cosine),
            "hamming" => Some(FilterKind::Hamming),
            "hann" | "hanning" => Some(FilterKind::Hann),
            "butterworth" => Some(FilterKind::Butterworth),
            "none" => Some(FilterKind::None),
            _ => None,
        }
    }

    /// Window gain at normalized frequency `w ∈ [0, 1]` (1 = Nyquist).
    fn window(self, w: f64) -> f64 {
        use std::f64::consts::PI;
        match self {
            FilterKind::RamLak | FilterKind::None => 1.0,
            FilterKind::SheppLogan => {
                if w == 0.0 {
                    1.0
                } else {
                    let x = PI * w / 2.0;
                    x.sin() / x
                }
            }
            FilterKind::Cosine => (PI * w / 2.0).cos(),
            FilterKind::Hamming => 0.54 + 0.46 * (PI * w).cos(),
            FilterKind::Hann => 0.5 * (1.0 + (PI * w).cos()),
            FilterKind::Butterworth => {
                let cutoff = 0.5;
                1.0 / (1.0 + (w / cutoff).powi(4))
            }
        }
    }

    /// Frequency response of the full filter (ramp × window) for an FFT of
    /// length `pad` (power of two). Returns one real gain per FFT bin.
    pub fn response(self, pad: usize) -> Vec<f64> {
        assert!(pad.is_power_of_two());
        if self == FilterKind::None {
            return vec![1.0; pad];
        }
        // Band-limited ramp kernel in the spatial domain, wrapped.
        let mut h = vec![Complex::ZERO; pad];
        h[0] = Complex::from_re(0.25);
        let mut n = 1usize;
        while n <= pad / 2 {
            if n % 2 == 1 {
                let v = -1.0 / (std::f64::consts::PI * n as f64).powi(2);
                h[n] = Complex::from_re(v);
                h[pad - n] = Complex::from_re(v);
            }
            n += 1;
        }
        fft(&mut h);
        (0..pad)
            .map(|k| {
                let f = if k <= pad / 2 { k } else { pad - k } as f64 / pad as f64;
                let w = 2.0 * f; // normalized to Nyquist
                                 // ramp response is real and non-negative by construction;
                                 // its magnitude is ≈ |f| cycles/sample (0.5 at Nyquist)
                h[k].re.max(0.0) * self.window(w)
            })
            .collect()
    }
}

/// Filter every row of a sinogram, returning a new sinogram of the same
/// shape. Rows are zero-padded to at least twice the detector width to
/// avoid circular-convolution wraparound.
pub fn filter_sinogram(sino: &Sinogram, kind: FilterKind) -> Sinogram {
    if kind == FilterKind::None {
        return sino.clone();
    }
    let pad = next_pow2(2 * sino.n_det);
    let response = kind.response(pad);
    let mut out = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut buf = vec![Complex::ZERO; pad];
    for a in 0..sino.n_angles {
        for c in buf.iter_mut() {
            *c = Complex::ZERO;
        }
        for (c, &v) in buf.iter_mut().zip(sino.row(a).iter()) {
            *c = Complex::from_re(v as f64);
        }
        fft(&mut buf);
        for (c, &r) in buf.iter_mut().zip(response.iter()) {
            *c = c.scale(r);
        }
        ifft(&mut buf);
        for (o, c) in out.row_mut(a).iter_mut().zip(buf.iter()) {
            *o = c.re as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_zero_at_dc_and_grows() {
        let r = FilterKind::RamLak.response(256);
        assert!(r[0].abs() < 5e-3, "DC gain {}", r[0]);
        // monotone growth up to Nyquist for the pure ramp
        assert!(r[64] > r[16]);
        assert!(r[128] > r[64]);
        // symmetric
        for k in 1..128 {
            assert!((r[k] - r[256 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn ramp_gain_tracks_frequency() {
        // ramp response should be ≈ |f| in cycles/sample
        let pad = 512;
        let r = FilterKind::RamLak.response(pad);
        for k in [8usize, 32, 64, 128] {
            let expected = k as f64 / pad as f64;
            assert!(
                (r[k] - expected).abs() / expected < 0.05,
                "bin {k}: {} vs {expected}",
                r[k]
            );
        }
    }

    #[test]
    fn windows_attenuate_high_frequencies() {
        let pad = 256;
        let ram = FilterKind::RamLak.response(pad);
        for kind in [
            FilterKind::SheppLogan,
            FilterKind::Cosine,
            FilterKind::Hamming,
            FilterKind::Hann,
            FilterKind::Butterworth,
        ] {
            let r = kind.response(pad);
            // near Nyquist every window is below the raw ramp
            assert!(
                r[pad / 2] < ram[pad / 2],
                "{kind:?} does not attenuate at Nyquist"
            );
            // near DC they are all close to the ramp
            assert!((r[2] - ram[2]).abs() / ram[2].max(1e-12) < 0.2, "{kind:?}");
        }
    }

    #[test]
    fn filtering_removes_mean() {
        // ramp filter kills DC: the interior of a constant row filters to
        // ~zero (the row ends see the box edges, which is physical)
        let mut sino = Sinogram::zeros(1, 64);
        sino.row_mut(0).iter_mut().for_each(|v| *v = 5.0);
        let f = filter_sinogram(&sino, FilterKind::SheppLogan);
        let peak = f.row(0)[16..48].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(
            peak < 0.25,
            "constant-row interior should be near zero, peak {peak}"
        );
    }

    #[test]
    fn none_filter_is_identity() {
        let mut sino = Sinogram::zeros(2, 16);
        for (i, v) in sino.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let f = filter_sinogram(&sino, FilterKind::None);
        assert_eq!(f, sino);
    }

    #[test]
    fn parse_accepts_tomopy_names() {
        assert_eq!(FilterKind::parse("shepp"), Some(FilterKind::SheppLogan));
        assert_eq!(FilterKind::parse("Ram-Lak"), Some(FilterKind::RamLak));
        assert_eq!(FilterKind::parse("HANN"), Some(FilterKind::Hann));
        assert_eq!(FilterKind::parse("bogus"), None);
    }

    #[test]
    fn filter_preserves_shape() {
        let sino = Sinogram::zeros(7, 33);
        let f = filter_sinogram(&sino, FilterKind::Hamming);
        assert_eq!((f.n_angles, f.n_det), (7, 33));
    }
}
