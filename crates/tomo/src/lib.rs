//! # als-tomo
//!
//! A from-scratch parallel-beam tomographic reconstruction library — the
//! workspace's substitute for the TomoPy / tomocupy / streamtomocupy stack
//! the paper runs at NERSC and ALCF.
//!
//! The crate covers the full beamline processing chain:
//!
//! * [`prep`] — dark/flat-field normalization, −log transform, zinger
//!   (outlier) removal, ring-artifact suppression, Paganin-style phase
//!   filtering;
//! * [`cor`] — center-of-rotation search;
//! * [`fbp`] — filtered back projection with the classic window family
//!   (ram-lak, Shepp-Logan, cosine, Hamming, Hann, Butterworth);
//! * [`gridrec`] — Fourier-slice ("gridrec"-style) reconstruction, the fast
//!   CPU algorithm TomoPy defaults to;
//! * [`iterative`] — ART / SIRT / MLEM, the "higher quality owing to the
//!   preprocessing and iterative algorithms" branch of the paper;
//! * [`radon`] — forward/back projection operators shared by everything;
//! * [`fft`] — an in-house radix-2 FFT (no external FFT dependency), with
//!   table-driven [`fft::FftPlan`]s for hot loops;
//! * [`plan`] — the plan-and-scratch reconstruction engine: per-geometry
//!   cached filter responses, FFT tables, trig tables, disk-mask extents,
//!   and reusable per-thread scratch (the CPU analogue of
//!   streamtomocupy's persistent GPU plans);
//! * [`pipeline`] — the chunked scan-to-archive engine: slab transpose,
//!   fused prep, slice-parallel reconstruction, and archive sinks on a
//!   dedicated I/O thread, connected by bounded channels so the stages
//!   overlap;
//! * [`simd`] — runtime-dispatched wide kernels (AVX2/FMA with a scalar
//!   fallback) shared by the plan engine, FFT stages, and filter multiply;
//! * [`reference`] — retained pre-plan kernels, kept for equivalence
//!   tests and same-run before/after benchmarking;
//! * [`quality`] — MSE/PSNR/SSIM metrics used by the quality experiments;
//! * [`throughput`] — calibrated cost models that let the discrete-event
//!   simulation report paper-scale (2160×2560×1969) reconstruction times.
//!
//! Slice-level operations are single-threaded; volume-level entry points
//! parallelize across slices with rayon, mirroring how tomopy distributes
//! sinograms across cores on the 128-core NERSC nodes.

pub mod cor;
pub mod fbp;
pub mod fft;
pub mod filter;
pub mod geometry;
pub mod gridrec;
pub mod image;
pub mod iterative;
pub mod pipeline;
pub mod plan;
pub mod prep;
pub mod quality;
pub mod radon;
pub mod reference;
pub mod simd;
pub mod sino_ops;
pub mod throughput;

pub use fbp::{fbp_slice, fbp_volume, FbpConfig};
pub use filter::{FilterKind, FilterPlan};
pub use geometry::Geometry;
pub use gridrec::{gridrec_slice, GridrecConfig};
pub use image::{Image, Sinogram, Volume};
pub use iterative::{
    art_slice, mlem_slice, sirt_slice, sirt_slice_baseline, IterConfig, IterPlan, IterScratch,
};
pub use pipeline::{
    PipelineConfig, PipelineError, PipelineReport, ProjectionSource, ReconKind, SliceSink,
    VolumeSink,
};
pub use plan::{GridrecPlan, GridrecScratch, ReconPlan, ReconScratch};
pub use prep::{PaganinPlan, PrepPlan, RawPrepPlan, SinoPostPlan, SinoPostScratch};
pub use quality::{mse, psnr, ssim};
pub use radon::{backproject, forward_project};
pub use simd::SimdPath;
pub use sino_ops::{bin_detector, crop_roi, fold_360_to_180, pad_edges};

/// Errors produced by reconstruction entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TomoError {
    /// Input dimensions do not match the geometry.
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// A parameter was outside its valid range.
    BadParameter(String),
}

impl std::fmt::Display for TomoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TomoError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            TomoError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for TomoError {}
