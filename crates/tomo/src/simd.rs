//! Runtime SIMD dispatch and the vectorized hot-loop kernels.
//!
//! The reconstruction hot loops — fused-lerp backprojection, the packed
//! FFT butterflies, and the ramp-filter spectrum multiply — all dispatch
//! through a [`SimdPath`] chosen once at plan-build time:
//!
//! * [`SimdPath::Avx2`] — explicit `core::arch::x86_64` kernels using
//!   256-bit lanes (8 × f32 for the backprojection lerp, 2 complexes per
//!   butterfly). Selected only when the host reports both `avx2` and
//!   `fma` at runtime; no compile-time `target-feature` flags are
//!   required, so one binary serves every x86-64 host.
//! * [`SimdPath::Scalar`] — safe lane-chunked loops with the same
//!   arithmetic structure. Always available; the only path on
//!   non-x86-64 targets.
//!
//! Precision contract: the FFT butterfly and spectrum-multiply kernels
//! are **bit-exact** against the scalar path (each lane performs the
//! same multiply/add/sub sequence in the same order — AVX only, no FMA
//! contraction). The backprojection kernel computes the detector
//! coordinate in f64 (so interval-clipping invariants hold to plan
//! precision) but interpolates in f32 wide lanes; it is gated against
//! the scalar path and the pre-plan reference at ≤1e-5 RMSE by
//! `tests/plan_equivalence.rs`.
//!
//! Set `ALS_TOMO_SIMD=scalar` in the environment to force the scalar
//! path regardless of CPU features (used by benches to measure the
//! fallback on wide hosts).

use crate::fft::Complex;

/// Which kernel family plans dispatch to. Ordered: later variants are
/// strictly wider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SimdPath {
    /// Safe lane-chunked loops; always available.
    #[default]
    Scalar,
    /// 256-bit AVX2 + FMA kernels behind runtime feature detection.
    Avx2,
}

impl SimdPath {
    /// Stable lowercase name, used in `BENCH_recon.json` and bench logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
        }
    }

    /// Clamp a requested path to what this host can actually execute —
    /// forcing `Scalar` always works; forcing `Avx2` on a host without
    /// the features silently degrades to the detected path.
    pub fn clamp_to_host(self) -> SimdPath {
        self.min(detect())
    }
}

/// Detect the widest safe path for this host (cached after first call).
/// Honors the `ALS_TOMO_SIMD=scalar` override.
pub fn detect() -> SimdPath {
    use std::sync::OnceLock;
    static CACHE: OnceLock<SimdPath> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if std::env::var("ALS_TOMO_SIMD").is_ok_and(|v| v.eq_ignore_ascii_case("scalar")) {
            return SimdPath::Scalar;
        }
        detect_uncached()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_uncached() -> SimdPath {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        SimdPath::Avx2
    } else {
        SimdPath::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_uncached() -> SimdPath {
    SimdPath::Scalar
}

/// f32 lanes the backprojection inner loop processes per iteration.
pub fn lanes(path: SimdPath) -> usize {
    match path {
        SimdPath::Scalar => 1,
        SimdPath::Avx2 => 8,
    }
}

// ---------------------------------------------------------------------------
// Backprojection: fused-lerp row kernel
// ---------------------------------------------------------------------------

/// Accumulate one (output-row, angle) span of fused-lerp backprojection.
///
/// `rowf` is the prescaled f32 projection row with one sentinel `0.0`
/// appended (`n_det + 1` entries). `out` is the span of output pixels
/// `[xa, xb)`; pixel `k` samples the detector at `t0 + k·step`, which
/// the plan's precomputed clip intervals guarantee lands in
/// `[0, n_det − 1]` (up to rounding the sentinel absorbs).
#[inline]
pub(crate) fn backproject_row(path: SimdPath, rowf: &[f32], t0: f64, step: f64, out: &mut [f32]) {
    match path {
        SimdPath::Scalar => backproject_row_scalar(rowf, t0, step, out),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => unsafe { backproject_row_avx2(rowf, t0, step, out) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => backproject_row_scalar(rowf, t0, step, out),
    }
}

/// Lane-chunked scalar fallback: the detector coordinate is recomputed
/// per pixel from the affine form (no serial `t += step` dependency
/// chain), the index math runs in f64, and the interpolation runs in
/// f32 — the same precision split as the AVX2 kernel.
fn backproject_row_scalar(rowf: &[f32], t0: f64, step: f64, out: &mut [f32]) {
    let last = rowf.len() - 2; // rowf holds n_det + 1 entries
    for (k, o) in out.iter_mut().enumerate() {
        let t = t0 + k as f64 * step;
        let i = (t as usize).min(last);
        let f = (t - i as f64) as f32;
        // SAFETY: i ≤ last = rowf.len() − 2, so i + 1 is in bounds.
        let (lo, hi) = unsafe { (*rowf.get_unchecked(i), *rowf.get_unchecked(i + 1)) };
        *o += lo + f * (hi - lo);
    }
}

/// AVX2+FMA kernel: 8 output pixels per iteration. Detector coordinates
/// are computed 4-wide in f64, converted to i32 indices + f32 fractional
/// weights; the two lerp endpoints `rowf[i], rowf[i+1]` are adjacent in
/// memory, so each pair is fetched with a single 64-bit gather and
/// deinterleaved — two gathers serve all eight lanes.
///
/// # Safety
/// Caller must ensure the host supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn backproject_row_avx2(rowf: &[f32], t0: f64, step: f64, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let last = rowf.len() - 2;
    let base = rowf.as_ptr();
    let stepv = _mm256_set1_pd(step);
    let offs_lo = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    let offs_hi = _mm256_setr_pd(4.0, 5.0, 6.0, 7.0);
    let imax = _mm_set1_epi32(last as i32);
    let izero = _mm_setzero_si128();
    let mut k = 0usize;
    while k + 8 <= n {
        let tk = _mm256_set1_pd(t0 + k as f64 * step);
        let t_lo = _mm256_add_pd(tk, _mm256_mul_pd(offs_lo, stepv));
        let t_hi = _mm256_add_pd(tk, _mm256_mul_pd(offs_hi, stepv));
        // clamp indices into [0, last]: the clip intervals already
        // guarantee this up to rounding drift, the clamp is a safety net
        let i_lo = _mm_min_epi32(_mm_max_epi32(_mm256_cvttpd_epi32(t_lo), izero), imax);
        let i_hi = _mm_min_epi32(_mm_max_epi32(_mm256_cvttpd_epi32(t_hi), izero), imax);
        let f_lo = _mm256_cvtpd_ps(_mm256_sub_pd(t_lo, _mm256_cvtepi32_pd(i_lo)));
        let f_hi = _mm256_cvtpd_ps(_mm256_sub_pd(t_hi, _mm256_cvtepi32_pd(i_hi)));
        let f = _mm256_set_m128(f_hi, f_lo); // [f0..f7]
                                             // 64-bit gathers: each element is the adjacent pair
                                             // (rowf[i], rowf[i+1]) packed little-endian
        let g0 = _mm256_i32gather_epi64(base.cast::<i64>(), i_lo, 4);
        let g1 = _mm256_i32gather_epi64(base.cast::<i64>(), i_hi, 4);
        let p0 = _mm256_castsi256_ps(g0); // [lo0 hi0 lo1 hi1 | lo2 hi2 lo3 hi3]
        let p1 = _mm256_castsi256_ps(g1);
        // per-128-lane shuffle, then a cross-lane permute to restore
        // pixel order 0..7
        let lo_m = _mm256_shuffle_ps(p0, p1, 0b10_00_10_00); // [lo0 lo1 lo4 lo5 | lo2 lo3 lo6 lo7]
        let hi_m = _mm256_shuffle_ps(p0, p1, 0b11_01_11_01);
        let lo = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(lo_m), 0b11_01_10_00));
        let hi = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(hi_m), 0b11_01_10_00));
        let lerp = _mm256_fmadd_ps(f, _mm256_sub_ps(hi, lo), lo);
        let dst = out.as_mut_ptr().add(k).cast::<f32>();
        _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), lerp));
        k += 8;
    }
    backproject_row_scalar(rowf, t0 + k as f64 * step, step, &mut out[k..]);
}

// ---------------------------------------------------------------------------
// FFT butterflies (bit-exact vs the scalar stage loop)
// ---------------------------------------------------------------------------

/// One FFT stage over a chunk: `lo[j] ± tw[j]·hi[j]` for `j < half`,
/// conjugating the twiddles when `inverse`. Dispatches to the AVX pair
/// kernel when the path allows and the stage is wide enough.
#[inline]
pub(crate) fn stage_butterflies(
    path: SimdPath,
    lo: &mut [Complex],
    hi: &mut [Complex],
    tw: &[Complex],
    inverse: bool,
) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len(), tw.len());
    #[cfg(target_arch = "x86_64")]
    if path == SimdPath::Avx2 && lo.len() >= 2 {
        // SAFETY: Avx2 is only selected when the host reports the features.
        unsafe { stage_butterflies_avx(lo, hi, tw, inverse) };
        return;
    }
    let _ = path;
    stage_butterflies_scalar(lo, hi, tw, inverse);
}

fn stage_butterflies_scalar(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex], inverse: bool) {
    for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw.iter()) {
        let w = if inverse { w.conj() } else { w };
        let u = *a;
        let v = *b * w;
        *a = u + v;
        *b = u - v;
    }
}

/// Two butterflies per iteration on interleaved `(re, im)` pairs. The
/// complex multiply uses mul + addsub (never FMA), so every lane rounds
/// exactly like the scalar `Complex` operators and the transform is
/// bit-identical to the scalar path.
///
/// # Safety
/// Caller must ensure the host supports AVX; `lo.len() == hi.len() ==
/// tw.len()` and the length is ≥ 2 and even (stage halves are powers of
/// two).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stage_butterflies_avx(
    lo: &mut [Complex],
    hi: &mut [Complex],
    tw: &[Complex],
    inverse: bool,
) {
    use std::arch::x86_64::*;
    let half = lo.len();
    let lp = lo.as_mut_ptr().cast::<f64>();
    let hp = hi.as_mut_ptr().cast::<f64>();
    let wp = tw.as_ptr().cast::<f64>();
    // sign mask flipping the imaginary lanes: conj(w) for the inverse
    let conj_mask = if inverse {
        _mm256_setr_pd(0.0, -0.0, 0.0, -0.0)
    } else {
        _mm256_setzero_pd()
    };
    let mut j = 0usize;
    while j + 2 <= half {
        let w = _mm256_xor_pd(_mm256_loadu_pd(wp.add(2 * j)), conj_mask);
        let wr = _mm256_movedup_pd(w); // [w0.re w0.re w1.re w1.re]
        let wi = _mm256_permute_pd(w, 0b1111); // [w0.im w0.im w1.im w1.im]
        let b = _mm256_loadu_pd(hp.add(2 * j));
        let bswap = _mm256_permute_pd(b, 0b0101); // [b0.im b0.re b1.im b1.re]
        let v = _mm256_addsub_pd(_mm256_mul_pd(b, wr), _mm256_mul_pd(bswap, wi));
        let u = _mm256_loadu_pd(lp.add(2 * j));
        _mm256_storeu_pd(lp.add(2 * j), _mm256_add_pd(u, v));
        _mm256_storeu_pd(hp.add(2 * j), _mm256_sub_pd(u, v));
        j += 2;
    }
    if j < half {
        stage_butterflies_scalar(&mut lo[j..], &mut hi[j..], &tw[j..], inverse);
    }
}

// ---------------------------------------------------------------------------
// Spectrum multiply (filter / Paganin gains; bit-exact vs scalar)
// ---------------------------------------------------------------------------

/// Multiply a complex spectrum by per-bin real gains stored duplicated
/// (`gains2[2k] == gains2[2k+1] ==` gain of bin `k`), i.e. a plain
/// element-wise f64 product over the interleaved buffer. Bit-exact on
/// every path (one multiply per lane).
#[inline]
pub(crate) fn scale_spectrum(path: SimdPath, buf: &mut [Complex], gains2: &[f64]) {
    debug_assert_eq!(gains2.len(), 2 * buf.len());
    #[cfg(target_arch = "x86_64")]
    if path == SimdPath::Avx2 && buf.len() >= 2 {
        // SAFETY: Avx2 is only selected when the host reports the features.
        unsafe { scale_spectrum_avx(buf, gains2) };
        return;
    }
    let _ = path;
    scale_spectrum_scalar(buf, gains2);
}

fn scale_spectrum_scalar(buf: &mut [Complex], gains2: &[f64]) {
    for (c, g) in buf.iter_mut().zip(gains2.chunks_exact(2)) {
        *c = c.scale(g[0]);
    }
}

/// # Safety
/// Caller must ensure the host supports AVX and `gains2.len() == 2 * buf.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn scale_spectrum_avx(buf: &mut [Complex], gains2: &[f64]) {
    use std::arch::x86_64::*;
    let n2 = 2 * buf.len();
    let bp = buf.as_mut_ptr().cast::<f64>();
    let gp = gains2.as_ptr();
    let mut i = 0usize;
    while i + 4 <= n2 {
        let v = _mm256_mul_pd(_mm256_loadu_pd(bp.add(i)), _mm256_loadu_pd(gp.add(i)));
        _mm256_storeu_pd(bp.add(i), v);
        i += 4;
    }
    while i < n2 {
        *bp.add(i) *= *gp.add(i);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_names_are_lowercase() {
        let a = detect();
        let b = detect();
        assert_eq!(a, b);
        assert!(a.name().chars().all(|c| c.is_ascii_lowercase() || c == '2'));
    }

    #[test]
    fn clamp_never_exceeds_host() {
        assert_eq!(SimdPath::Scalar.clamp_to_host(), SimdPath::Scalar);
        assert!(SimdPath::Avx2.clamp_to_host() <= detect());
    }

    #[test]
    fn lanes_match_path() {
        assert_eq!(lanes(SimdPath::Scalar), 1);
        assert_eq!(lanes(SimdPath::Avx2), 8);
    }

    #[test]
    fn backproject_row_paths_agree() {
        let n = 37;
        let rowf: Vec<f32> = (0..n)
            .map(|i| ((i as f32) * 0.37).sin())
            .chain(std::iter::once(0.0))
            .collect();
        for &(t0, step, len) in &[(0.3f64, 0.71, 33usize), (35.2, -0.93, 36), (1.0, 0.0, 20)] {
            let mut a = vec![0.5f32; len];
            let mut b = a.clone();
            backproject_row(SimdPath::Scalar, &rowf, t0, step, &mut a);
            backproject_row(detect(), &rowf, t0, step, &mut b);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y} (t0 {t0} step {step})");
            }
        }
    }

    #[test]
    fn butterflies_bit_exact_across_paths() {
        for half in [1usize, 2, 4, 8, 16] {
            let mk = |s: f64| -> Vec<Complex> {
                (0..half)
                    .map(|i| Complex::new((i as f64 * s).sin(), (i as f64 * s).cos()))
                    .collect()
            };
            let tw = mk(0.13);
            for inverse in [false, true] {
                let (mut lo_a, mut hi_a) = (mk(0.71), mk(0.37));
                let (mut lo_b, mut hi_b) = (lo_a.clone(), hi_a.clone());
                stage_butterflies(SimdPath::Scalar, &mut lo_a, &mut hi_a, &tw, inverse);
                stage_butterflies(detect(), &mut lo_b, &mut hi_b, &tw, inverse);
                assert_eq!(lo_a, lo_b, "half {half} inverse {inverse}");
                assert_eq!(hi_a, hi_b, "half {half} inverse {inverse}");
            }
        }
    }

    #[test]
    fn spectrum_scale_bit_exact_across_paths() {
        for n in [1usize, 2, 5, 16, 33] {
            let mut a: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64 * 0.3 - 1.0, (i as f64 * 0.17).cos()))
                .collect();
            let mut b = a.clone();
            let gains2: Vec<f64> = (0..n).flat_map(|i| [i as f64 * 0.01; 2]).collect();
            scale_spectrum(SimdPath::Scalar, &mut a, &gains2);
            scale_spectrum(detect(), &mut b, &gains2);
            assert_eq!(a, b, "n {n}");
        }
    }
}
