//! Retained pre-plan reference implementations.
//!
//! These are the kernels as they existed before the plan-and-scratch
//! engine ([`crate::plan`]) landed: the ramp response is rebuilt (and
//! re-FFT'd) once per `filter_sinogram` call, every real row gets its
//! own complex FFT with a full-buffer clear, backprojection recomputes
//! the affine detector coordinate per pixel with no extent hoisting,
//! forward projection always walks the full ±diagonal, and volume
//! reconstruction is a sequential slice loop collected through an
//! intermediate image copy.
//!
//! They are kept (and exercised by the equivalence tests in
//! `tests/plan_equivalence.rs` and the `kernels` bench, which measures
//! the plan engine's speedup against them **in the same run**) — do not
//! optimise them.

use crate::fbp::FbpConfig;
use crate::fft::{fft, fft2_inplace, ifft, next_pow2, Complex};
use crate::filter::FilterKind;
use crate::geometry::Geometry;
use crate::gridrec::GridrecConfig;
use crate::image::{Image, Sinogram, Volume};
use crate::radon::{apply_disk_mask, backproject};
use crate::TomoError;

/// Pre-plan row-at-a-time sinogram filtering: rebuilds the frequency
/// response per call, clears the whole padded buffer per row, one full
/// complex FFT round trip per real row.
pub fn filter_sinogram(sino: &Sinogram, kind: FilterKind) -> Sinogram {
    if kind == FilterKind::None {
        return sino.clone();
    }
    let pad = next_pow2(2 * sino.n_det);
    let response = kind.response(pad);
    let mut out = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut buf = vec![Complex::ZERO; pad];
    for a in 0..sino.n_angles {
        for c in buf.iter_mut() {
            *c = Complex::ZERO;
        }
        for (c, &v) in buf.iter_mut().zip(sino.row(a).iter()) {
            *c = Complex::from_re(v as f64);
        }
        fft(&mut buf);
        for (c, &r) in buf.iter_mut().zip(response.iter()) {
            *c = c.scale(r);
        }
        ifft(&mut buf);
        for (o, c) in out.row_mut(a).iter_mut().zip(buf.iter()) {
            *o = c.re as f32;
        }
    }
    out
}

/// The unfused preprocessing chain, one full sinogram sweep (and
/// allocation) per step: `normalize → remove_zingers → minus_log →
/// remove_stripes → paganin_filter`, each stage optional after the
/// first. This is the equivalence baseline for the fused
/// [`crate::prep::PrepPlan`] / [`crate::prep::SinoPostPlan`] pass.
pub fn prep_chain(
    raw: &Sinogram,
    dark: &[f32],
    flat: &[f32],
    zinger_threshold: Option<f32>,
    ring_window: Option<usize>,
    paganin_delta_beta: Option<f64>,
) -> Sinogram {
    let mut s = crate::prep::normalize(raw, dark, flat);
    if let Some(thr) = zinger_threshold {
        s = crate::prep::remove_zingers(&s, thr);
    }
    s = crate::prep::minus_log(&s);
    if let Some(w) = ring_window {
        s = crate::prep::remove_stripes(&s, w);
    }
    if let Some(db) = paganin_delta_beta {
        s = crate::prep::paganin_filter(&s, db);
    }
    s
}

/// Pre-plan forward projection: every ray walks the full ±image-diagonal
/// integration range, sampling (mostly zeros) outside the image too.
pub fn forward_project_into(img: &Image, geom: &Geometry, sino: &mut Sinogram) {
    assert_eq!(sino.n_angles, geom.n_angles());
    assert_eq!(sino.n_det, geom.n_det);
    let cx = (img.width as f64 - 1.0) / 2.0;
    let cy = (img.height as f64 - 1.0) / 2.0;
    let half_len =
        (((img.width * img.width + img.height * img.height) as f64).sqrt() / 2.0).ceil() as i64;
    for (a, &theta) in geom.angles.iter().enumerate() {
        let (sin_t, cos_t) = theta.sin_cos();
        let row = sino.row_mut(a);
        for (t, out) in row.iter_mut().enumerate() {
            let s = t as f64 - geom.center;
            let bx = cx + s * cos_t;
            let by = cy + s * sin_t;
            let mut acc = 0.0f64;
            for r in -half_len..=half_len {
                let rf = r as f64;
                let x = bx - rf * sin_t;
                let y = by + rf * cos_t;
                acc += img.sample_bilinear(x, y);
            }
            *out = acc as f32;
        }
    }
}

/// Pre-plan single-slice FBP: per-call response rebuild + per-pixel
/// affine backprojection (via [`crate::radon::backproject`], which is
/// itself the retained reference backprojector).
pub fn fbp_slice(sino: &Sinogram, geom: &Geometry, cfg: &FbpConfig) -> Result<Image, TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    if geom.n_angles() == 0 {
        return Err(TomoError::BadParameter("no projection angles".into()));
    }
    let filtered = filter_sinogram(sino, cfg.filter);
    let scale = std::f64::consts::PI / geom.n_angles() as f64;
    let mut img = backproject(&filtered, geom, geom.n_det, scale);
    if cfg.mask_disk {
        apply_disk_mask(&mut img);
    }
    Ok(img)
}

/// Pre-plan volume FBP: sequential slice loop, each slice collected
/// into an intermediate `Image` and copied into the volume.
pub fn fbp_volume(
    sinos: &[Sinogram],
    geom: &Geometry,
    cfg: &FbpConfig,
) -> Result<Volume, TomoError> {
    if sinos.is_empty() {
        return Err(TomoError::BadParameter("empty sinogram stack".into()));
    }
    let n = geom.n_det;
    let slices: Result<Vec<Image>, TomoError> =
        sinos.iter().map(|s| fbp_slice(s, geom, cfg)).collect();
    let slices = slices?;
    let mut vol = Volume::zeros(n, n, slices.len());
    for (z, img) in slices.iter().enumerate() {
        vol.set_slice_xy(z, img);
    }
    Ok(vol)
}

/// Pre-plan gridrec: per-call spectra FFTs with recursive twiddles and
/// a per-cell `atan2`/`sqrt`/`cis` polar→Cartesian gather.
pub fn gridrec_slice(
    sino: &Sinogram,
    geom: &Geometry,
    cfg: &GridrecConfig,
) -> Result<Image, TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    let n_angles = geom.n_angles();
    if n_angles < 2 {
        return Err(TomoError::BadParameter(
            "gridrec needs at least two angles".into(),
        ));
    }
    let n = geom.n_det;
    let m = next_pow2(cfg.oversample.max(1) * n);
    let mf = m as f64;
    let tau = 2.0 * std::f64::consts::PI;

    // 1) FFT every projection, phase-shifted so the rotation axis is the
    //    spatial origin: F(k) = e^{+i 2π k c / M} · FFT(p)(k).
    let mut spectra = vec![Complex::ZERO; n_angles * m];
    let mut buf = vec![Complex::ZERO; m];
    for a in 0..n_angles {
        buf.iter_mut().for_each(|c| *c = Complex::ZERO);
        for (c, &v) in buf.iter_mut().zip(sino.row(a).iter()) {
            *c = Complex::from_re(v as f64);
        }
        fft(&mut buf);
        for (k, c) in buf.iter().enumerate() {
            let q = crate::gridrec::signed_index(k, m) as f64;
            let phase = Complex::cis(tau * q * geom.center / mf);
            spectra[a * m + k] = *c * phase;
        }
    }

    let sample_radial = |a: usize, rho: f64| -> Complex {
        let idx = rho.rem_euclid(mf);
        let i0 = idx.floor() as usize % m;
        let i1 = (i0 + 1) % m;
        let f = idx - idx.floor();
        let c0 = spectra[a * m + i0];
        let c1 = spectra[a * m + i1];
        c0.scale(1.0 - f) + c1.scale(f)
    };

    // 2) Gather the Cartesian spectrum from the polar samples.
    let dtheta = std::f64::consts::PI / n_angles as f64;
    let nyq = mf / 2.0;
    let cx = (n as f64 - 1.0) / 2.0;
    let mut grid = vec![Complex::ZERO; m * m];
    for j in 0..m {
        let qy = crate::gridrec::signed_index(j, m) as f64;
        for k in 0..m {
            let qx = crate::gridrec::signed_index(k, m) as f64;
            let mut rho = (qx * qx + qy * qy).sqrt();
            if rho > nyq {
                continue;
            }
            let mut theta = qy.atan2(qx);
            if theta < 0.0 {
                theta += std::f64::consts::PI;
                rho = -rho;
            }
            if theta >= std::f64::consts::PI {
                theta -= std::f64::consts::PI;
                rho = -rho;
            }
            let pos = theta / dtheta;
            let a0 = pos.floor() as usize;
            let w = pos - a0 as f64;
            let a0 = a0.min(n_angles - 1);
            let v0 = sample_radial(a0, rho);
            let v1 = if a0 + 1 < n_angles {
                sample_radial(a0 + 1, rho)
            } else {
                // wrap past the last angle: θ → θ - π flips the ray
                sample_radial(0, -rho)
            };
            let mut val = v0.scale(1.0 - w) + v1.scale(w);
            let wgain = match cfg.window {
                FilterKind::None | FilterKind::RamLak => 1.0,
                other => crate::gridrec::window_gain(other, rho.abs() / nyq),
            };
            let shift = Complex::cis(-tau * (qx * cx + qy * cx) / mf);
            val = val.scale(wgain) * shift;
            grid[j * m + k] = val;
        }
    }

    // 3) Inverse 2D FFT and crop.
    fft2_inplace(&mut grid, m, true);
    let mut img = Image::square(n);
    for y in 0..n {
        for x in 0..n {
            img.set(x, y, grid[y * m + x].re as f32);
        }
    }
    if cfg.mask_disk {
        apply_disk_mask(&mut img);
    }
    Ok(img)
}
