//! Image quality metrics used by the reconstruction-quality experiments
//! (EXPERIMENTS.md item Q1): MSE, PSNR, and a global SSIM.

use crate::image::Image;
use crate::radon::in_recon_disk;

/// Mean squared error between two images of the same shape.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width, a.height), (b.width, b.height), "shape mismatch");
    if a.data.is_empty() {
        return 0.0;
    }
    a.data
        .iter()
        .zip(b.data.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
        .sum::<f64>()
        / a.data.len() as f64
}

/// MSE restricted to the inscribed reconstruction disk (square images).
pub fn mse_in_disk(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width, a.height), (b.width, b.height), "shape mismatch");
    assert_eq!(a.width, a.height, "disk metric requires square images");
    let n = a.width;
    let mut e = 0.0;
    let mut cnt = 0usize;
    for y in 0..n {
        for x in 0..n {
            if in_recon_disk(x, y, n) {
                e += (a.get(x, y) as f64 - b.get(x, y) as f64).powi(2);
                cnt += 1;
            }
        }
    }
    if cnt == 0 {
        0.0
    } else {
        e / cnt as f64
    }
}

/// Peak signal-to-noise ratio in dB. `peak` is the dynamic range of the
/// reference (pass the phantom's max value). Returns +inf for identical
/// images.
pub fn psnr(reference: &Image, test: &Image, peak: f64) -> f64 {
    let m = mse(reference, test);
    if m <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * ((peak * peak) / m).log10()
}

/// Global (single-window) structural similarity index. The full SSIM uses
/// local windows; the global variant is sufficient for ranking
/// reconstruction pipelines and keeps the implementation dependency-free.
pub fn ssim(a: &Image, b: &Image, dynamic_range: f64) -> f64 {
    assert_eq!((a.width, a.height), (b.width, b.height), "shape mismatch");
    let n = a.data.len() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let ma = a.data.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.data.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut va = 0.0;
    let mut vb = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.data.iter().zip(b.data.iter()) {
        va += (x as f64 - ma).powi(2);
        vb += (y as f64 - mb).powi(2);
        cov += (x as f64 - ma) * (y as f64 - mb);
    }
    va /= n;
    vb /= n;
    cov /= n;
    let c1 = (0.01 * dynamic_range).powi(2);
    let c2 = (0.03 * dynamic_range).powi(2);
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_image(n: usize) -> Image {
        let mut img = Image::square(n);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = (i % n) as f32 / n as f32;
        }
        img
    }

    #[test]
    fn identical_images_score_perfectly() {
        let img = ramp_image(16);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img, 1.0), f64::INFINITY);
        let s = ssim(&img, &img, 1.0);
        assert!((s - 1.0).abs() < 1e-9, "ssim {s}");
    }

    #[test]
    fn mse_of_constant_offset() {
        let a = ramp_image(8);
        let mut b = a.clone();
        for v in b.data.iter_mut() {
            *v += 0.5;
        }
        assert!((mse(&a, &b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn psnr_tracks_error_magnitude() {
        let a = ramp_image(16);
        let mut small = a.clone();
        let mut big = a.clone();
        for (i, (s, b)) in small.data.iter_mut().zip(big.data.iter_mut()).enumerate() {
            let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
            *s += 0.01 * noise;
            *b += 0.1 * noise;
        }
        assert!(psnr(&a, &small, 1.0) > psnr(&a, &big, 1.0) + 15.0);
    }

    #[test]
    fn ssim_penalizes_structural_damage() {
        let a = ramp_image(16);
        let mut shuffled = a.clone();
        shuffled.data.reverse();
        let s = ssim(&a, &shuffled, 1.0);
        assert!(s < 0.7, "reversed image should score poorly, got {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = ramp_image(12);
        let mut b = a.clone();
        for (i, v) in b.data.iter_mut().enumerate() {
            *v += (i % 5) as f32 * 0.02;
        }
        let s1 = ssim(&a, &b, 1.0);
        let s2 = ssim(&b, &a, 1.0);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn disk_mse_ignores_corners() {
        let n = 16;
        let a = Image::square(n);
        let mut b = Image::square(n);
        b.set(0, 0, 100.0); // corner damage, outside the disk
        assert_eq!(mse_in_disk(&a, &b), 0.0);
        assert!(mse(&a, &b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        mse(&Image::square(4), &Image::square(5));
    }
}
